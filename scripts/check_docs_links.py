#!/usr/bin/env python3
"""Check that every relative markdown link in README.md and docs/ resolves.

Scans ``[text](target)`` links, ignores absolute URLs (``http(s)://``,
``mailto:``) and pure in-page anchors, and verifies that the referenced
file exists relative to the file containing the link.  Exits non-zero on
the first pass listing every broken link, so CI fails loudly when a doc
is moved or renamed without updating its references.

Run from the repo root::

    python scripts/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
REPO = Path(__file__).resolve().parents[1]


def iter_doc_files():
    yield REPO / "README.md"
    yield from sorted((REPO / "docs").glob("*.md"))


def check_file(path: Path):
    broken = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        for target in LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (path.parent / relative).exists():
                broken.append((path, lineno, target))
    return broken


def main() -> int:
    broken = []
    checked = 0
    for path in iter_doc_files():
        if not path.exists():
            broken.append((path, 0, "<file missing>"))
            continue
        checked += 1
        broken.extend(check_file(path))
    for path, lineno, target in broken:
        print("BROKEN %s:%d -> %s" % (path.relative_to(REPO), lineno, target))
    print("checked %d file(s): %s" % (
        checked, "FAILED (%d broken)" % len(broken) if broken else "ok"))
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
