"""Benchmark harness package.

Making ``benchmarks`` a package lets its modules use relative imports
(``from .conftest import ...``) when collected by pytest from the repo
root: ``python -m pytest benchmarks``.  The default test run (see
``pytest.ini``) collects only ``tests/``; benchmarks are opt-in because
they build multi-graph datasets and run timed rounds.
"""
