"""Shared benchmark fixtures.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(default 0.2, roughly 25k-ish triples per graph) so the same harness can be
pointed at larger graphs.  All strategies run through the simulated
SPARQL-protocol endpoint (JSON serialization + pagination), as the paper's
setup does via SPARQLWrapper over HTTP.
"""

from __future__ import annotations

import os

import pytest

from repro.client import EngineClient, HttpClient
from repro.data import DBLP_URI, DBPEDIA_URI, build_dataset
from repro.rdf import ntriples
from repro.sparql import Endpoint, Engine

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))
MAX_ROWS = int(os.environ.get("REPRO_BENCH_MAX_ROWS", "10000"))


@pytest.fixture(scope="session")
def dataset():
    return build_dataset(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def engine(dataset):
    return Engine(dataset)


@pytest.fixture(scope="session")
def endpoint(engine):
    return Endpoint(engine, max_rows=MAX_ROWS)


@pytest.fixture
def http_client(endpoint):
    """A fresh paginating client; the endpoint result cache is cleared so
    every benchmark round pays full query execution."""
    endpoint.clear_cache()
    client = HttpClient(endpoint)
    original = client.execute

    def execute(query):
        endpoint.clear_cache()
        return original(query)

    client.execute = execute
    return client


@pytest.fixture(scope="session")
def engine_client(engine):
    return EngineClient(engine)


@pytest.fixture(scope="session")
def ntriples_files(dataset, tmp_path_factory):
    """The graphs serialized to N-Triples (for the rdflib-like baseline)."""
    directory = tmp_path_factory.mktemp("dumps")
    paths = {}
    for graph in dataset:
        name = graph.uri.split("//")[1].replace("/", "_") + ".nt"
        path = directory / name
        with open(path, "w") as stream:
            ntriples.write(graph.triples(), stream)
        paths[graph.uri] = str(path)
    return paths


def graph_uri_for(case_key: str) -> str:
    return DBPEDIA_URI if case_key == "movie_genre" else DBLP_URI
