"""Scale sweep: how the generation strategies diverge as graphs grow.

The paper's headline gaps come from data scale (naive generation went from
"2x slower" on 88M triples to "did not finish" on 1B).  This bench sweeps
the synthetic-data scale factor and times the topic-modeling case study
under each generation strategy, exhibiting the divergence trend.
"""

import pytest

from repro.client import EngineClient
from repro.data import build_dataset
from repro.sparql import Engine
from repro.workload import get_case_study

SCALES = [0.05, 0.1, 0.2]
ROUNDS = 3

_CLIENTS = {}


def client_for(scale: float) -> EngineClient:
    if scale not in _CLIENTS:
        _CLIENTS[scale] = EngineClient(Engine(build_dataset(scale=scale)))
    return _CLIENTS[scale]


@pytest.mark.benchmark(group="scale-sweep-topic-modeling")
@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("strategy", ["optimized", "naive"])
def test_topic_modeling_scale_sweep(benchmark, scale, strategy):
    frame = get_case_study("topic_modeling").frame()
    query = frame.to_sparql(strategy=strategy)
    client = client_for(scale)
    benchmark.pedantic(client.execute, args=(query,),
                       rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="scale-sweep-q9")
@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("strategy", ["optimized", "naive"])
def test_q9_scale_sweep(benchmark, scale, strategy):
    """Q9 (self-join on films) shows the strongest naive divergence in
    Figure 5; sweep it across scales."""
    from repro.workload import get_query
    frame = get_query("Q9").frame()
    query = frame.to_sparql(strategy=strategy)
    client = client_for(scale)
    benchmark.pedantic(client.execute, args=(query,),
                       rounds=ROUNDS, iterations=1)
