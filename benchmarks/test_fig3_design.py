"""Figure 3: evaluating the design decisions of RDFFrames.

For each case study, compare:

* **naive** query generation (one subquery per operator),
* **navigation + pandas** (only seed/expand pushed to the engine),
* **rdfframes** (optimized single-query generation, full push-down).

Paper's finding: naive and navigation+pandas are substantially slower than
RDFFrames (Fig 3a/3b); for the scan-shaped KG-embedding task all
alternatives converge (Fig 3c).
"""

import pytest

from repro.baselines import run_strategy

ROUNDS = 3
STRATEGIES = ("naive", "navigation_pandas", "rdfframes")


def _run(strategy, case_key, http_client):
    result = run_strategy(strategy, case_key, client=http_client)
    assert len(result) > 0
    return result


@pytest.mark.benchmark(group="fig3a-movie-genre")
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fig3a_movie_genre(benchmark, strategy, http_client):
    benchmark.pedantic(_run, args=(strategy, "movie_genre", http_client),
                       rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="fig3b-topic-modeling")
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fig3b_topic_modeling(benchmark, strategy, http_client):
    benchmark.pedantic(_run, args=(strategy, "topic_modeling", http_client),
                       rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="fig3c-kg-embedding")
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fig3c_kg_embedding(benchmark, strategy, http_client):
    benchmark.pedantic(_run, args=(strategy, "kg_embedding", http_client),
                       rounds=ROUNDS, iterations=1)
