"""Figure 4: RDFFrames against the alternative baselines.

For each case study, compare:

* **rdflib + pandas** — no engine: parse the N-Triples dump, client-side
  navigation + relational processing,
* **SPARQL + pandas** — trivial SELECT ?s ?p ?o, client-side processing,
* **expert SPARQL** — the hand-written query, full push-down,
* **rdfframes**.

Paper's finding: the "+ pandas" baselines crash or are orders of magnitude
slower at 88M-1B triples; RDFFrames matches expert SPARQL.  At simulator
scale the gaps compress (see EXPERIMENTS.md) but RDFFrames ~ expert holds.
"""

import pytest

from repro.baselines import run_strategy

from .conftest import graph_uri_for

ROUNDS = 3
STRATEGIES = ("rdflib_pandas", "sparql_pandas", "expert", "rdfframes")


def _run(strategy, case_key, http_client, ntriples_files):
    result = run_strategy(
        strategy, case_key, client=http_client,
        ntriples_source=ntriples_files[graph_uri_for(case_key)])
    assert len(result) > 0
    return result


@pytest.mark.benchmark(group="fig4a-movie-genre")
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fig4a_movie_genre(benchmark, strategy, http_client, ntriples_files):
    benchmark.pedantic(
        _run, args=(strategy, "movie_genre", http_client, ntriples_files),
        rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="fig4b-topic-modeling")
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fig4b_topic_modeling(benchmark, strategy, http_client,
                              ntriples_files):
    benchmark.pedantic(
        _run, args=(strategy, "topic_modeling", http_client, ntriples_files),
        rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="fig4c-kg-embedding")
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fig4c_kg_embedding(benchmark, strategy, http_client,
                            ntriples_files):
    benchmark.pedantic(
        _run, args=(strategy, "kg_embedding", http_client, ntriples_files),
        rounds=ROUNDS, iterations=1)
