"""Load generator for the concurrent serving tier.

Drives mixed concurrent traffic at the :class:`~repro.sparql.QueryServer`
and at the paginating :class:`~repro.client.HttpClient`, and reports what
a serving tier is judged on:

* **latency** — per-request p50/p95/p99 milliseconds (submit to result),
* **throughput** — completed queries per second,
* **shed rate** — requests refused by admission control
  (:class:`~repro.sparql.ServerOverloaded`) as a fraction of submissions,
* **retry counts** — transparent retries the HTTP client performed while
  absorbing injected endpoint faults.

Two scenarios run:

1. ``server`` — N client threads submit a weighted query mix straight to
   a :class:`QueryServer` (bounded queue, per-tenant caps, per-request
   deadlines).  No faults: this is the clean-serving baseline.
2. ``faulty_paging`` — N client threads each drive an
   :class:`~repro.client.HttpClient` through one shared
   :class:`~repro.sparql.FaultyEndpoint` injecting seeded transient
   failures and corrupted pages; classified retries must absorb every
   fault, so the scenario also hard-checks that each request returned
   the same number of rows the undisturbed engine returns.

Run from the repo root::

    PYTHONPATH=src python benchmarks/load_generator.py [--smoke] [--out F]

``--smoke`` shrinks everything for CI.  The ``serving`` section of
``BENCH_engine.json`` is produced by :func:`run_serving` (invoked from
``perf_report.py --section serving``).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from typing import Dict, List, Optional

from repro.client import ClientError, HttpClient
from repro.data import build_dataset
from repro.sparql import (Endpoint, Engine, FaultyEndpoint, PayloadCorruption,
                          QueryServer, ResultCache, ServerOverloaded,
                          TransientFaults)

_PREFIXES = """
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX dbpp: <http://dbpedia.org/property/>
PREFIX dbpo: <http://dbpedia.org/ontology/>
"""

#: The traffic mix: (weight, SPARQL).  Mostly cheap point lookups and
#: scans, a few aggregations, and an unbounded self-join as the heavy
#: tail — the shape that actually pressures a bounded queue.
TRAFFIC_MIX = {
    "bgp2_film_actor": (4, """
        SELECT ?film ?actor FROM <http://dbpedia.org> WHERE {
            ?film rdf:type dbpo:Film .
            ?film dbpp:starring ?actor .
        }"""),
    "distinct_actors": (3, """
        SELECT DISTINCT ?actor FROM <http://dbpedia.org> WHERE {
            ?film dbpp:starring ?actor .
        }"""),
    "limit10_costar": (3, """
        SELECT ?a ?b FROM <http://dbpedia.org> WHERE {
            ?film dbpp:starring ?a .
            ?film dbpp:starring ?b .
        } LIMIT 10"""),
    "group_count_films": (2, """
        SELECT ?actor (COUNT(?film) AS ?n) FROM <http://dbpedia.org>
        WHERE { ?film dbpp:starring ?actor . } GROUP BY ?actor"""),
    "bgp3_actor_place": (2, """
        SELECT ?film ?actor ?place FROM <http://dbpedia.org> WHERE {
            ?film rdf:type dbpo:Film .
            ?film dbpp:starring ?actor .
            ?actor dbpp:birthPlace ?place .
        }"""),
    "heavy_costar_self_join": (1, """
        SELECT ?a ?b FROM <http://dbpedia.org> WHERE {
            ?film dbpp:starring ?a .
            ?film dbpp:starring ?b .
        }"""),
}


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q / 100.0 * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def _latency_summary(latencies: List[float]) -> Dict[str, float]:
    ordered = sorted(latencies)
    return {
        "requests_timed": len(ordered),
        "latency_p50_ms": _percentile(ordered, 50) * 1000.0,
        "latency_p95_ms": _percentile(ordered, 95) * 1000.0,
        "latency_p99_ms": _percentile(ordered, 99) * 1000.0,
    }


def _build_schedule(total_requests: int, clients: int, seed: int):
    """Per-client query schedules, drawn from the weighted mix."""
    rng = random.Random(seed)
    names = list(TRAFFIC_MIX)
    weights = [TRAFFIC_MIX[name][0] for name in names]
    schedules: List[List[str]] = [[] for _ in range(clients)]
    for i in range(total_requests):
        name = rng.choices(names, weights=weights)[0]
        schedules[i % clients].append(name)
    return schedules


def run_server_scenario(engine: Engine, total_requests: int, clients: int,
                        workers: int, queue_size: int,
                        tenant_cap: Optional[int],
                        request_timeout: float, seed: int) -> dict:
    """Mixed concurrent traffic straight at the :class:`QueryServer`."""
    schedules = _build_schedule(total_requests, clients, seed)
    latencies: List[float] = []
    shed = 0
    failed = 0
    lock = threading.Lock()
    server = QueryServer(engine, workers=workers, queue_size=queue_size,
                         max_inflight_per_tenant=tenant_cap,
                         default_timeout=request_timeout)

    def client_loop(client_id: int):
        nonlocal shed, failed
        tenant = "tenant-%d" % (client_id % 3)
        for name in schedules[client_id]:
            query = _PREFIXES + TRAFFIC_MIX[name][1]
            start = time.perf_counter()
            try:
                ticket = server.submit(query, tenant=tenant)
                ticket.result(timeout=60.0)
            except ServerOverloaded:
                with lock:
                    shed += 1
                continue
            except Exception:
                with lock:
                    failed += 1
                continue
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)

    wall_start = time.perf_counter()
    threads = [threading.Thread(target=client_loop, args=(c,))
               for c in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    stats = server.stats.as_dict()
    server.shutdown()
    completed = len(latencies)
    cell = {
        "total_requests": total_requests,
        "clients": clients,
        "workers": workers,
        "queue_size": queue_size,
        "tenant_cap": tenant_cap,
        "wall_seconds": wall,
        "qps": completed / wall if wall > 0 else 0.0,
        "completed": completed,
        "shed": shed,
        "failed": failed,
        "shed_rate": shed / total_requests if total_requests else 0.0,
        "server_stats": stats,
    }
    cell.update(_latency_summary(latencies))
    if completed + shed + failed != total_requests:
        raise AssertionError("lost requests: %d completed + %d shed + %d "
                             "failed != %d submitted"
                             % (completed, shed, failed, total_requests))
    return cell


def run_faulty_scenario(engine: Engine, total_requests: int, clients: int,
                        seed: int, max_rows: int = 200) -> dict:
    """Concurrent paginating clients over one fault-injected endpoint."""
    schedules = _build_schedule(total_requests, clients, seed + 1)
    faulty = FaultyEndpoint(Endpoint(engine, max_rows=max_rows), [
        TransientFaults(rate=0.2, seed=seed, max_consecutive=2),
        PayloadCorruption(rate=0.2, seed=seed + 7, max_consecutive=2),
    ])
    expected_rows = {
        name: len(engine.query(_PREFIXES + body))
        for name, (_, body) in TRAFFIC_MIX.items()
    }
    latencies: List[float] = []
    retries = 0
    failed = 0
    lock = threading.Lock()

    def client_loop(client_id: int):
        nonlocal retries, failed
        client = HttpClient(faulty, max_retries=8, breaker_threshold=None)
        for name in schedules[client_id]:
            query = _PREFIXES + TRAFFIC_MIX[name][1]
            start = time.perf_counter()
            try:
                df = client.execute(query)
            except ClientError:
                with lock:
                    failed += 1
                continue
            elapsed = time.perf_counter() - start
            if len(df) != expected_rows[name]:
                raise AssertionError(
                    "faulty paging truncated %r: got %d rows, engine "
                    "returns %d" % (name, len(df), expected_rows[name]))
            with lock:
                latencies.append(elapsed)
        with lock:
            retries += client.retries_performed

    wall_start = time.perf_counter()
    threads = [threading.Thread(target=client_loop, args=(c,))
               for c in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    completed = len(latencies)
    cell = {
        "total_requests": total_requests,
        "clients": clients,
        "endpoint_max_rows": max_rows,
        "wall_seconds": wall,
        "qps": completed / wall if wall > 0 else 0.0,
        "completed": completed,
        "failed": failed,
        "retries_performed": retries,
        "faults_injected": faulty.faults_injected,
        "endpoint_requests": faulty.requests_seen,
        "all_results_complete": True,
    }
    cell.update(_latency_summary(latencies))
    return cell


# ---------------------------------------------------------------------------
# The serving_cache section: zipfian repeats over the result cache
# ---------------------------------------------------------------------------

_CACHE_PREFIXES = _PREFIXES + """
PREFIX dbpr: <http://dbpedia.org/resource/>
"""


#: The quadratic core every heavy population variant is built around:
#: films co-starring a shared actor.  Repeats of these are exactly the
#: traffic a result cache earns its keep on.
_COFILM = "?f1 dbpp:starring ?actor .\n                ?f2 dbpp:starring ?actor ."


def _cache_population():
    """16 distinct queries the zipfian mix repeats over.

    Popularity ranks (zipf) follow list order, so the heavy co-film
    self-join variants — the requests worth caching — are also the most
    repeated ones, with the cheap serving traffic mix as the tail.
    """
    population = [
        ("cofilm_pairs", """
            SELECT ?f1 ?f2 ?actor FROM <http://dbpedia.org> WHERE {
                %s
            }""" % _COFILM),
        ("cofilm_distinct", """
            SELECT DISTINCT ?f1 ?f2 FROM <http://dbpedia.org> WHERE {
                %s
            }""" % _COFILM),
        ("cofilm_ordered", """
            SELECT ?f1 ?f2 ?actor FROM <http://dbpedia.org> WHERE {
                %s
            } ORDER BY ?actor ?f1 ?f2""" % _COFILM),
        ("cofilm_typed", """
            SELECT ?f1 ?f2 ?actor FROM <http://dbpedia.org> WHERE {
                ?f1 rdf:type dbpo:Film .
                %s
            }""" % _COFILM),
        ("cofilm_runtime", """
            SELECT ?f1 ?f2 ?r FROM <http://dbpedia.org> WHERE {
                %s
                ?f1 dbpo:runtime ?r .
            }""" % _COFILM),
        ("cofilm_place", """
            SELECT ?f1 ?f2 ?place FROM <http://dbpedia.org> WHERE {
                %s
                ?actor dbpp:birthPlace ?place .
            }""" % _COFILM),
        ("costar_triangle", """
            SELECT ?a ?b FROM <http://dbpedia.org> WHERE {
                ?film dbpp:starring ?a .
                ?film dbpp:starring ?b .
                ?a dbpp:birthPlace ?p .
                ?b dbpp:birthPlace ?p .
            }"""),
    ]
    for country in ("United_States", "India", "France"):
        population.append(("cofilm_%s" % country.lower(), """
            SELECT ?f1 ?f2 ?actor FROM <http://dbpedia.org> WHERE {
                %s
                ?f2 dbpp:country dbpr:%s .
            }""" % (_COFILM, country)))
    population = [(name, _CACHE_PREFIXES + body)
                  for name, body in population]
    population.extend(
        (name, _PREFIXES + body)
        for name, (_weight, body) in sorted(TRAFFIC_MIX.items()))
    return population


def _zipf_schedules(names, total_requests: int, clients: int, seed: int,
                    s: float = 1.1):
    """Per-client schedules with zipf(s)-distributed query popularity."""
    rng = random.Random(seed)
    weights = [1.0 / (rank ** s) for rank in range(1, len(names) + 1)]
    schedules: List[List[str]] = [[] for _ in range(clients)]
    for i in range(total_requests):
        schedules[i % clients].append(
            rng.choices(names, weights=weights)[0])
    return schedules


def _named_bag(result):
    return sorted(
        tuple(sorted((var, repr(term))
                     for var, term in zip(result.variables, row)))
        for row in result.rows)


def run_cache_scenario(engine: Engine, total_requests: int, clients: int,
                       workers: int, seed: int, zipf_s: float = 1.1) -> dict:
    """Zipfian repeat traffic over a result-cached server.

    Hard-checks the section's acceptance bar: hit rate >= 0.5 on the
    mix, and cached-reply p50 at least 10x faster than miss p50."""
    population = _cache_population()
    queries = dict(population)
    schedules = _zipf_schedules([name for name, _q in population],
                                total_requests, clients, seed)
    cache = ResultCache(max_entries=256)
    server = QueryServer(engine, workers=workers, queue_size=256,
                         result_cache=cache, default_timeout=120.0)
    hit_latencies: List[float] = []
    miss_latencies: List[float] = []
    failed = 0
    lock = threading.Lock()

    def client_loop(client_id: int):
        nonlocal failed
        tenant = "tenant-%d" % (client_id % 3)
        for name in schedules[client_id]:
            start = time.perf_counter()
            try:
                ticket = server.submit(queries[name], tenant=tenant)
                ticket.result(timeout=120.0)
            except Exception:
                with lock:
                    failed += 1
                continue
            elapsed = time.perf_counter() - start
            with lock:
                if ticket.cache_state in ("hit", "coalesced"):
                    hit_latencies.append(elapsed)
                else:
                    miss_latencies.append(elapsed)

    wall_start = time.perf_counter()
    threads = [threading.Thread(target=client_loop, args=(c,))
               for c in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    stats = server.stats.as_dict()
    server.shutdown()
    completed = len(hit_latencies) + len(miss_latencies)
    hit_rate = len(hit_latencies) / completed if completed else 0.0
    hits = _latency_summary(hit_latencies)
    misses = _latency_summary(miss_latencies)
    speedup = (misses["latency_p50_ms"] / hits["latency_p50_ms"]
               if hits["latency_p50_ms"] > 0 else float("inf"))
    cell = {
        "population": len(population),
        "zipf_s": zipf_s,
        "total_requests": total_requests,
        "clients": clients,
        "workers": workers,
        "wall_seconds": wall,
        "qps": completed / wall if wall > 0 else 0.0,
        "completed": completed,
        "failed": failed,
        "hit_rate": hit_rate,
        "hit_p50_ms": hits["latency_p50_ms"],
        "hit_p95_ms": hits["latency_p95_ms"],
        "miss_p50_ms": misses["latency_p50_ms"],
        "miss_p95_ms": misses["latency_p95_ms"],
        "speedup_p50": speedup,
        "server_stats": stats,
        "cache_stats": cache.stats.as_dict(),
    }
    if failed:
        raise AssertionError("%d cache-scenario requests failed" % failed)
    if hit_rate < 0.5:
        raise AssertionError(
            "zipfian mix hit rate %.2f below the 0.5 acceptance bar"
            % hit_rate)
    if speedup < 10.0:
        raise AssertionError(
            "cached-reply p50 only %.1fx faster than miss p50 "
            "(acceptance bar: 10x)" % speedup)
    return cell


def verify_cache_bag_identity(scale: float, seed: int) -> dict:
    """Cached vs uncached replies must be bag-identical on every
    population and case-study query — including after graph mutations
    interleaved between rounds (the stale-read acceptance check)."""
    from repro.rdf.namespaces import DBPO, DBPP, RDF
    from repro.rdf.terms import URIRef
    from repro.workload import CASE_STUDIES

    # use_cache=False: this check mutates its dataset and must not
    # poison the loader's memoized copies.
    dataset = build_dataset(scale=scale, use_cache=False)
    graph = dataset.graph("http://dbpedia.org")
    engine = Engine(dataset)
    cache = ResultCache(max_entries=256)
    queries = [text for _name, text in _cache_population()]
    queries += [case.expert_sparql for case in CASE_STUDIES]
    checked = 0
    with QueryServer(engine, workers=2, result_cache=cache,
                     default_timeout=300.0) as server:
        for round_no in range(2):
            for text in queries:
                # Cold fill, warm hit, and a cache-bypassing control —
                # all three must agree, every round.
                cold = server.submit(text).result(timeout=300.0)
                warm = server.submit(text).result(timeout=300.0)
                uncached = server.submit(
                    text, cache=False).result(timeout=300.0)
                truth = _named_bag(uncached)
                if _named_bag(cold) != truth or _named_bag(warm) != truth:
                    raise AssertionError(
                        "cached and uncached replies differ (round %d) "
                        "for:\n%s" % (round_no, text))
                checked += 1
            # Mutate between rounds: every cached entry predating this
            # write must become unreachable, never stale.
            film = URIRef("http://dbpedia.org/resource/BenchFilm_%d"
                          % (seed + round_no))
            graph.add(film, RDF.type, DBPO.Film)
            graph.add(film, DBPP.starring,
                      URIRef("http://dbpedia.org/resource/Actor_0"))
    hits = cache.stats.hits
    if hits <= 0:
        raise AssertionError("bag-identity rounds never hit the cache")
    return {"queries_checked": checked, "rounds": 2, "mutations": 2,
            "cache_hits": hits, "all_bags_identical": True}


def run_serving_cache(scale: float, total_requests: int = 160,
                      clients: int = 6, workers: int = 6,
                      seed: int = 0) -> dict:
    """The ``serving_cache`` BENCH section."""
    dataset = build_dataset(scale=scale)
    engine = Engine(dataset)
    print("== serving_cache (scale %.3g, %d requests, %d clients, "
          "%d workers, zipf s=1.1) =="
          % (scale, total_requests, clients, workers))
    section = {"scale": scale, "seed": seed}
    # A loaded machine can inflate the sub-millisecond hit latencies and
    # trip the hard speedup bar spuriously; one retry filters that noise
    # without weakening the check itself.
    try:
        section["zipfian"] = run_cache_scenario(
            engine, total_requests, clients, workers, seed)
    except AssertionError as first:
        print("  (retrying zipfian scenario once: %s)" % first)
        section["zipfian"] = run_cache_scenario(
            engine, total_requests, clients, workers, seed + 1000)
    z = section["zipfian"]
    print("  zipfian mix   hit-rate %.2f  hit p50 %7.2fms  "
          "miss p50 %7.2fms  speedup %6.1fx  %6.1f qps"
          % (z["hit_rate"], z["hit_p50_ms"], z["miss_p50_ms"],
             z["speedup_p50"], z["qps"]))
    section["bag_identity"] = verify_cache_bag_identity(
        min(scale, 0.05), seed)
    b = section["bag_identity"]
    print("  bag identity  %d queries x %d rounds, %d mutations, "
          "%d cache hits, all identical"
          % (b["queries_checked"] // b["rounds"], b["rounds"],
             b["mutations"], b["cache_hits"]))
    return section


def run_serving(scale: float, total_requests: int = 120, clients: int = 8,
                workers: int = 4, queue_size: int = 32,
                tenant_cap: Optional[int] = 16,
                request_timeout: float = 30.0, seed: int = 0) -> dict:
    """The ``serving`` BENCH section: both scenarios on one dataset."""
    dataset = build_dataset(scale=scale)
    engine = Engine(dataset)
    print("== serving (scale %.3g, %d requests, %d clients, %d workers) =="
          % (scale, total_requests, clients, workers))
    section = {"scale": scale, "seed": seed}
    section["server"] = run_server_scenario(
        engine, total_requests, clients, workers, queue_size, tenant_cap,
        request_timeout, seed)
    s = section["server"]
    print("  server        p50 %7.1fms  p95 %7.1fms  p99 %7.1fms  "
          "%6.1f qps  shed %.1f%%  failed %d"
          % (s["latency_p50_ms"], s["latency_p95_ms"], s["latency_p99_ms"],
             s["qps"], 100.0 * s["shed_rate"], s["failed"]))
    section["faulty_paging"] = run_faulty_scenario(
        engine, total_requests, clients, seed)
    f = section["faulty_paging"]
    print("  faulty paging p50 %7.1fms  p95 %7.1fms  p99 %7.1fms  "
          "%6.1f qps  retries %d  faults %r  failed %d"
          % (f["latency_p50_ms"], f["latency_p95_ms"], f["latency_p99_ms"],
             f["qps"], f["retries_performed"], f["faults_injected"],
             f["failed"]))
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.1,
                        help="dataset scale (default 0.1)")
    parser.add_argument("--requests", type=int, default=120,
                        help="total requests per scenario")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads")
    parser.add_argument("--workers", type=int, default=4,
                        help="server worker threads")
    parser.add_argument("--queue-size", type=int, default=32,
                        help="server queue bound")
    parser.add_argument("--seed", type=int, default=0,
                        help="traffic-mix and fault-schedule seed")
    parser.add_argument("--out", default=None,
                        help="write the section as JSON to this path")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI configuration")
    parser.add_argument("--cache", action="store_true",
                        help="run the serving_cache section instead of "
                             "the serving section")
    args = parser.parse_args(argv)
    if args.smoke:
        args.scale = 0.02
        args.requests = 40
        args.clients = 4
    if args.cache:
        section = run_serving_cache(args.scale,
                                    total_requests=max(args.requests, 64),
                                    clients=args.clients,
                                    workers=args.workers, seed=args.seed)
    else:
        section = run_serving(args.scale, total_requests=args.requests,
                              clients=args.clients, workers=args.workers,
                              queue_size=args.queue_size, seed=args.seed)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(section, handle, indent=2)
        print("serving section -> %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
