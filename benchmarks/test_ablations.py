"""Ablation benchmarks for the design decisions DESIGN.md calls out.

1. Optimized vs. naive generation as the operator chain grows.
2. Push-down vs. client-side filtering across selectivities.
3. Endpoint page-size sweep (pagination cost).
4. Engine internals: BGP join-order optimization and common-subexpression
   caching on/off.
"""

import pytest

from repro.client import EngineClient, HttpClient
from repro.core import KnowledgeGraph
from repro.data import DBPEDIA_URI
from repro.sparql import Endpoint, Engine

ROUNDS = 3


def _chain_frame(length):
    """A seed plus ``length`` expands over real film predicates."""
    kg = KnowledgeGraph(graph_uri=DBPEDIA_URI)
    frame = kg.entities("dbpo:Film", "film")
    predicates = [("dbpp:studio", "studio"), ("dbpp:country", "country"),
                  ("dbpo:language", "language"), ("dbpo:story", "story"),
                  ("dbpo:runtime", "runtime"), ("dcterms:subject", "subject"),
                  ("rdfs:label", "title"), ("dbpp:director", "director")]
    for predicate, column in predicates[:length]:
        frame = frame.expand("film", [(predicate, column)])
    return frame


@pytest.mark.benchmark(group="ablation-chain-length")
@pytest.mark.parametrize("strategy", ["optimized", "naive"])
@pytest.mark.parametrize("length", [2, 4, 8])
def test_generation_strategy_vs_chain_length(benchmark, strategy, length,
                                             engine_client):
    """Naive cost grows with every extra operator (one more materialized
    subquery); optimized cost stays near-flat."""
    frame = _chain_frame(length)
    query = frame.to_sparql(strategy=strategy)
    benchmark.pedantic(engine_client.execute, args=(query,),
                       rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="ablation-pushdown")
@pytest.mark.parametrize("mode", ["pushdown", "client_side"])
@pytest.mark.parametrize("selectivity", ["rare", "common"])
def test_filter_pushdown_vs_client_side(benchmark, mode, selectivity,
                                        http_client):
    """Pushing the filter into the engine transfers only matching rows;
    client-side filtering ships everything then filters."""
    kg = KnowledgeGraph(graph_uri=DBPEDIA_URI)
    value = ("=dbpr:Gaumont" if selectivity == "rare"
             else "!=dbpr:Gaumont")
    base = kg.entities("dbpo:Film", "film") \
        .expand("film", [("dbpp:studio", "studio"),
                         ("rdfs:label", "title")])

    if mode == "pushdown":
        frame = base.filter({"studio": [value]})

        def run():
            return frame.execute(http_client)
    else:
        target = "http://dbpedia.org/resource/Gaumont"
        keep = ((lambda row: row["studio"] == target)
                if selectivity == "rare"
                else (lambda row: row["studio"] != target))

        def run():
            return base.execute(http_client).filter(keep)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="ablation-pagination")
@pytest.mark.parametrize("page_size", [100, 1000, 10000])
def test_pagination_page_size(benchmark, engine, page_size):
    """Smaller endpoint pages mean more round trips for the same result."""
    endpoint = Endpoint(engine, max_rows=page_size)
    kg = KnowledgeGraph(graph_uri=DBPEDIA_URI)
    query = kg.entities("dbpo:Film", "film") \
        .expand("film", [("rdfs:label", "title")]).to_sparql()

    def run():
        endpoint.clear_cache()
        client = HttpClient(endpoint)
        return client.execute(query)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="ablation-engine-optimizer")
@pytest.mark.parametrize("optimize", [True, False],
                         ids=["join-order-on", "join-order-off"])
def test_engine_join_order_optimization(benchmark, dataset, optimize):
    """Selectivity-based BGP ordering vs. textual order."""
    engine = Engine(dataset, optimize=optimize)
    client = EngineClient(engine)
    # Written selective-last: textual order scans every label and subject
    # first; the optimizer starts from the concrete studio pattern.
    query = """
    PREFIX dbpp: <http://dbpedia.org/property/>
    PREFIX dbpr: <http://dbpedia.org/resource/>
    PREFIX dcterms: <http://purl.org/dc/terms/>
    PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
    SELECT ?film ?title ?subject
    FROM <http://dbpedia.org>
    WHERE {
        ?film rdfs:label ?title .
        ?film dcterms:subject ?subject .
        ?film dbpp:studio dbpr:Gaumont .
    }
    """
    benchmark.pedantic(client.execute, args=(query,),
                       rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="ablation-engine-bgp-cache")
@pytest.mark.parametrize("cache", [True, False],
                         ids=["bgp-cache-on", "bgp-cache-off"])
def test_engine_bgp_cache(benchmark, dataset, cache):
    """Common-subexpression caching pays off on UNION queries that repeat
    the same pattern (e.g. full outer joins)."""
    from repro.workload import get_case_study
    engine = Engine(dataset, cache_bgps=cache)
    client = EngineClient(engine)
    query = get_case_study("movie_genre").frame().to_sparql()
    benchmark.pedantic(client.execute, args=(query,),
                       rounds=ROUNDS, iterations=1)
