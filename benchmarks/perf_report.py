"""Engine micro-benchmark runner — the repo's perf trajectory anchor.

Times a fixed, BGP-heavy query set at two dataset scales against both data
planes of the engine:

* ``columnar``  — the production dictionary-encoded columnar evaluator,
* ``reference`` — the seed dict-of-terms evaluator
  (:class:`~repro.sparql.ReferenceEvaluator`), frozen as the baseline.

For every (scale, query) cell it records best-of-N wall time plus the
:class:`~repro.sparql.EvaluationStats` counters, verifies that both planes
return the identical decoded result bag, and writes everything to
``BENCH_engine.json`` so future PRs have a comparable perf trajectory.

A second section, ``plan_path``, times the paper's case-study pipelines on
both front-end paths of the planner layer — the SPARQL-text round trip
(generate -> translate -> parse -> plan -> execute) versus the direct
model path (generate -> compile -> plan-cache hit -> execute) — verifying
identical results and recording the repeated-execution speedup.

A third section, ``limit_topk``, measures the streaming executor:
``LIMIT 10`` and ``ORDER BY ... LIMIT 10`` windows over the big BGPs, run
on the pipelined plan (LimitPushdown + TopK + early exit) versus the
materialize-everything plan (``Engine(streaming=False,
limit_pushdown=False)``).  It records the speedup and the ``rows_pulled``
vs ``intermediate_rows`` delta, and asserts the two plans return
literally identical rows.

A fourth section, ``aggregation``, measures the streaming hash ``Group``:
the paper's bread-and-butter ``group_by().count()/avg()`` shapes run on
``Engine(streaming='auto')`` (index-backed counting, per-group
accumulators, top-k groups) versus ``Engine(streaming=False)`` (full
materialization of the pre-aggregation table).  It records the speedup,
``rows_pulled``/``groups_built``/``accumulator_rows`` against the
materialized plane's ``intermediate_rows``, and asserts both planes
return literally identical rows.

A fifth section, ``joins``, measures the join subsystem on the dedicated
join corpus (:mod:`repro.workload.joins`: star, cyclic, chain, self-join,
and semi-join shapes): ``Engine()`` with sideways information passing and
multiway intersection in their default ``'auto'`` routing versus
``Engine(sip=False, multiway=False)`` — the engine exactly as it stood
before the join subsystem landed.  Plans are built once per engine and
the *execution* is timed (the planner annotations are amortized by the
plan cache in both configurations), results are verified identical across
both configurations *and* the reference plane, and the
``sip_filtered_rows``/``intersect_steps``/``sorted_runs_built`` counters
are asserted wherever the planner chose the corresponding strategy.

A sixth section, ``wcoj``, measures the generic-join (worst-case-optimal)
executor on the cyclic corpus shapes (triangle, 4-cycle, diamond,
5-clique): ``Engine()`` with the cost-based planner routing cyclic BGPs
through per-variable sorted-run intersection versus the joins-section
baseline ``Engine(sip=False, multiway=False)`` (nested loops) — with the
intersect-plane ``Engine(wcoj=False)`` recorded as a secondary column.
Row bags are verified identical across the wcoj, streaming, materialized,
and reference planes, ``wcoj_steps > 0`` is asserted on every cyclic
plan, and an aggregate-pushdown cell proves a grouped COUNT over the
triangle folds inside the join (``accumulator_rows == 0``).

The ``durability`` section benchmarks the restart story of the storage
tier: it writes a synthetic N-Triples dump (1M triples; 100k under
``--smoke``), times rebuilding a graph by re-parsing the dump versus
checkpointing it into a :class:`~repro.storage.GraphStore` snapshot and
reopening the store from disk, verifies the recovered graph is
identical, and asserts the reopen path is >= 10x faster at full scale —
with the deferred index materialization costs (first query, full warm)
reported separately so the laziness cannot hide work.

Run it from the repo root::

    PYTHONPATH=src python benchmarks/perf_report.py [--out BENCH_engine.json]

Scales default to (0.05, REPRO_BENCH_SCALE); rounds to 3.  ``--smoke``
shrinks everything for CI (one tiny scale, one round); ``--section``
(repeatable) restricts the run to named sections — e.g. ``--section
engine --section joins`` — so CI jobs can stay inside their time budget.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.client import EngineClient
from repro.data import DBPEDIA_URI, build_dataset
from repro.sparql import Engine, Evaluator
from repro.workload import CASE_STUDIES, JOIN_QUERIES

_PREFIXES = """
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX dbpp: <http://dbpedia.org/property/>
PREFIX dbpo: <http://dbpedia.org/ontology/>
PREFIX dcterms: <http://purl.org/dc/terms/>
"""

#: The fixed query set.  Mostly BGP-heavy shapes (the paper's hot path);
#: the tail covers OPTIONAL, aggregation, and DISTINCT so regressions in
#: the non-join operators are visible too.
QUERIES = {
    "bgp2_film_actor": """
        SELECT ?film ?actor WHERE {
            ?film rdf:type dbpo:Film .
            ?film dbpp:starring ?actor .
        }""",
    "bgp3_actor_place": """
        SELECT ?film ?actor ?place WHERE {
            ?film rdf:type dbpo:Film .
            ?film dbpp:starring ?actor .
            ?actor dbpp:birthPlace ?place .
        }""",
    "bgp4_film_star": """
        SELECT ?film ?actor ?studio ?country WHERE {
            ?film rdf:type dbpo:Film .
            ?film dbpp:starring ?actor .
            ?film dbpp:studio ?studio .
            ?film dbpp:country ?country .
        }""",
    "bgp4_player_team": """
        SELECT ?player ?team ?sponsor ?nat WHERE {
            ?player rdf:type dbpo:BasketballPlayer .
            ?player dbpp:team ?team .
            ?team dbpo:sponsor ?sponsor .
            ?player dbpp:nationality ?nat .
        }""",
    "bgp_self_join_costar": """
        SELECT ?a ?b WHERE {
            ?film dbpp:starring ?a .
            ?film dbpp:starring ?b .
        }""",
    "optional_birthdate": """
        SELECT ?actor ?place ?date WHERE {
            ?film dbpp:starring ?actor .
            ?actor dbpp:birthPlace ?place
            OPTIONAL { ?actor dbpo:birthDate ?date }
        }""",
    "group_count_films": """
        SELECT ?actor (COUNT(?film) AS ?n) WHERE {
            ?film dbpp:starring ?actor .
        } GROUP BY ?actor""",
    "distinct_actors": """
        SELECT DISTINCT ?actor WHERE {
            ?film dbpp:starring ?actor .
        }""",
}

MODES = ("reference", "columnar")

#: Bounded windows over the big BGPs: the streaming executor's workload.
#: ``topk10_*`` exercise the fused bounded sort (threshold-pruned when the
#: sort variable binds before the join fan-out), ``limit10_*`` the pure
#: early-exit path.
LIMIT_TOPK_QUERIES = {
    "topk10_costar_actor": ("topk", """
        SELECT ?a ?b WHERE {
            ?film dbpp:starring ?a .
            ?film dbpp:starring ?b .
        } ORDER BY ?a LIMIT 10"""),
    "topk10_costar_actor_desc": ("topk", """
        SELECT ?a ?b WHERE {
            ?film dbpp:starring ?a .
            ?film dbpp:starring ?b .
        } ORDER BY DESC(?a) LIMIT 10"""),
    "topk10_costar_country": ("topk", """
        SELECT ?a ?b ?c WHERE {
            ?film dbpp:starring ?a .
            ?film dbpp:starring ?b .
            ?film dbpp:country ?c .
        } ORDER BY ?a LIMIT 10"""),
    "limit10_costar": ("limit", """
        SELECT ?a ?b WHERE {
            ?film dbpp:starring ?a .
            ?film dbpp:starring ?b .
        } LIMIT 10"""),
    "limit10_bgp4_film_star": ("limit", """
        SELECT ?film ?actor ?studio ?country WHERE {
            ?film rdf:type dbpo:Film .
            ?film dbpp:starring ?actor .
            ?film dbpp:studio ?studio .
            ?film dbpp:country ?country .
        } LIMIT 10"""),
    "limit10_distinct_actors": ("limit", """
        SELECT DISTINCT ?actor WHERE {
            ?film dbpp:starring ?actor .
        } LIMIT 10"""),
}


#: Grouped workloads: the aggregation shapes the paper's case studies and
#: exploration operators end in.  ``count_*`` and ``class_distribution``
#: (the paper's ``classes_and_freq``) hit the index-backed single-pattern
#: fast path, ``avg_*`` the general streaming hash aggregation (expected
#: near parity — its win is the unmaterialized input, not CPU), and
#: ``top10_*`` the bounded-group heap (TopK over Group).
AGGREGATION_QUERIES = {
    "count_films_by_actor": """
        SELECT ?actor (COUNT(?film) AS ?n) WHERE {
            ?film dbpp:starring ?actor .
        } GROUP BY ?actor""",
    "count_distinct_actors_by_film": """
        SELECT ?film (COUNT(DISTINCT ?actor) AS ?n) WHERE {
            ?film dbpp:starring ?actor .
        } GROUP BY ?film""",
    "count_prolific_actors_having": """
        SELECT ?actor (COUNT(?film) AS ?n) WHERE {
            ?film dbpp:starring ?actor .
        } GROUP BY ?actor HAVING (COUNT(?film) >= 5)""",
    "class_distribution": """
        SELECT ?class (COUNT(?instance) AS ?n) WHERE {
            ?instance rdf:type ?class .
        } GROUP BY ?class""",
    "avg_runtime_by_actor": """
        SELECT ?actor (AVG(?rt) AS ?mean) WHERE {
            ?film dbpp:starring ?actor .
            ?film dbpo:runtime ?rt .
        } GROUP BY ?actor""",
    "top10_actors_by_film_count": """
        SELECT ?actor (COUNT(?film) AS ?n) WHERE {
            ?film dbpp:starring ?actor .
        } GROUP BY ?actor ORDER BY DESC(?n) ?actor LIMIT 10""",
}


def run_aggregation(scale: float, rounds: int) -> dict:
    """Time grouped queries: streaming hash aggregation vs materialized.

    The baseline engine pins streaming off — ``Group`` consumes a fully
    materialized input table — while the streaming engine is the default
    ``streaming='auto'`` configuration, which routes every aggregate plan
    through the pipelined executor (index-backed counting for the
    single-pattern COUNT shape, per-group accumulators otherwise).  Both
    must return literally identical rows: the two columnar planes share
    one deterministic row order on these BGP-spine queries, including
    first-seen group order.
    """
    dataset = build_dataset(scale=scale)
    streaming = Engine(dataset)
    baseline = Engine(dataset, streaming=False)
    section = {"scale": scale, "rounds": rounds, "queries": []}
    print("== aggregation (scale %.3g) ==" % scale)
    speedups = []
    for name in sorted(AGGREGATION_QUERIES):
        query = _PREFIXES + AGGREGATION_QUERIES[name]
        stream_s, stream_result, stream_stats = time_query(
            streaming, query, rounds)
        base_s, base_result, base_stats = time_query(
            baseline, query, rounds)
        if stream_result.rows != base_result.rows:
            raise AssertionError(
                "streaming and materialized aggregation disagree on %r "
                "at scale %s" % (name, scale))
        cell = {
            "query": name,
            "groups": len(stream_result),
            "identical_results": True,
            "streaming_seconds": stream_s,
            "materialized_seconds": base_s,
            "speedup": base_s / stream_s if stream_s > 0 else float("inf"),
            "rows_pulled": stream_stats.rows_pulled,
            "groups_built": stream_stats.groups_built,
            "accumulator_rows": stream_stats.accumulator_rows,
            "materialized_intermediate_rows": base_stats.intermediate_rows,
        }
        # The streaming plane's row traffic is bounded by what the
        # materialized plane builds: the hash path pulls each input row
        # once, the index-backed path pulls only the finished groups.
        if cell["rows_pulled"] > cell["materialized_intermediate_rows"]:
            raise AssertionError(
                "streaming aggregation pulled %d rows on %r, above the "
                "materialized plane's %d intermediate rows"
                % (cell["rows_pulled"], name,
                   cell["materialized_intermediate_rows"]))
        speedups.append(cell["speedup"])
        section["queries"].append(cell)
        print("  %-30s mat %8.4fs  stream %8.4fs  speedup %5.2fx  "
              "pulled %6d vs %8d rows  (%d groups)" % (
                  name, base_s, stream_s, cell["speedup"],
                  cell["rows_pulled"],
                  cell["materialized_intermediate_rows"], cell["groups"]))
    section["geomean_speedup"] = _geomean(speedups)
    section["min_speedup"] = min(speedups)
    section["all_results_identical"] = True
    print("aggregation geomean speedup %.2fx (min %.2fx)"
          % (section["geomean_speedup"], section["min_speedup"]))
    return section


def run_limit_topk(scale: float, rounds: int) -> dict:
    """Time bounded windows: streaming executor vs materialized baseline.

    The baseline engine disables LimitPushdown *and* streaming — the
    materialize-everything behaviour the ISSUE's motivation describes —
    while the streaming engine is the default configuration.  Both must
    return literally identical rows (same order: the two columnar planes
    share one deterministic row order).
    """
    dataset = build_dataset(scale=scale)
    streaming = Engine(dataset)
    baseline = Engine(dataset, streaming=False, limit_pushdown=False)
    section = {"scale": scale, "rounds": rounds, "queries": []}
    print("== limit/top-k windows (scale %.3g) ==" % scale)
    kind_speedups = {"topk": [], "limit": []}
    for name in sorted(LIMIT_TOPK_QUERIES):
        kind, body = LIMIT_TOPK_QUERIES[name]
        query = _PREFIXES + body
        stream_s, stream_result, stream_stats = time_query(
            streaming, query, rounds)
        base_s, base_result, base_stats = time_query(
            baseline, query, rounds)
        if stream_result.rows != base_result.rows:
            raise AssertionError(
                "streaming and materialized plans disagree on %r "
                "at scale %s" % (name, scale))
        cell = {
            "query": name,
            "kind": kind,
            "rows": len(stream_result),
            "identical_results": True,
            "streaming_seconds": stream_s,
            "materialized_seconds": base_s,
            "speedup": base_s / stream_s if stream_s > 0 else float("inf"),
            "rows_pulled": stream_stats.rows_pulled,
            "early_exits": stream_stats.early_exits,
            "materialized_intermediate_rows": base_stats.intermediate_rows,
        }
        kind_speedups[kind].append(cell["speedup"])
        section["queries"].append(cell)
        print("  %-26s mat %8.4fs  stream %8.4fs  speedup %5.2fx  "
              "pulled %6d vs %8d rows" % (
                  name, base_s, stream_s, cell["speedup"],
                  cell["rows_pulled"],
                  cell["materialized_intermediate_rows"]))
    section["topk_geomean_speedup"] = _geomean(kind_speedups["topk"])
    section["limit_geomean_speedup"] = _geomean(kind_speedups["limit"])
    section["all_results_identical"] = True
    print("limit/top-k geomeans: topk %.2fx, limit %.2fx"
          % (section["topk_geomean_speedup"],
             section["limit_geomean_speedup"]))
    return section


def run_joins(scale: float, rounds: int) -> dict:
    """Time the join corpus: SIP + multiway intersection vs the PR-4 engine.

    Both engines are the streaming-auto columnar engine; they differ only
    in the join-subsystem knobs.  Plans are built once per engine (their
    annotations are identical — the knobs act at execution time) and
    ``execute_plan`` is what the clock covers.  Every query must return
    the identical row bag on the optimized engine, the baseline engine,
    and the dict-based reference plane; queries whose planner-chosen
    strategy is SIP must prove ``sip_filtered_rows > 0`` and multiway
    ones ``intersect_steps > 0``.
    """
    dataset = build_dataset(scale=scale)
    optimized = Engine(dataset)
    baseline = Engine(dataset, sip=False, multiway=False)
    reference = Engine(dataset, columnar=False)
    graph = dataset.graph(DBPEDIA_URI)
    runs_before = graph.sorted_runs_built
    section = {"scale": scale, "rounds": rounds, "queries": []}
    print("== joins (scale %.3g) ==" % scale)
    speedups = []
    for query in JOIN_QUERIES:
        opt_plan = optimized.plan(query.sparql, DBPEDIA_URI)
        base_plan = baseline.plan(query.sparql, DBPEDIA_URI)

        def best_of(engine, plan):
            best = None
            result = None
            for _ in range(rounds):
                start = time.perf_counter()
                result = engine.execute_plan(plan, DBPEDIA_URI)
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best:
                    best = elapsed
            return best, result, engine.last_stats

        opt_s, opt_result, opt_stats = best_of(optimized, opt_plan)
        base_s, base_result, base_stats = best_of(baseline, base_plan)
        ref_result = reference.query(query.sparql,
                                     default_graph_uri=DBPEDIA_URI)
        opt_key = _result_key(opt_result)
        if opt_key != _result_key(base_result) \
                or opt_key != _result_key(ref_result):
            raise AssertionError(
                "join corpus query %r disagrees across engines at scale %s"
                % (query.key, scale))
        cell = {
            "query": query.key,
            "shape": query.shape,
            "expect": query.expect,
            "rows": len(opt_result),
            "identical_results": True,
            "optimized_seconds": opt_s,
            "baseline_seconds": base_s,
            "speedup": base_s / opt_s if opt_s > 0 else float("inf"),
            "sip_filtered_rows": opt_stats.sip_filtered_rows,
            "intersect_steps": opt_stats.intersect_steps,
            "wcoj_steps": opt_stats.wcoj_steps,
            "baseline_intermediate_rows": base_stats.intermediate_rows,
            "optimized_intermediate_rows": opt_stats.intermediate_rows,
        }
        if query.expect == "sip" and cell["sip_filtered_rows"] == 0:
            raise AssertionError(
                "planner chose SIP for %r but no rows were filtered"
                % query.key)
        if query.expect == "multiway" and cell["intersect_steps"] == 0:
            raise AssertionError(
                "planner chose multiway for %r but no intersections ran"
                % query.key)
        if query.expect == "wcoj" and cell["wcoj_steps"] == 0:
            raise AssertionError(
                "planner chose generic join for %r but no wcoj steps ran"
                % query.key)
        speedups.append(cell["speedup"])
        section["queries"].append(cell)
        print("  %-30s base %8.4fs  opt %8.4fs  speedup %5.2fx  "
              "sip %6d  isect %6d  (%s, %d rows)" % (
                  query.key, base_s, opt_s, cell["speedup"],
                  cell["sip_filtered_rows"], cell["intersect_steps"],
                  query.expect, cell["rows"]))
    section["sorted_runs_built"] = graph.sorted_runs_built - runs_before
    if section["sorted_runs_built"] <= 0:
        raise AssertionError("join corpus built no sorted runs")
    section["geomean_speedup"] = _geomean(speedups)
    section["min_speedup"] = min(speedups)
    section["all_results_identical"] = True
    print("joins geomean speedup %.2fx (min %.2fx, %d sorted runs built)"
          % (section["geomean_speedup"], section["min_speedup"],
             section["sorted_runs_built"]))
    return section


def run_wcoj(scale: float, rounds: int) -> dict:
    """Time the generic-join executor on the cyclic corpus shapes.

    Three configurations over the four canonical cyclic shapes —
    triangle, 4-cycle, diamond, and 5-clique over the heavy-tailed
    collaborator graph (the costar cyclic queries stay in the ``joins``
    section; their tiny fan-outs make them parity pins, not win cases):

    * ``wcoj``      — ``Engine()``: the cost-based planner routes cyclic
      BGPs through the generic-join executor,
    * ``intersect`` — ``Engine(wcoj=False)``: the PR-5 plans (per-step
      multiway intersection where worthwhile), recorded as a secondary
      column,
    * ``baseline``  — ``Engine(sip=False, multiway=False)``: the
      joins-section baseline (pure nested loops), which the headline
      speedup is measured against.

    Plans are built once per engine and ``execute_plan`` is timed.  Row
    bags must be identical across the wcoj engine (both executors), the
    intersect plane, the baseline, and the dict-based reference; every
    cyclic plan must prove ``wcoj_steps > 0``.  A final
    ``aggregate_pushdown`` cell runs a grouped COUNT over the triangle
    on the streaming plane and asserts the fold happened inside the join
    (``accumulator_rows == 0``) while still matching the baseline's rows.
    """
    dataset = build_dataset(scale=scale)
    wcoj_on = Engine(dataset)
    wcoj_stream = Engine(dataset, streaming=True)
    wcoj_mat = Engine(dataset, streaming=False)
    intersect = Engine(dataset, wcoj=False)
    baseline = Engine(dataset, sip=False, multiway=False)
    reference = Engine(dataset, columnar=False)
    section = {"scale": scale, "rounds": rounds, "queries": []}
    print("== wcoj (scale %.3g) ==" % scale)
    speedups = []
    shapes = ("triangle_collaborators", "cycle4_collaborators",
              "diamond_collaborators", "clique5_collaborators")
    for query in [q for q in JOIN_QUERIES if q.key in shapes]:

        def best_of(engine):
            plan = engine.plan(query.sparql, DBPEDIA_URI)
            best = None
            result = None
            for _ in range(rounds):
                start = time.perf_counter()
                result = engine.execute_plan(plan, DBPEDIA_URI)
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best:
                    best = elapsed
            return best, result, engine.last_stats

        on_s, on_result, on_stats = best_of(wcoj_on)
        int_s, int_result, _ = best_of(intersect)
        base_s, base_result, _ = best_of(baseline)
        on_key = _result_key(on_result)
        planes = {
            "streaming": wcoj_stream.execute_plan(
                wcoj_stream.plan(query.sparql, DBPEDIA_URI), DBPEDIA_URI),
            "materialized": wcoj_mat.execute_plan(
                wcoj_mat.plan(query.sparql, DBPEDIA_URI), DBPEDIA_URI),
            "intersect": int_result,
            "baseline": base_result,
            "reference": reference.query(query.sparql,
                                         default_graph_uri=DBPEDIA_URI),
        }
        for plane, result in planes.items():
            if _result_key(result) != on_key:
                raise AssertionError(
                    "wcoj corpus query %r disagrees with the %s plane "
                    "at scale %s" % (query.key, plane, scale))
        if on_stats.wcoj_steps == 0:
            raise AssertionError(
                "cyclic corpus query %r ran no generic-join steps"
                % query.key)
        cell = {
            "query": query.key,
            "shape": query.shape,
            "rows": len(on_result),
            "identical_results": True,
            "wcoj_seconds": on_s,
            "intersect_seconds": int_s,
            "baseline_seconds": base_s,
            "speedup": base_s / on_s if on_s > 0 else float("inf"),
            "speedup_vs_intersect": int_s / on_s if on_s > 0
            else float("inf"),
            "wcoj_steps": on_stats.wcoj_steps,
            "intersect_steps": on_stats.intersect_steps,
        }
        speedups.append(cell["speedup"])
        section["queries"].append(cell)
        print("  %-30s base %8.4fs  isect %8.4fs  wcoj %8.4fs  "
              "speedup %6.2fx  steps %6d  (%d rows)" % (
                  query.key, base_s, int_s, on_s, cell["speedup"],
                  cell["wcoj_steps"], cell["rows"]))

    count_query = _PREFIXES + """
        SELECT ?a (COUNT(*) AS ?n) WHERE {
            ?a dbpp:collaborator ?b .
            ?b dbpp:collaborator ?c .
            ?a dbpp:collaborator ?c .
        } GROUP BY ?a"""
    push_engine = Engine(dataset, streaming=True)
    fold_engine = Engine(dataset, streaming=True, wcoj=False)
    push_s, push_result, push_stats = time_query(push_engine, count_query,
                                                 rounds)
    fold_s, fold_result, fold_stats = time_query(fold_engine, count_query,
                                                 rounds)
    if _result_key(push_result) != _result_key(fold_result):
        raise AssertionError(
            "aggregate pushdown changed the grouped COUNT result")
    if push_stats.accumulator_rows != 0:
        raise AssertionError(
            "aggregate pushdown materialized %d join rows into "
            "accumulators" % push_stats.accumulator_rows)
    if push_stats.wcoj_steps == 0:
        raise AssertionError("aggregate pushdown ran no generic-join steps")
    section["aggregate_pushdown"] = {
        "query": "triangle_count_by_collaborator",
        "groups": len(push_result),
        "identical_results": True,
        "pushdown_seconds": push_s,
        "general_seconds": fold_s,
        "pushdown_accumulator_rows": push_stats.accumulator_rows,
        "general_accumulator_rows": fold_stats.accumulator_rows,
        "wcoj_steps": push_stats.wcoj_steps,
    }
    print("  aggregate pushdown: general %.4fs -> pushdown %.4fs "
          "(%d accumulator rows -> %d)"
          % (fold_s, push_s, fold_stats.accumulator_rows,
             push_stats.accumulator_rows))
    section["geomean_speedup"] = _geomean(speedups)
    section["min_speedup"] = min(speedups)
    section["all_results_identical"] = True
    print("wcoj geomean speedup %.2fx over nested-loop baseline "
          "(min %.2fx)" % (section["geomean_speedup"],
                           section["min_speedup"]))
    return section


#: The vectorized section's timing set: pure-id plans (every operator has
#: a columnar form, so ``row_fallbacks`` must be 0) over BGP-heavy shapes.
#: ``group_count_by_typed_actor`` uses a two-pattern BGP on purpose — the
#: single-pattern COUNT collapses into index-backed counting on *both*
#: planes and would measure nothing.
VECTORIZED_QUERIES = {
    "bgp2_film_actor": QUERIES["bgp2_film_actor"],
    "bgp3_actor_place": QUERIES["bgp3_actor_place"],
    "bgp4_film_star": QUERIES["bgp4_film_star"],
    "bgp4_player_team": QUERIES["bgp4_player_team"],
    "bgp_self_join_costar": QUERIES["bgp_self_join_costar"],
    "distinct_actors": QUERIES["distinct_actors"],
    "filter_country_us": """
        SELECT ?film ?actor WHERE {
            ?film dbpp:starring ?actor .
            ?film dbpp:country ?country .
            FILTER(?country = <http://dbpedia.org/resource/United_States>)
        }""",
    "group_count_by_typed_actor": """
        SELECT ?actor (COUNT(?film) AS ?n) WHERE {
            ?film rdf:type dbpo:Film .
            ?film dbpp:starring ?actor .
        } GROUP BY ?actor""",
}


def _drain(dataset, plan, vectorize: bool, rounds: int):
    """Best-of-``rounds`` wall time to pull the plan's data plane dry.

    Times batch production only — no term decode, no result-set build —
    because decode cost is identical across planes and would dilute the
    operator-level difference the section measures.  Multiway
    intersection and generic join are pinned off so both planes execute
    the *same* pipelined join steps (those strategies have no columnar
    form; the engine's ``vectorize='auto'`` routing excludes such plans,
    and the joins/wcoj sections already measure them on their own).
    Returns ``(seconds, rows, stats)`` from the fastest round.
    """
    best = None
    best_stats = None
    total = 0
    for _ in range(rounds):
        evaluator = Evaluator(dataset, optimize=False, multiway=False,
                              wcoj=False, vectorize=vectorize)
        start = time.perf_counter()
        stream = evaluator.evaluate_query_stream(plan.query, DBPEDIA_URI)
        rows = 0
        for batch in stream.batches:
            rows += len(batch)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
            best_stats = evaluator.stats
            total = rows
    return best, total, best_stats


def run_vectorized(scale: float, rounds: int) -> dict:
    """Time the columnar batch plane against the row-tuple streaming plane.

    Both configurations drive the *same* compiled steps in the same order
    through the same streaming operators; they differ only in the batch
    representation (``ColumnBatch`` vs lists of row tuples).  The clock
    covers the data-plane drain (see :func:`_drain`).  Every timing query
    is a pure-id plan and must report ``row_fallbacks == 0`` and a
    non-zero ``vector_batches`` on the columnar plane; the full decoded
    result bag is verified identical across the vectorized, row-streaming,
    materialized, and reference planes — on this query set, the paper's
    case studies, and the join corpus.
    """
    dataset = build_dataset(scale=scale)
    planner = Engine(dataset)
    section = {"scale": scale, "rounds": rounds, "queries": []}
    print("== vectorized (scale %.3g) ==" % scale)
    speedups = []
    for name in sorted(VECTORIZED_QUERIES):
        query = _PREFIXES + VECTORIZED_QUERIES[name]
        plan = planner.plan(query, DBPEDIA_URI)
        vec_s, vec_rows, vec_stats = _drain(dataset, plan, True, rounds)
        row_s, row_rows, _ = _drain(dataset, plan, False, rounds)
        if vec_rows != row_rows:
            raise AssertionError(
                "vectorized plane produced %d rows on %r, row plane %d"
                % (vec_rows, name, row_rows))
        if vec_stats.row_fallbacks:
            raise AssertionError(
                "pure-id plan %r fell back to row view %d time(s)"
                % (name, vec_stats.row_fallbacks))
        if not vec_stats.vector_batches:
            raise AssertionError(
                "vectorized plane produced no ColumnBatch on %r" % name)
        cell = {
            "query": name,
            "rows": vec_rows,
            "identical_results": True,
            "vectorized_seconds": vec_s,
            "row_seconds": row_s,
            "speedup": row_s / vec_s if vec_s > 0 else float("inf"),
            "vector_batches": vec_stats.vector_batches,
            "selection_vector_hits": vec_stats.selection_vector_hits,
            "row_fallbacks": vec_stats.row_fallbacks,
            "rows_pulled": vec_stats.rows_pulled,
        }
        speedups.append(cell["speedup"])
        section["queries"].append(cell)
        print("  %-28s row %8.4fs  vec %8.4fs  speedup %5.2fx  "
              "vbatches %5d  selhits %3d  (%d rows)" % (
                  name, row_s, vec_s, cell["speedup"],
                  cell["vector_batches"], cell["selection_vector_hits"],
                  vec_rows))
    # Bag-identity sweep: decoded results across all four planes, over
    # this section's queries plus the case studies and the join corpus.
    engines = {
        "vectorized": Engine(dataset, vectorize=True),
        "streaming": Engine(dataset, vectorize=False),
        "materialized": Engine(dataset, streaming=False, vectorize=False),
        "reference": Engine(dataset, columnar=False),
    }
    sweep = [(name, _PREFIXES + body)
             for name, body in sorted(VECTORIZED_QUERIES.items())]
    sweep += [(case.key, case.frame().to_sparql()) for case in CASE_STUDIES]
    sweep += [(q.key, q.sparql) for q in JOIN_QUERIES]
    def named_key(result):
        # ``SELECT *`` column order is plane-dependent; compare bags of
        # name->value bindings rather than positional tuples.
        return sorted(tuple(sorted((v, repr(val)) for v, val
                                   in zip(result.variables, row)))
                      for row in result.rows)

    for name, query in sweep:
        keys = {plane: named_key(engine.query(
                    query, default_graph_uri=DBPEDIA_URI))
                for plane, engine in engines.items()}
        mismatched = [p for p in keys if keys[p] != keys["reference"]]
        if mismatched:
            raise AssertionError(
                "planes %s disagree with reference on %r at scale %s"
                % (mismatched, name, scale))
    section["identity_sweep_queries"] = len(sweep)
    section["geomean_speedup"] = _geomean(speedups)
    section["min_speedup"] = min(speedups)
    section["all_results_identical"] = True
    print("vectorized geomean speedup %.2fx (min %.2fx; %d identity "
          "queries across 4 planes)"
          % (section["geomean_speedup"], section["min_speedup"],
             len(sweep)))
    return section


def _geomean(values):
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def _result_key(result):
    """Order-insensitive fingerprint of the decoded rows."""
    return sorted(tuple(map(repr, row)) for row in result.rows)


def time_query(engine: Engine, query: str, rounds: int):
    """Best-of-``rounds`` wall time; returns (seconds, result, stats)."""
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = engine.query(query, default_graph_uri=DBPEDIA_URI)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result, engine.last_stats


def run_plan_path(scale: float, iterations: int) -> dict:
    """Time the case studies on the text path vs the direct plan path.

    Both paths regenerate the query model per iteration (that is what a
    real RDFFrame re-execution pays); the text path additionally pays
    translate + validate + parse, the direct path compiles the model and
    then hits the plan cache.
    """
    dataset = build_dataset(scale=scale)
    engine = Engine(dataset)
    client = EngineClient(engine)
    section = {"scale": scale, "iterations": iterations, "cases": []}
    print("== plan path vs text path (scale %.3g, %d iterations) =="
          % (scale, iterations))
    for case in CASE_STUDIES:
        frame = case.frame()
        direct_df = frame.execute(client)           # warm + direct result
        text_df = client.execute(frame.to_sparql())  # warm + text result
        identical = direct_df.equals_bag(text_df)
        hits_before = engine.plan_cache_hits

        def best_of(thunk):
            best = None
            for _ in range(iterations):
                start = time.perf_counter()
                thunk()
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best:
                    best = elapsed
            return best

        text_seconds = best_of(lambda: client.execute(frame.to_sparql()))
        plan_seconds = best_of(lambda: frame.execute(client))

        plan = engine.last_plan
        cell = {
            "case": case.key,
            "rows": len(direct_df),
            "identical_results": identical,
            "text_seconds": text_seconds,
            "plan_seconds": plan_seconds,
            "speedup": (text_seconds / plan_seconds
                        if plan_seconds > 0 else float("inf")),
            "plan_cache_hits": engine.plan_cache_hits - hits_before,
            "passes": [s.as_dict() for s in plan.pass_stats] if plan else [],
        }
        if not identical:
            raise AssertionError(
                "direct plan path and text path disagree on case study %r"
                % case.key)
        section["cases"].append(cell)
        print("  %-16s text %8.4fs  plan %8.4fs  speedup %5.2fx  (%d rows)"
              % (case.key, text_seconds, plan_seconds, cell["speedup"],
                 cell["rows"]))
    geomean = _geomean([c["speedup"] for c in section["cases"]])
    section["geomean_speedup"] = geomean
    section["all_results_identical"] = True
    print("plan-path geomean speedup %.2fx" % geomean)
    return section


def run_durability(triple_count: int) -> dict:
    """Benchmark the restart story: reopen-from-snapshot vs re-parse.

    Writes ``triple_count`` synthetic triples to an N-Triples file,
    times (a) the cold rebuild — streaming the dump back through the
    parser into a fresh graph — and (b) checkpointing the loaded graph
    into a :class:`~repro.storage.GraphStore` snapshot and reopening the
    store from disk.  The reopen path decodes and checksum-validates
    packed id columns instead of re-lexing text, and defers nested-index
    materialization until a query touches each ordering — so three
    numbers are reported: ``reopen_seconds`` (open + validate),
    ``first_query_seconds`` (the spot-check count, which pays for the
    one index it needs), and ``warm_seconds`` (materializing the
    remaining orderings).  The headline ``reopen_speedup`` — reopen vs
    rebuild — must be an order of magnitude, and the first-answer and
    full-warm costs are recorded alongside so nothing hides in lazy
    initialization.  The recovered graph is verified to be the same
    size and to answer the spot-check count identically.
    """
    import shutil
    import tempfile

    from repro.rdf.dictionary import TermDictionary
    from repro.rdf.graph import Graph
    from repro.rdf.ntriples import parse_into_graph
    from repro.rdf.terms import URIRef
    from repro.storage import GraphStore

    print("== durability (%d triples) ==" % triple_count)
    work = tempfile.mkdtemp(prefix="repro-durability-")
    try:
        # Degree-10 subjects over shared object/literal pools: term reuse
        # like a real graph, and (s, p, o) collisions impossible because
        # the 10 object picks of one subject are 10 *consecutive* pool
        # slots (the pool is far larger than 10).
        dump = os.path.join(work, "synthetic.nt")
        subjects = max(1, triple_count // 10)
        uri_pool = max(11, triple_count // 20)
        lit_pool = max(11, triple_count // 25)
        start = time.perf_counter()
        with open(dump, "w", encoding="utf-8") as handle:
            for s in range(subjects):
                base = s * 10
                for j in range(10):
                    if j == 7:
                        handle.write(
                            '<http://synth/s%d> <http://synth/p%d> '
                            '"payload value %d" .\n'
                            % (s, j % 8, (base + j) % lit_pool))
                    else:
                        handle.write(
                            "<http://synth/s%d> <http://synth/p%d> "
                            "<http://synth/o%d> .\n"
                            % (s, j % 8, (base + j) % uri_pool))
        generate_seconds = time.perf_counter() - start

        graph = Graph("http://synth/g", dictionary=TermDictionary())
        start = time.perf_counter()
        loaded = parse_into_graph(dump, graph)
        rebuild_seconds = time.perf_counter() - start
        if loaded != subjects * 10:
            raise AssertionError("generator produced duplicate triples "
                                 "(%d loaded)" % loaded)
        print("  rebuild from N-Triples: %d triples in %.3fs"
              % (loaded, rebuild_seconds))

        home = os.path.join(work, "store")
        store = GraphStore(home)
        store.open()
        store.attach(graph)
        start = time.perf_counter()
        store.checkpoint()
        checkpoint_seconds = time.perf_counter() - start
        store.close()
        snapshot_bytes = sum(
            os.path.getsize(os.path.join(home, name))
            for name in os.listdir(home))

        start = time.perf_counter()
        store2 = GraphStore(home)
        store2.open()
        reopen_seconds = time.perf_counter() - start
        recovered = store2.graph("http://synth/g")
        if len(recovered) != len(graph):
            raise AssertionError(
                "recovered %d triples, expected %d"
                % (len(recovered), len(graph)))
        probe = URIRef("http://synth/p0")
        start = time.perf_counter()
        probe_count = recovered.count(None, probe, None)
        first_query_seconds = time.perf_counter() - start
        if probe_count != graph.count(None, probe, None):
            raise AssertionError("recovered graph answers differently")
        start = time.perf_counter()
        recovered.spo_index()                  # materialize SPO
        recovered.predicates_for(0, 0)         # materialize OSP
        warm_seconds = time.perf_counter() - start
        store2.close()

        serve_seconds = reopen_seconds + first_query_seconds
        speedup = (rebuild_seconds / reopen_seconds
                   if reopen_seconds > 0 else float("inf"))
        first_answer_speedup = (rebuild_seconds / serve_seconds
                                if serve_seconds > 0 else float("inf"))
        print("  checkpoint %.3fs (%.1f MB)  reopen %.3fs  "
              "first query %.3fs  warm rest %.3fs"
              % (checkpoint_seconds, snapshot_bytes / 1e6,
                 reopen_seconds, first_query_seconds, warm_seconds))
        print("  reopen speedup %.1fx over rebuild "
              "(%.1fx to first answer)"
              % (speedup, first_answer_speedup))
        if triple_count >= 1_000_000 and speedup < 10:
            raise AssertionError(
                "reopen-from-snapshot speedup %.1fx is below the 10x "
                "durability target" % speedup)
        return {
            "triples": loaded,
            "generate_seconds": generate_seconds,
            "rebuild_seconds": rebuild_seconds,
            "checkpoint_seconds": checkpoint_seconds,
            "reopen_seconds": reopen_seconds,
            "first_query_seconds": first_query_seconds,
            "warm_seconds": warm_seconds,
            "reopen_speedup": speedup,
            "first_answer_speedup": first_answer_speedup,
            "snapshot_bytes": snapshot_bytes,
            "identical_after_reopen": True,
        }
    finally:
        shutil.rmtree(work, ignore_errors=True)


#: Every section the report can produce, in run order.
SECTIONS = ("engine", "plan_path", "limit_topk", "aggregation", "joins",
            "wcoj", "vectorized", "serving", "serving_cache", "durability")


def write_summary(report, out_path: str) -> str:
    """Distill ``report`` into a compact ``BENCH_summary.json``.

    One headline number (or a small dict of them) per section, written
    next to ``out_path``.  If a summary file already exists there its
    sections are preserved and the new ones merged in, so CI runs that
    split sections across invocations accumulate into a single file.
    """
    summary_path = os.path.join(os.path.dirname(os.path.abspath(out_path)),
                                "BENCH_summary.json")
    sections = {}
    if os.path.exists(summary_path):
        try:
            with open(summary_path) as handle:
                sections = json.load(handle).get("sections", {})
        except (OSError, ValueError):
            sections = {}
    if report.get("summary"):
        sections["engine"] = {
            "geomean_speedup": report["summary"]["geomean_speedup"]}
    for name in ("plan_path", "aggregation", "joins", "wcoj", "vectorized"):
        if name in report:
            sections[name] = {
                "geomean_speedup": report[name]["geomean_speedup"]}
    if "vectorized" in report:
        sections["vectorized"]["min_speedup"] = (
            report["vectorized"]["min_speedup"])
    if "limit_topk" in report:
        sections["limit_topk"] = {
            "topk_geomean_speedup":
                report["limit_topk"]["topk_geomean_speedup"],
            "limit_geomean_speedup":
                report["limit_topk"]["limit_geomean_speedup"],
        }
    if "serving" in report:
        server = report["serving"]["server"]
        sections["serving"] = {
            "latency_p50_ms": server["latency_p50_ms"],
            "latency_p95_ms": server["latency_p95_ms"],
            "latency_p99_ms": server["latency_p99_ms"],
        }
    if "serving_cache" in report:
        zipfian = report["serving_cache"]["zipfian"]
        sections["serving_cache"] = {
            "hit_rate": zipfian["hit_rate"],
            "hit_p50_ms": zipfian["hit_p50_ms"],
            "miss_p50_ms": zipfian["miss_p50_ms"],
            "speedup_p50": zipfian["speedup_p50"],
        }
    if "durability" in report:
        durability = report["durability"]
        sections["durability"] = {
            "triples": durability["triples"],
            "rebuild_seconds": durability["rebuild_seconds"],
            "reopen_seconds": durability["reopen_seconds"],
            "first_query_seconds": durability["first_query_seconds"],
            "warm_seconds": durability["warm_seconds"],
            "reopen_speedup": durability["reopen_speedup"],
            "first_answer_speedup": durability["first_answer_speedup"],
        }
    with open(summary_path, "w") as handle:
        json.dump({"schema": "repro-bench-summary/1",
                   "updated_unix": time.time(),
                   "sections": sections}, handle, indent=2)
    print("summary -> %s" % summary_path)
    return summary_path


def run(scales, rounds: int, out_path: str,
        plan_iterations: int = 5, sections=None,
        serving_requests: int = 120,
        durability_triples: int = 1_000_000) -> dict:
    chosen = list(SECTIONS) if not sections else [s for s in SECTIONS
                                                 if s in sections]
    report = {
        "schema": "repro-bench-engine/1",
        "created_unix": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "rounds": rounds,
        "scales": list(scales),
        "sections": chosen,
        "queries": sorted(QUERIES),
        "results": [],
        "summary": {},
    }
    if "engine" in chosen:
        speedups = []
        for scale in scales:
            print("== scale %.3g ==" % scale)
            dataset = build_dataset(scale=scale)
            engines = {
                "reference": Engine(dataset, columnar=False),
                "columnar": Engine(dataset, columnar=True),
            }
            for name in sorted(QUERIES):
                query = _PREFIXES + QUERIES[name]
                cell = {"query": name, "scale": scale, "modes": {}}
                keys = {}
                for mode in MODES:
                    seconds, result, stats = time_query(engines[mode], query,
                                                        rounds)
                    keys[mode] = _result_key(result)
                    cell["modes"][mode] = {
                        "seconds": seconds,
                        "rows": len(result),
                        "stats": stats.as_dict(),
                    }
                if keys["columnar"] != keys["reference"]:
                    raise AssertionError(
                        "result mismatch between columnar and reference "
                        "engines on %r at scale %s" % (name, scale))
                cell["identical_results"] = True
                ref_s = cell["modes"]["reference"]["seconds"]
                col_s = cell["modes"]["columnar"]["seconds"]
                cell["speedup"] = ref_s / col_s if col_s > 0 else float("inf")
                speedups.append(cell["speedup"])
                report["results"].append(cell)
                print("  %-22s ref %8.4fs  columnar %8.4fs  speedup %5.2fx  "
                      "(%d rows)" % (name, ref_s, col_s, cell["speedup"],
                                     cell["modes"]["columnar"]["rows"]))
        geomean = _geomean(speedups)
        report["summary"] = {
            "geomean_speedup": geomean,
            "min_speedup": min(speedups),
            "max_speedup": max(speedups),
            "all_results_identical": True,
        }
        print("geomean speedup %.2fx (min %.2fx, max %.2fx)"
              % (geomean, min(speedups), max(speedups)))
    if "plan_path" in chosen:
        report["plan_path"] = run_plan_path(scales[-1], plan_iterations)
    if "limit_topk" in chosen:
        report["limit_topk"] = run_limit_topk(scales[-1], max(rounds, 3))
    if "aggregation" in chosen:
        report["aggregation"] = run_aggregation(scales[-1], max(rounds, 3))
    if "joins" in chosen:
        report["joins"] = run_joins(scales[-1], max(rounds, 5))
    if "wcoj" in chosen:
        report["wcoj"] = run_wcoj(scales[-1], max(rounds, 3))
    if "vectorized" in chosen:
        report["vectorized"] = run_vectorized(scales[-1], max(rounds, 3))
    if "serving" in chosen:
        # The load generator lives next to this script; make it importable
        # however the script was invoked.
        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        from load_generator import run_serving
        report["serving"] = run_serving(scales[-1],
                                        total_requests=serving_requests)
    if "serving_cache" in chosen:
        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        from load_generator import run_serving_cache
        report["serving_cache"] = run_serving_cache(
            scales[-1], total_requests=max(serving_requests, 64))
    if "durability" in chosen:
        report["durability"] = run_durability(durability_triples)
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
    write_summary(report, out_path)
    print("sections %s -> %s" % (", ".join(chosen), out_path))
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="output JSON path (default: ./BENCH_engine.json)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per query (best-of)")
    parser.add_argument("--scales", type=float, nargs="+",
                        default=[0.05,
                                 float(os.environ.get("REPRO_BENCH_SCALE",
                                                      "0.2"))],
                        help="dataset scales to benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI configuration: one small scale, one "
                             "round, fewer plan-path iterations")
    parser.add_argument("--section", action="append", choices=SECTIONS,
                        dest="sections", metavar="NAME",
                        help="run only the named section(s); repeatable "
                             "(default: all of %s)" % (", ".join(SECTIONS)))
    args = parser.parse_args(argv)
    if args.smoke:
        args.scales = [0.02]
        args.rounds = 1
        run(args.scales, args.rounds, args.out, plan_iterations=2,
            sections=args.sections, serving_requests=40,
            durability_triples=100_000)
    else:
        run(args.scales, args.rounds, args.out, sections=args.sections)
    return 0


if __name__ == "__main__":
    sys.exit(main())
