"""Figure 5: the 15-query synthetic workload.

Each query runs under naive generation, RDFFrames generation, and
expert-written SPARQL.  The paper reports each generator's running time as
a *ratio to expert SPARQL*: RDFFrames stays within 0.9-1.5x while naive
generation degrades to 10x+ (with timeouts) on the later queries.

``test_fig5_ratio_table`` prints the paper-style ratio table after the
per-query benchmarks (it reuses one timed run per strategy).
"""

import time

import pytest

from repro.workload import SYNTHETIC_QUERIES, get_query

ROUNDS = 3
QIDS = [q.qid for q in SYNTHETIC_QUERIES]


def _run_rdfframes(query, client):
    return query.frame().execute(client)


def _run_naive(query, client):
    return query.frame().execute(client, strategy="naive")


def _run_expert(query, client):
    return client.execute(query.expert_sparql)


@pytest.mark.benchmark(group="fig5-rdfframes")
@pytest.mark.parametrize("qid", QIDS)
def test_fig5_rdfframes(benchmark, qid, http_client):
    query = get_query(qid)
    benchmark.pedantic(_run_rdfframes, args=(query, http_client),
                       rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="fig5-naive")
@pytest.mark.parametrize("qid", QIDS)
def test_fig5_naive(benchmark, qid, http_client):
    query = get_query(qid)
    benchmark.pedantic(_run_naive, args=(query, http_client),
                       rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="fig5-expert")
@pytest.mark.parametrize("qid", QIDS)
def test_fig5_expert(benchmark, qid, http_client):
    query = get_query(qid)
    benchmark.pedantic(_run_expert, args=(query, http_client),
                       rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="fig5-ratio-table")
def test_fig5_ratio_table(benchmark, http_client, capsys):
    """Reproduce the paper's Figure 5 presentation: per query, the ratio
    of naive and RDFFrames runtimes to expert SPARQL."""

    def measure(fn, *args):
        best = None
        for _ in range(3):  # best-of-3 to suppress warm-up noise
            start = time.perf_counter()
            fn(*args)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        return best

    def build_table():
        rows = []
        for qid in QIDS:
            query = get_query(qid)
            expert = measure(_run_expert, query, http_client)
            rdfframes = measure(_run_rdfframes, query, http_client)
            naive = measure(_run_naive, query, http_client)
            rows.append((qid, expert, rdfframes / expert, naive / expert))
        return rows

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n\nFigure 5 — ratio to expert-written SPARQL "
              "(expert seconds in parentheses)")
        print("%-5s %12s %12s %12s" % ("query", "expert(s)",
                                       "RDFFrames/x", "Naive/x"))
        for qid, expert, ratio_rdfframes, ratio_naive in sorted(
                rows, key=lambda r: r[3]):
            print("%-5s %12.3f %12.2f %12.2f"
                  % (qid, expert, ratio_rdfframes, ratio_naive))
