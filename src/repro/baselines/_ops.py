"""Shared dataframe machinery for the client-side baselines.

The "+ pandas" baselines of Section 6.3 perform relational processing in
the dataframe library instead of the RDF engine.  To return results
*identical* to the SPARQL strategies (the paper verifies this), the joins
must use SPARQL's compatible-mapping semantics: an unbound value (``None``)
is compatible with anything, and the join matches on *all* shared columns.
"""

from __future__ import annotations

from typing import List, Optional

from ..dataframe import DataFrame
from ..rdf.terms import Literal, Node, URIRef
from ..sparql.results import term_to_python


def terms_to_python_frame(frame: DataFrame) -> DataFrame:
    """Convert a dataframe of RDF terms to one of natural Python values."""
    data = {}
    for column in frame.columns:
        data[column] = [term_to_python(v) if isinstance(v, Node) or v is None
                        else v for v in frame.column(column)]
    return DataFrame(data, columns=frame.columns)


def triples_to_frame(triples) -> DataFrame:
    """A (s, p, o) dataframe of raw RDF terms from a triple iterator."""
    s_col, p_col, o_col = [], [], []
    for s, p, o in triples:
        s_col.append(s)
        p_col.append(p)
        o_col.append(o)
    return DataFrame({"s": s_col, "p": p_col, "o": o_col},
                     columns=["s", "p", "o"])


def predicate_table(spo: DataFrame, predicate, subject_col: str,
                    object_col: str) -> DataFrame:
    """Extract one predicate's (subject, object) pairs from an SPO frame —
    the client-side equivalent of a navigation step."""
    predicates = spo.column("p")
    mask = [p == predicate for p in predicates]
    filtered = spo.filter_mask(mask)
    return DataFrame({subject_col: filtered.column("s"),
                      object_col: filtered.column("o")},
                     columns=[subject_col, object_col])


def compatible_merge(left: DataFrame, right: DataFrame,
                     how: str = "inner",
                     anchor: Optional[str] = None) -> DataFrame:
    """Join on *all* shared columns with SPARQL compatibility semantics.

    ``None`` in a shared column is unbound: it matches any value, and the
    output row takes the bound side's value.  ``anchor`` names a shared
    column that is never ``None`` on either side (used to build the hash
    index); when omitted, the first shared column with no ``None`` on the
    right is chosen.
    """
    common = [c for c in left.columns if c in set(right.columns)]
    if not common:
        raise ValueError("no shared columns to join on")
    if anchor is None:
        for candidate in common:
            if all(v is not None for v in right.column(candidate)) and \
               all(v is not None for v in left.column(candidate)):
                anchor = candidate
                break
    if anchor is None:
        raise ValueError("no fully-bound shared column to anchor the join")

    index = {}
    right_rows = list(right.iter_dicts())
    for position, row in enumerate(right_rows):
        index.setdefault(row[anchor], []).append(position)

    out_columns = list(left.columns)
    for column in right.columns:
        if column not in out_columns:
            out_columns.append(column)

    rows = []
    for left_row in left.iter_dicts():
        matched = False
        for position in index.get(left_row[anchor], ()):
            right_row = right_rows[position]
            ok = True
            for column in common:
                lv, rv = left_row[column], right_row[column]
                if lv is not None and rv is not None and lv != rv:
                    ok = False
                    break
            if ok:
                matched = True
                merged = dict(right_row)
                for column, value in left_row.items():
                    if value is not None:
                        merged[column] = value
                    elif column not in merged:
                        merged[column] = None
                rows.append(merged)
        if not matched and how == "left":
            rows.append(dict(left_row))
    return DataFrame.from_dicts(rows, columns=out_columns)


def is_uri_mask(values) -> List[bool]:
    return [isinstance(v, URIRef) for v in values]


def literal_value(term):
    """Python value of a term (keeps plain values untouched)."""
    if isinstance(term, Literal):
        return term.value
    return term
