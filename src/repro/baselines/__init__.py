"""Alternative execution strategies (Section 6.3 baselines)."""

from ._ops import compatible_merge, predicate_table, terms_to_python_frame, triples_to_frame
from .strategies import (STRATEGIES, kg_embedding_navigation_frame,
                         kg_embedding_relational,
                         movie_genre_navigation_frame, movie_genre_relational,
                         run_expert, run_naive, run_navigation_pandas,
                         run_rdfframes, run_rdflib_pandas, run_sparql_pandas,
                         run_strategy, topic_modeling_navigation_frame,
                         topic_modeling_relational)

__all__ = [
    "STRATEGIES", "run_strategy", "run_rdfframes", "run_naive", "run_expert",
    "run_navigation_pandas", "run_sparql_pandas", "run_rdflib_pandas",
    "movie_genre_navigation_frame", "topic_modeling_navigation_frame",
    "kg_embedding_navigation_frame", "movie_genre_relational",
    "topic_modeling_relational", "kg_embedding_relational",
    "compatible_merge", "predicate_table", "terms_to_python_frame",
    "triples_to_frame",
]
