"""The alternative execution strategies of Section 6.3.

For each case study the paper compares RDFFrames against:

* **Naive Query Generation** — one subquery per API call
  (``frame.to_sparql(strategy='naive')``),
* **Navigation + pandas** — RDFFrames used only for seed/expand; all
  relational processing client-side in the dataframe library,
* **rdflib + pandas** — no RDF engine at all: parse the N-Triples dump,
  scan triples in Python, process in dataframes,
* **SPARQL + pandas** — one trivial ``SELECT ?s ?p ?o`` to the engine,
  then client-side processing,
* **Expert SPARQL** — the hand-written query, full push-down.

The client-side relational stages replicate the SPARQL semantics exactly
(compatible-mapping joins, bag semantics), so all strategies return
identical result bags — which the equivalence tests assert.
"""

from __future__ import annotations

import io
from typing import Callable, Dict

from ..client import EngineClient
from ..core import KnowledgeGraph, OPTIONAL
from ..data import DBLP_URI, DBPEDIA_URI
from ..dataframe import DataFrame
from ..rdf import ntriples
from ..rdf.namespaces import DBPO, DBPP, DBPR, DBLPRC, DC, DCTERMS, RDF, RDFS, SWRC
from ..workload.case_studies import (PROLIFIC_MOVIE_COUNT,
                                     PROLIFIC_PAPER_COUNT, TOPIC_YEAR_INNER,
                                     TOPIC_YEAR_OUTER, get_case_study)
from ._ops import (compatible_merge, is_uri_mask, predicate_table,
                   terms_to_python_frame, triples_to_frame)

STRATEGIES = ("rdfframes", "naive", "navigation_pandas", "rdflib_pandas",
              "sparql_pandas", "expert")


# ----------------------------------------------------------------------
# Navigation-only frames (the seed/expand prefix of each case study)
# ----------------------------------------------------------------------
def movie_genre_navigation_frame():
    graph = KnowledgeGraph(graph_uri=DBPEDIA_URI)
    movies = graph.feature_domain_range("dbpp:starring", "movie", "actor")
    return movies.expand("actor", [
        ("dbpp:birthPlace", "actor_country"),
        ("rdfs:label", "actor_name"),
    ]).expand("movie", [
        ("rdfs:label", "movie_name"),
        ("dcterms:subject", "subject"),
        ("dbpp:country", "movie_country"),
        ("dbpo:genre", "genre", OPTIONAL),
    ])


def topic_modeling_navigation_frame():
    graph = KnowledgeGraph(graph_uri=DBLP_URI)
    return graph.entities("swrc:InProceedings", "paper").expand("paper", [
        ("dc:creator", "author"),
        ("dcterm:issued", "date"),
        ("swrc:series", "conference"),
        ("dc:title", "title"),
    ])


def kg_embedding_navigation_frame():
    graph = KnowledgeGraph(graph_uri=DBLP_URI)
    return graph.feature_domain_range("p", "s", "o")


# ----------------------------------------------------------------------
# Client-side relational stages (shared by the "+ pandas" strategies)
# ----------------------------------------------------------------------
def movie_genre_relational(movies: DataFrame) -> DataFrame:
    """The filter/group/outer-join/join stage of case study 1, on a value
    dataframe with columns movie, actor, actor_country, actor_name,
    movie_name, subject, movie_country, genre."""
    usa = str(DBPR.United_States)
    american = movies.filter_eq("actor_country", usa)
    prolific = movies.groupby("actor") \
        .agg("count", "movie", alias="movie_count", unique=True) \
        .filter(lambda row: row["movie_count"] >= PROLIFIC_MOVIE_COUNT)
    branch1 = american.merge(prolific, left_on="actor", right_on="actor",
                             how="left")
    branch2 = prolific.merge(american, left_on="actor", right_on="actor",
                             how="left")
    union = branch1.concat(branch2)
    return compatible_merge(union, movies, how="inner", anchor="actor")


def topic_modeling_relational(papers: DataFrame) -> DataFrame:
    """The filter/group/join stage of case study 2, on a value dataframe
    with columns paper, author, date, conference, title."""
    vldb, sigmod = str(DBLPRC.vldb), str(DBLPRC.sigmod)

    def year(value) -> int:
        return int(str(value)[:4])

    recent = papers.filter(
        lambda row: year(row["date"]) >= TOPIC_YEAR_INNER
        and row["conference"] in (vldb, sigmod))
    authors = recent.groupby("author") \
        .agg("count", "paper", alias="n_papers") \
        .filter(lambda row: row["n_papers"] >= PROLIFIC_PAPER_COUNT)
    joined = papers.merge(authors.select(["author"]),
                          left_on="author", right_on="author", how="inner")
    filtered = joined.filter(lambda row: year(row["date"]) >= TOPIC_YEAR_OUTER)
    return filtered.select(["title"])


def kg_embedding_relational(spo_terms: DataFrame) -> DataFrame:
    """The isURI filter of case study 3, on a dataframe of raw RDF terms
    with columns s, p, o."""
    filtered = spo_terms.filter_mask(is_uri_mask(spo_terms.column("o")))
    return terms_to_python_frame(filtered)


_RELATIONAL: Dict[str, Callable[[DataFrame], DataFrame]] = {
    "movie_genre": movie_genre_relational,
    "topic_modeling": topic_modeling_relational,
    "kg_embedding": kg_embedding_relational,
}

_NAVIGATION = {
    "movie_genre": movie_genre_navigation_frame,
    "topic_modeling": topic_modeling_navigation_frame,
    "kg_embedding": kg_embedding_navigation_frame,
}


# ----------------------------------------------------------------------
# Strategy runners
# ----------------------------------------------------------------------
def run_rdfframes(case_key: str, client) -> DataFrame:
    """RDFFrames with optimized query generation (the paper's system)."""
    return get_case_study(case_key).frame().execute(client)


def run_naive(case_key: str, client) -> DataFrame:
    """RDFFrames with naive query generation."""
    return get_case_study(case_key).frame().execute(client, strategy="naive")


def run_expert(case_key: str, client) -> DataFrame:
    """The expert-written SPARQL query."""
    return client.execute(get_case_study(case_key).expert_sparql)


def run_navigation_pandas(case_key: str, client: EngineClient) -> DataFrame:
    """Navigation pushed to the engine; relational ops client-side."""
    frame = _NAVIGATION[case_key]()
    if case_key == "kg_embedding":
        table = client.execute_terms(frame.to_sparql())
    else:
        table = frame.execute(client)
    return _RELATIONAL[case_key](table)


def run_sparql_pandas(case_key: str, client: EngineClient) -> DataFrame:
    """One trivial SELECT ?s ?p ?o to the engine; everything else
    client-side (including navigation, done as dataframe merges)."""
    case = get_case_study(case_key)
    spo = client.execute_terms(
        "SELECT ?s ?p ?o FROM <%s> WHERE { ?s ?p ?o . }" % case.graph_uri)
    return _process_spo(case_key, spo)


def run_rdflib_pandas(case_key: str, ntriples_source) -> DataFrame:
    """No engine: parse an N-Triples dump (path, file object, or string)
    and process everything client-side."""
    if isinstance(ntriples_source, str) and "\n" not in ntriples_source:
        with open(ntriples_source) as stream:
            spo = triples_to_frame(ntriples.parse(stream))
    elif isinstance(ntriples_source, str):
        spo = triples_to_frame(ntriples.parse(io.StringIO(ntriples_source)))
    else:
        spo = triples_to_frame(ntriples.parse(ntriples_source))
    return _process_spo(case_key, spo)


def _process_spo(case_key: str, spo: DataFrame) -> DataFrame:
    """Client-side navigation (dataframe merges over the SPO table) plus
    the case study's relational stage."""
    if case_key == "kg_embedding":
        return kg_embedding_relational(spo)
    if case_key == "movie_genre":
        movies = predicate_table(spo, DBPP.starring, "movie", "actor")
        movies = movies.merge(
            predicate_table(spo, DBPP.birthPlace, "actor", "actor_country"),
            left_on="actor", right_on="actor")
        movies = movies.merge(
            predicate_table(spo, RDFS.label, "actor", "actor_name"),
            left_on="actor", right_on="actor")
        movies = movies.merge(
            predicate_table(spo, RDFS.label, "movie", "movie_name"),
            left_on="movie", right_on="movie")
        movies = movies.merge(
            predicate_table(spo, DCTERMS.subject, "movie", "subject"),
            left_on="movie", right_on="movie")
        movies = movies.merge(
            predicate_table(spo, DBPP.country, "movie", "movie_country"),
            left_on="movie", right_on="movie")
        movies = movies.merge(
            predicate_table(spo, DBPO.genre, "movie", "genre"),
            left_on="movie", right_on="movie", how="left")
        return movie_genre_relational(terms_to_python_frame(movies))
    if case_key == "topic_modeling":
        types = predicate_table(spo, RDF.type, "paper", "cls")
        papers = types.filter_eq("cls", SWRC.InProceedings).select(["paper"])
        papers = papers.merge(
            predicate_table(spo, DC.creator, "paper", "author"),
            left_on="paper", right_on="paper")
        papers = papers.merge(
            predicate_table(spo, DCTERMS.issued, "paper", "date"),
            left_on="paper", right_on="paper")
        papers = papers.merge(
            predicate_table(spo, SWRC.series, "paper", "conference"),
            left_on="paper", right_on="paper")
        papers = papers.merge(
            predicate_table(spo, DC.title, "paper", "title"),
            left_on="paper", right_on="paper")
        return topic_modeling_relational(terms_to_python_frame(papers))
    raise KeyError("unknown case study %r" % case_key)


def run_strategy(strategy: str, case_key: str, client=None,
                 ntriples_source=None) -> DataFrame:
    """Dispatch a strategy by name (used by the benchmark harness)."""
    if strategy == "rdfframes":
        return run_rdfframes(case_key, client)
    if strategy == "naive":
        return run_naive(case_key, client)
    if strategy == "expert":
        return run_expert(case_key, client)
    if strategy == "navigation_pandas":
        return run_navigation_pandas(case_key, client)
    if strategy == "sparql_pandas":
        return run_sparql_pandas(case_key, client)
    if strategy == "rdflib_pandas":
        return run_rdflib_pandas(case_key, ntriples_source)
    raise KeyError("unknown strategy %r (one of %s)"
                   % (strategy, ", ".join(STRATEGIES)))
