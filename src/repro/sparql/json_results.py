"""The W3C SPARQL 1.1 Query Results JSON Format.

https://www.w3.org/TR/sparql11-results-json/

The simulated endpoint serializes every response page to this format and
the HTTP client parses it back — the same encode/decode work a real
endpoint and SPARQLWrapper perform, so strategies that move large
intermediate results to the client pay a realistic per-row cost.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from ..rdf.terms import BlankNode, Literal, Node, URIRef, XSD_STRING
from .results import ResultSet


def encode_term(term: Node) -> Dict[str, str]:
    """One RDF term as a SPARQL-JSON binding object."""
    if isinstance(term, URIRef):
        return {"type": "uri", "value": str(term)}
    if isinstance(term, BlankNode):
        return {"type": "bnode", "value": term.label}
    if isinstance(term, Literal):
        binding: Dict[str, str] = {"type": "literal", "value": term.lexical}
        if term.language:
            binding["xml:lang"] = term.language
        elif term.datatype and term.datatype != XSD_STRING:
            binding["datatype"] = term.datatype
        return binding
    raise TypeError("not an RDF term: %r" % (term,))


def decode_term(binding: Dict[str, str]) -> Node:
    """Parse one SPARQL-JSON binding object back into an RDF term."""
    kind = binding["type"]
    if kind == "uri":
        return URIRef(binding["value"])
    if kind == "bnode":
        return BlankNode(binding["value"])
    if kind in ("literal", "typed-literal"):
        return Literal(binding["value"],
                       datatype=binding.get("datatype"),
                       language=binding.get("xml:lang"))
    raise ValueError("unknown binding type %r" % kind)


def encode_results(result: ResultSet) -> str:
    """Serialize a result set (or page) to a SPARQL-JSON document."""
    bindings: List[Dict[str, Dict[str, str]]] = []
    for row in result.rows:
        binding_row = {}
        for var, term in zip(result.variables, row):
            if term is not None:
                binding_row[var] = encode_term(term)
        bindings.append(binding_row)
    document = {
        "head": {"vars": list(result.variables)},
        "results": {"bindings": bindings},
    }
    return json.dumps(document)


def decode_results(payload: str) -> ResultSet:
    """Parse a SPARQL-JSON document into a result set."""
    document = json.loads(payload)
    variables = document["head"]["vars"]
    rows: List[Tuple[Optional[Node], ...]] = []
    for binding_row in document["results"]["bindings"]:
        rows.append(tuple(
            decode_term(binding_row[var]) if var in binding_row else None
            for var in variables))
    return ResultSet(variables, rows)
