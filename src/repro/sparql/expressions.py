"""SPARQL expression AST and evaluation.

Implements the expression fragment the RDFFrames translator emits and the
paper's expert/naive queries use: logical connectives, comparisons
(including ``IN``), arithmetic, and the built-ins ``regex``, ``str``,
``lang``, ``datatype``, ``bound``, ``isIRI``/``isURI``, ``isLiteral``,
``isBlank``, ``year``/``month``/``day``, ``abs``, and the ``xsd:*`` casts.

Evaluation follows SPARQL error semantics: an expression over an unbound
variable or ill-typed operands raises :class:`ExpressionError`; FILTER
treats an error as *false* and EXTEND leaves the target variable unbound.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Sequence

from ..rdf.terms import (Literal, Node, URIRef, BlankNode, Variable,
                         XSD_BOOLEAN, XSD_DATETIME, XSD_DOUBLE, XSD_INTEGER,
                         XSD_STRING, literal_year)

TRUE = Literal(True)
FALSE = Literal(False)


class ExpressionError(Exception):
    """SPARQL expression evaluation error (type error / unbound variable)."""


class Expression:
    """Base class for all expression AST nodes."""

    def evaluate(self, mapping) -> Any:
        """Evaluate against a solution mapping; returns an RDF term or a
        Python value; raises :class:`ExpressionError` on SPARQL 'error'."""
        raise NotImplementedError

    def variables(self) -> List[str]:
        """Variable names mentioned anywhere in the expression."""
        return []

    def sparql(self) -> str:
        """Render back to SPARQL surface syntax."""
        raise NotImplementedError

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.sparql())


class VarExpr(Expression):
    """A variable reference, e.g. ``?movie_count``."""

    def __init__(self, name: str):
        self.name = name.lstrip("?$")

    def evaluate(self, mapping):
        try:
            return mapping[self.name]
        except KeyError:
            raise ExpressionError("unbound variable ?%s" % self.name)

    def variables(self):
        return [self.name]

    def sparql(self):
        return "?" + self.name


class ConstExpr(Expression):
    """A constant RDF term (literal or URI)."""

    def __init__(self, term: Node):
        self.term = term

    def evaluate(self, mapping):
        return self.term

    def sparql(self):
        if isinstance(self.term, Literal) and self.term.is_numeric:
            return self.term.lexical
        if isinstance(self.term, Literal) and self.term.datatype == XSD_BOOLEAN:
            return self.term.lexical
        return self.term.n3()


class AndExpr(Expression):
    def __init__(self, left: Expression, right: Expression):
        self.left, self.right = left, right

    def evaluate(self, mapping):
        # SPARQL logical-and with error tolerance: F && err = F.
        try:
            lhs = ebv(self.left.evaluate(mapping))
        except ExpressionError:
            lhs = None
        try:
            rhs = ebv(self.right.evaluate(mapping))
        except ExpressionError:
            rhs = None
        if lhs is False or rhs is False:
            return FALSE
        if lhs is None or rhs is None:
            raise ExpressionError("error in && operand")
        return TRUE

    def variables(self):
        return self.left.variables() + self.right.variables()

    def sparql(self):
        return "( %s && %s )" % (self.left.sparql(), self.right.sparql())


class OrExpr(Expression):
    def __init__(self, left: Expression, right: Expression):
        self.left, self.right = left, right

    def evaluate(self, mapping):
        try:
            lhs = ebv(self.left.evaluate(mapping))
        except ExpressionError:
            lhs = None
        try:
            rhs = ebv(self.right.evaluate(mapping))
        except ExpressionError:
            rhs = None
        if lhs is True or rhs is True:
            return TRUE
        if lhs is None or rhs is None:
            raise ExpressionError("error in || operand")
        return FALSE

    def variables(self):
        return self.left.variables() + self.right.variables()

    def sparql(self):
        return "( %s || %s )" % (self.left.sparql(), self.right.sparql())


class NotExpr(Expression):
    def __init__(self, operand: Expression):
        self.operand = operand

    def evaluate(self, mapping):
        return FALSE if ebv(self.operand.evaluate(mapping)) else TRUE

    def variables(self):
        return self.operand.variables()

    def sparql(self):
        return "( ! %s )" % self.operand.sparql()


_COMPARE_OPS = ("=", "!=", "<", "<=", ">", ">=")


class CompareExpr(Expression):
    """Binary comparison with SPARQL value semantics."""

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _COMPARE_OPS:
            raise ValueError("unknown comparison operator %r" % op)
        self.op, self.left, self.right = op, left, right

    def evaluate(self, mapping):
        lhs = self.left.evaluate(mapping)
        rhs = self.right.evaluate(mapping)
        result = _compare(self.op, lhs, rhs)
        return TRUE if result else FALSE

    def variables(self):
        return self.left.variables() + self.right.variables()

    def sparql(self):
        return "( %s %s %s )" % (self.left.sparql(), self.op, self.right.sparql())


class InExpr(Expression):
    """``?x IN (a, b, c)`` / ``?x NOT IN (...)``."""

    def __init__(self, operand: Expression, options: Sequence[Expression],
                 negated: bool = False):
        self.operand = operand
        self.options = list(options)
        self.negated = negated

    def evaluate(self, mapping):
        value = self.operand.evaluate(mapping)
        found = False
        for option in self.options:
            try:
                if _compare("=", value, option.evaluate(mapping)):
                    found = True
                    break
            except ExpressionError:
                continue
        if self.negated:
            found = not found
        return TRUE if found else FALSE

    def variables(self):
        out = self.operand.variables()
        for option in self.options:
            out.extend(option.variables())
        return out

    def sparql(self):
        keyword = "NOT IN" if self.negated else "IN"
        return "( %s %s (%s) )" % (
            self.operand.sparql(), keyword,
            ", ".join(o.sparql() for o in self.options))


class ArithmeticExpr(Expression):
    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in ("+", "-", "*", "/"):
            raise ValueError("unknown arithmetic operator %r" % op)
        self.op, self.left, self.right = op, left, right

    def evaluate(self, mapping):
        lhs = _numeric(self.left.evaluate(mapping))
        rhs = _numeric(self.right.evaluate(mapping))
        try:
            if self.op == "+":
                value = lhs + rhs
            elif self.op == "-":
                value = lhs - rhs
            elif self.op == "*":
                value = lhs * rhs
            else:
                value = lhs / rhs
        except ZeroDivisionError:
            raise ExpressionError("division by zero")
        return Literal(value)

    def variables(self):
        return self.left.variables() + self.right.variables()

    def sparql(self):
        return "( %s %s %s )" % (self.left.sparql(), self.op, self.right.sparql())


class UnaryMinusExpr(Expression):
    def __init__(self, operand: Expression):
        self.operand = operand

    def evaluate(self, mapping):
        return Literal(-_numeric(self.operand.evaluate(mapping)))

    def variables(self):
        return self.operand.variables()

    def sparql(self):
        return "( - %s )" % self.operand.sparql()


class FunctionExpr(Expression):
    """A built-in function call (or ``xsd:*`` cast)."""

    def __init__(self, name: str, args: Sequence[Expression]):
        self.name = name.lower()
        self.args = list(args)

    def evaluate(self, mapping):
        name = self.name
        if name == "bound":
            arg = self.args[0]
            if not isinstance(arg, VarExpr):
                raise ExpressionError("BOUND requires a variable")
            return TRUE if arg.name in mapping else FALSE
        values = [arg.evaluate(mapping) for arg in self.args]
        return _apply_function(name, values)

    def variables(self):
        out = []
        for arg in self.args:
            out.extend(arg.variables())
        return out

    def sparql(self):
        display = {"isiri": "isIRI", "isuri": "isURI",
                   "isliteral": "isLiteral", "isblank": "isBlank",
                   "xsd:datetime": "xsd:dateTime"}.get(self.name, self.name)
        return "%s(%s)" % (display, ", ".join(a.sparql() for a in self.args))


# ----------------------------------------------------------------------
# Value semantics
# ----------------------------------------------------------------------

def ebv(value) -> bool:
    """SPARQL effective boolean value."""
    if isinstance(value, Literal):
        if value.datatype == XSD_BOOLEAN:
            return bool(value.value)
        if value.is_numeric:
            return value.value != 0
        if value.datatype in (None, XSD_STRING) and value.language is None:
            return len(value.lexical) > 0
        if value.language is not None:
            return len(value.lexical) > 0
        raise ExpressionError("no boolean value for %r" % (value,))
    if isinstance(value, bool):
        return value
    raise ExpressionError("no boolean value for %r" % (value,))


def _numeric(value):
    if isinstance(value, Literal) and value.is_numeric:
        return value.value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value
    raise ExpressionError("not a number: %r" % (value,))


def _compare(op: str, lhs, rhs) -> bool:
    """Compare two RDF terms with SPARQL operator mapping."""
    if lhs is None or rhs is None:
        raise ExpressionError("comparison with unbound value")
    # URIs: only = and != are defined.
    if isinstance(lhs, URIRef) or isinstance(rhs, URIRef):
        if op == "=":
            return lhs == rhs
        if op == "!=":
            return lhs != rhs
        raise ExpressionError("ordering undefined for URIs")
    if isinstance(lhs, BlankNode) or isinstance(rhs, BlankNode):
        if op == "=":
            return lhs == rhs
        if op == "!=":
            return lhs != rhs
        raise ExpressionError("ordering undefined for blank nodes")
    lv = lhs.value if isinstance(lhs, Literal) else lhs
    rv = rhs.value if isinstance(rhs, Literal) else rhs
    l_num = isinstance(lv, (int, float)) and not isinstance(lv, bool)
    r_num = isinstance(rv, (int, float)) and not isinstance(rv, bool)
    if l_num != r_num:
        # Mixed numeric/string comparison is a type error in SPARQL.
        if op == "!=":
            return True
        if op == "=":
            return False
        raise ExpressionError("type error comparing %r and %r" % (lhs, rhs))
    if not l_num:
        lv, rv = str(lv), str(rv)
    if op == "=":
        return lv == rv
    if op == "!=":
        return lv != rv
    if op == "<":
        return lv < rv
    if op == "<=":
        return lv <= rv
    if op == ">":
        return lv > rv
    return lv >= rv


def _apply_function(name: str, values: List[Any]):
    if name == "str":
        value = values[0]
        if isinstance(value, URIRef):
            return Literal(str(value))
        if isinstance(value, Literal):
            return Literal(value.lexical)
        raise ExpressionError("STR undefined for %r" % (value,))
    if name == "lang":
        value = values[0]
        if isinstance(value, Literal):
            return Literal(value.language or "")
        raise ExpressionError("LANG requires a literal")
    if name == "datatype":
        value = values[0]
        if isinstance(value, Literal):
            return URIRef(value.datatype or XSD_STRING)
        raise ExpressionError("DATATYPE requires a literal")
    if name in ("isiri", "isuri"):
        return TRUE if isinstance(values[0], URIRef) else FALSE
    if name == "isliteral":
        return TRUE if isinstance(values[0], Literal) else FALSE
    if name == "isblank":
        return TRUE if isinstance(values[0], BlankNode) else FALSE
    if name == "isnumeric":
        value = values[0]
        return TRUE if isinstance(value, Literal) and value.is_numeric else FALSE
    if name == "regex":
        text = values[0]
        pattern = values[1]
        flags_value = values[2] if len(values) > 2 else None
        if not isinstance(text, Literal) or not isinstance(pattern, Literal):
            raise ExpressionError("REGEX requires literal arguments")
        flags = 0
        if flags_value is not None and "i" in str(flags_value):
            flags |= re.IGNORECASE
        try:
            return TRUE if re.search(pattern.lexical, text.lexical, flags) else FALSE
        except re.error as exc:
            raise ExpressionError("bad regex %r: %s" % (pattern.lexical, exc))
    if name in ("contains", "strstarts", "strends"):
        hay, needle = values[0], values[1]
        if not isinstance(hay, Literal) or not isinstance(needle, Literal):
            raise ExpressionError("%s requires literals" % name.upper())
        h, n = hay.lexical, needle.lexical
        if name == "contains":
            return TRUE if n in h else FALSE
        if name == "strstarts":
            return TRUE if h.startswith(n) else FALSE
        return TRUE if h.endswith(n) else FALSE
    if name in ("ucase", "lcase"):
        value = values[0]
        if not isinstance(value, Literal):
            raise ExpressionError("%s requires a literal" % name.upper())
        text = value.lexical.upper() if name == "ucase" else value.lexical.lower()
        return Literal(text, datatype=value.datatype, language=value.language)
    if name == "strlen":
        value = values[0]
        if not isinstance(value, Literal):
            raise ExpressionError("STRLEN requires a literal")
        return Literal(len(value.lexical))
    if name in ("year", "month", "day"):
        value = values[0]
        if not isinstance(value, Literal):
            raise ExpressionError("%s requires a literal" % name.upper())
        parts = value.lexical.split("-")
        index = ("year", "month", "day").index(name)
        try:
            component = parts[index]
            if index == 2:
                component = component[:2]
            return Literal(int(component))
        except (IndexError, ValueError):
            raise ExpressionError("cannot extract %s from %r"
                                  % (name, value.lexical))
    if name == "abs":
        return Literal(abs(_numeric(values[0])))
    if name in ("ceil", "floor", "round"):
        import math
        number = _numeric(values[0])
        if name == "ceil":
            return Literal(int(math.ceil(number)))
        if name == "floor":
            return Literal(int(math.floor(number)))
        return Literal(int(round(number)))
    if name in ("xsd:datetime", "xsd:date"):
        value = values[0]
        if isinstance(value, Literal):
            return Literal(value.lexical, datatype=XSD_DATETIME)
        raise ExpressionError("cannot cast %r to dateTime" % (value,))
    if name == "xsd:integer":
        value = values[0]
        if isinstance(value, Literal):
            try:
                return Literal(int(float(value.lexical)))
            except ValueError:
                raise ExpressionError("cannot cast %r to integer" % (value,))
        raise ExpressionError("cannot cast %r to integer" % (value,))
    if name in ("xsd:double", "xsd:decimal", "xsd:float"):
        value = values[0]
        if isinstance(value, Literal):
            try:
                return Literal(float(value.lexical))
            except ValueError:
                raise ExpressionError("cannot cast %r to double" % (value,))
        raise ExpressionError("cannot cast %r to double" % (value,))
    if name == "xsd:string":
        return _apply_function("str", values)
    raise ExpressionError("unknown function %r" % name)
