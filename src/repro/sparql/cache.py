"""A bounded result cache for the serving tier, with single-flight.

The RDFFrames workloads this repo reproduces are dominated by *repeats*:
a practitioner iterates on downstream features while re-running the same
extraction pipeline, so the serving tier sees the same handful of query
texts over and over.  PR 6's :class:`~repro.sparql.server.QueryServer`
re-executed every one of them.  :class:`ResultCache` closes that gap:

* **Keyed on plan identity, not query text.**  The cache key is the
  engine's normalized :func:`~repro.sparql.plan.plan_key` — query
  structure + default graph + *dataset fingerprint*.  Two spellings of
  the same query share an entry; a graph mutation changes the
  fingerprint, so every pre-mutation entry becomes unreachable and ages
  out of the LRU instead of serving stale rows (the same lazy
  invalidation the plan cache and endpoint cursor cache use).
* **Bounded, twice.**  A global entry-count + byte budget (LRU
  eviction), and optional *per-tenant* entry/byte quotas so one tenant's
  churn evicts its own entries first — tenant A cannot starve tenant B
  out of the cache past B's quota.
* **Single-flight coalescing.**  Concurrent identical submissions share
  one execution: the first becomes the *leader* and evaluates; followers
  park on the flight and receive the leader's result.  A cancelled or
  failed leader aborts the flight without poisoning followers — one of
  them simply becomes the next leader.
* **Never caches a failure.**  Only a complete, successful
  :class:`~repro.sparql.results.ResultSet` is inserted; timeouts,
  cancellations and fault-injected errors leave the cache untouched.

The cache stores *decoded* results (term objects, not ids) together with
the :class:`~repro.sparql.evaluator.EvaluationStats` of the execution
that produced them, so a hit can report the original work done.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from .evaluator import EvaluationStats
from .results import ResultSet

__all__ = ["CacheStats", "ResultCache", "approximate_result_bytes"]

#: Rows sampled when estimating an entry's footprint.
_SAMPLE_ROWS = 32


def approximate_result_bytes(result: ResultSet) -> int:
    """A deterministic, cheap estimate of a result set's memory footprint.

    Samples the first :data:`_SAMPLE_ROWS` rows (per-term cost
    ``48 + len(str(term))`` — object header plus payload) and
    extrapolates linearly.  Deterministic by construction (no ``sys``
    introspection), so quota tests can reason about exact byte accounting.
    """
    base = 64 + 48 * len(result.variables)
    rows = result.rows
    if not rows:
        return base
    sample = rows[:_SAMPLE_ROWS]
    sampled = 0
    for row in sample:
        sampled += 56  # tuple overhead
        for term in row:
            if term is not None:
                sampled += 48 + len(str(term))
    return base + int(sampled * (len(rows) / len(sample)))


class CacheStats:
    """Thread-safe monotone counters for one :class:`ResultCache`."""

    FIELDS = ("hits", "misses", "inserts", "evictions", "rejected",
              "coalesced")

    def __init__(self):
        self._lock = threading.Lock()
        for field in self.FIELDS:
            setattr(self, field, 0)

    def bump(self, field: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + by)

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {field: getattr(self, field) for field in self.FIELDS}

    def __repr__(self):
        return "CacheStats(%r)" % self.as_dict()


class _Entry:
    __slots__ = ("key", "tenant", "result", "stats", "nbytes")

    def __init__(self, key, tenant, result, stats, nbytes):
        self.key = key
        self.tenant = tenant
        self.result = result
        self.stats = stats
        self.nbytes = nbytes


class _Flight:
    """One in-progress execution that concurrent identical requests join.

    The leader executes and either *resolves* the flight (result shared
    with every follower) or *aborts* it (followers wake empty-handed and
    race to become the next leader — a cancelled leader never poisons
    the queries coalesced behind it).
    """

    __slots__ = ("event", "result", "stats", "ok", "waiters")

    def __init__(self):
        self.event = threading.Event()
        self.result: Optional[ResultSet] = None
        self.stats: Optional[EvaluationStats] = None
        self.ok = False
        self.waiters = 0  # followers currently parked (introspection)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the leader resolves or aborts; True iff resolved."""
        self.event.wait(timeout)
        return self.ok


class ResultCache:
    """Bounded LRU over complete query results, with per-tenant quotas.

    Parameters
    ----------
    max_entries / max_bytes:
        Global bounds.  Exceeding either evicts least-recently-used
        entries — the inserting tenant's own entries first, so a churning
        tenant reclaims from itself before touching anyone else.
    max_entry_bytes:
        Results estimated larger than this are not cached at all
        (``rejected`` counter) unless the caller forces insertion
        (``cache=True`` at the server surfaces as ``force=True`` here).
    tenant_max_entries / tenant_max_bytes:
        Per-tenant quotas; a tenant over quota evicts only its *own*
        least-recently-used entries.
    """

    def __init__(self, max_entries: int = 256, max_bytes: int = 64 << 20,
                 max_entry_bytes: Optional[int] = None,
                 tenant_max_entries: Optional[int] = None,
                 tenant_max_bytes: Optional[int] = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.max_entry_bytes = max_entry_bytes
        self.tenant_max_entries = tenant_max_entries
        self.tenant_max_bytes = tenant_max_bytes
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._total_bytes = 0
        self._tenant_entries: Dict[str, int] = {}
        self._tenant_bytes: Dict[str, int] = {}
        self._flights: Dict[str, _Flight] = {}

    # -- lookup --------------------------------------------------------
    def get(self, key: str
            ) -> Optional[Tuple[ResultSet, Optional[EvaluationStats]]]:
        """LRU-touching lookup; counts a hit or a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.bump("misses")
                return None
            self._entries.move_to_end(key)
            self.stats.bump("hits")
            return entry.result, entry.stats

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._total_bytes

    def tenant_usage(self, tenant: str) -> Tuple[int, int]:
        """``(entries, bytes)`` currently attributed to ``tenant``."""
        with self._lock:
            return (self._tenant_entries.get(tenant, 0),
                    self._tenant_bytes.get(tenant, 0))

    # -- insertion / eviction ------------------------------------------
    def put(self, key: str, result: ResultSet,
            stats: Optional[EvaluationStats] = None,
            tenant: str = "anonymous", force: bool = False) -> int:
        """Insert a *complete* result; returns how many entries were
        evicted making room.  Oversized results (``max_entry_bytes``) are
        rejected unless ``force``; quotas and global bounds then evict
        LRU entries — the inserting tenant's own first."""
        nbytes = approximate_result_bytes(result)
        if (not force and self.max_entry_bytes is not None
                and nbytes > self.max_entry_bytes):
            self.stats.bump("rejected")
            return 0
        with self._lock:
            if key in self._entries:
                self._remove_locked(key)
            entry = _Entry(key, tenant, result, stats, nbytes)
            self._entries[key] = entry
            self._total_bytes += nbytes
            self._tenant_entries[tenant] = \
                self._tenant_entries.get(tenant, 0) + 1
            self._tenant_bytes[tenant] = \
                self._tenant_bytes.get(tenant, 0) + nbytes
            evicted = self._shrink_tenant_locked(tenant, keep=key,
                                                 force=force)
            evicted += self._shrink_global_locked(tenant, keep=key)
            self.stats.bump("inserts")
            if evicted:
                self.stats.bump("evictions", evicted)
            return evicted

    def invalidate(self, key: str) -> bool:
        with self._lock:
            if key not in self._entries:
                return False
            self._remove_locked(key)
            self.stats.bump("evictions")
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._total_bytes = 0
            self._tenant_entries.clear()
            self._tenant_bytes.clear()

    def _remove_locked(self, key: str) -> None:
        entry = self._entries.pop(key)
        self._total_bytes -= entry.nbytes
        remaining = self._tenant_entries.get(entry.tenant, 1) - 1
        if remaining <= 0:
            self._tenant_entries.pop(entry.tenant, None)
            self._tenant_bytes.pop(entry.tenant, None)
        else:
            self._tenant_entries[entry.tenant] = remaining
            self._tenant_bytes[entry.tenant] = \
                self._tenant_bytes.get(entry.tenant, entry.nbytes) \
                - entry.nbytes

    def _oldest_locked(self, tenant: Optional[str],
                       keep: str) -> Optional[str]:
        """Oldest key (optionally restricted to ``tenant``) that is not
        the just-inserted ``keep`` entry."""
        for key, entry in self._entries.items():
            if key == keep:
                continue
            if tenant is None or entry.tenant == tenant:
                return key
        return None

    def _shrink_tenant_locked(self, tenant: str, keep: str,
                              force: bool) -> int:
        evicted = 0
        while True:
            over_entries = (self.tenant_max_entries is not None
                            and self._tenant_entries.get(tenant, 0)
                            > self.tenant_max_entries)
            over_bytes = (self.tenant_max_bytes is not None
                          and self._tenant_bytes.get(tenant, 0)
                          > self.tenant_max_bytes)
            if not (over_entries or over_bytes):
                return evicted
            victim = self._oldest_locked(tenant, keep)
            if victim is None:
                # The fresh entry alone exceeds the tenant byte quota:
                # it does not get to stick (unless forced).
                if not force and keep in self._entries:
                    self._remove_locked(keep)
                    evicted += 1
                return evicted
            self._remove_locked(victim)
            evicted += 1

    def _shrink_global_locked(self, tenant: str, keep: str) -> int:
        evicted = 0
        while (len(self._entries) > self.max_entries
               or self._total_bytes > self.max_bytes):
            victim = self._oldest_locked(tenant, keep)
            if victim is None:
                victim = self._oldest_locked(None, keep)
            if victim is None:
                # Only the fresh entry remains and it alone busts the
                # global byte budget: evict it rather than hold an
                # over-budget cache.
                if keep in self._entries:
                    self._remove_locked(keep)
                    evicted += 1
                return evicted
            self._remove_locked(victim)
            evicted += 1
        return evicted

    # -- single-flight coalescing --------------------------------------
    def join_flight(self, key: str) -> Tuple[bool, _Flight]:
        """Join (or open) the in-progress execution for ``key``.

        Returns ``(is_leader, flight)``.  The leader must call
        :meth:`resolve_flight` on success or :meth:`abort_flight` on any
        failure — typically via ``try/finally`` — or followers park
        until their own timeout."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                return True, flight
            flight.waiters += 1
            self.stats.bump("coalesced")
            return False, flight

    def resolve_flight(self, key: str, flight: _Flight, result: ResultSet,
                       stats: Optional[EvaluationStats] = None) -> None:
        with self._lock:
            self._flights.pop(key, None)
        flight.result = result
        flight.stats = stats
        flight.ok = True
        flight.event.set()

    def abort_flight(self, key: str, flight: _Flight) -> None:
        with self._lock:
            self._flights.pop(key, None)
        flight.ok = False
        flight.event.set()

    def flight_waiters(self, key: str) -> int:
        """Followers currently coalesced behind ``key`` (test hook)."""
        with self._lock:
            flight = self._flights.get(key)
            return 0 if flight is None else flight.waiters

    def __repr__(self):
        with self._lock:
            return "ResultCache(%d entries, %d bytes, %r)" % (
                len(self._entries), self._total_bytes, self.stats)
