"""Tokenizer for the SPARQL fragment supported by the engine.

Produces a stream of typed tokens for the recursive-descent parser.  The
fragment covers everything RDFFrames emits plus the hand-written expert and
naive baseline queries from the paper: prefixed names, IRIs, variables,
string/numeric/boolean literals, punctuation, comparison and logical
operators, and keywords.
"""

from __future__ import annotations

import re
from typing import Iterator, List, NamedTuple


class Token(NamedTuple):
    kind: str      # IRI, PNAME, VAR, STRING, NUMBER, KEYWORD, OP, PUNCT, EOF
    value: str
    position: int
    line: int


class TokenizeError(ValueError):
    def __init__(self, message: str, line: int, snippet: str):
        super().__init__("line %d: %s near %r" % (line, message, snippet))
        self.line = line


KEYWORDS = frozenset("""
    PREFIX BASE SELECT DISTINCT REDUCED WHERE FROM NAMED AS GROUP BY HAVING
    ORDER ASC DESC LIMIT OFFSET OPTIONAL UNION FILTER GRAPH BIND VALUES
    IN NOT EXISTS MINUS COUNT SUM MIN MAX AVG SAMPLE GROUP_CONCAT UNDEF
    TRUE FALSE A
""".split())

_TOKEN_RES = [
    ("COMMENT", re.compile(r"#[^\n]*")),
    ("IRI", re.compile(r"<[^<>\"{}|^`\\\x00-\x20]*>")),
    ("VAR", re.compile(r"[?$][A-Za-z_][A-Za-z0-9_]*")),
    ("STRING", re.compile(r'"""(?:[^"\\]|\\.|"(?!""))*"""|"(?:[^"\\\n]|\\.)*"'
                          r"|'(?:[^'\\\n]|\\.)*'")),
    ("NUMBER", re.compile(r"[0-9]+\.[0-9]*(?:[eE][+-]?[0-9]+)?"
                          r"|\.[0-9]+(?:[eE][+-]?[0-9]+)?"
                          r"|[0-9]+(?:[eE][+-]?[0-9]+)?")),
    # Prefixed name: prefix may be empty; local part allows digits, _, -, .
    # (trailing dot excluded below).
    ("PNAME", re.compile(r"[A-Za-z_][A-Za-z0-9_-]*:[A-Za-z0-9_]"
                         r"[A-Za-z0-9_.-]*|[A-Za-z_][A-Za-z0-9_-]*:")),
    ("DTYPE", re.compile(r"\^\^")),
    ("LANGTAG", re.compile(r"@[A-Za-z][A-Za-z0-9-]*")),
    ("OP", re.compile(r"&&|\|\||!=|<=|>=|[=<>!+\-*/]")),
    ("PUNCT", re.compile(r"[{}().,;]")),
    ("NAME", re.compile(r"[A-Za-z_][A-Za-z0-9_]*")),
]

_WS = re.compile(r"\s+")


def tokenize(text: str) -> List[Token]:
    """Tokenize a SPARQL query string; raises :class:`TokenizeError`."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    length = len(text)
    while pos < length:
        ws = _WS.match(text, pos)
        if ws:
            line += text.count("\n", pos, ws.end())
            pos = ws.end()
            if pos >= length:
                break
        matched = False
        for kind, regex in _TOKEN_RES:
            m = regex.match(text, pos)
            if not m:
                continue
            value = m.group(0)
            matched = True
            if kind == "COMMENT":
                pos = m.end()
                break
            if kind == "PNAME" and value.endswith("."):
                # A trailing dot is the triple terminator, not the name.
                value = value.rstrip(".")
                m_end = pos + len(value)
            else:
                m_end = m.end()
            if kind == "NAME":
                if value.upper() in KEYWORDS:
                    tokens.append(Token("KEYWORD", value.upper(), pos, line))
                else:
                    tokens.append(Token("NAME", value, pos, line))
            else:
                tokens.append(Token(kind, value, pos, line))
            pos = m_end
            break
        if not matched:
            raise TokenizeError("unexpected character", line, text[pos:pos + 20])
    tokens.append(Token("EOF", "", pos, line))
    return tokens
