"""Recursive-descent parser: SPARQL text -> algebra tree.

Supports the SELECT fragment used throughout the paper:

* prologue (``PREFIX``),
* ``SELECT [DISTINCT] (* | ?var... | (expr AS ?var) | (AGG(...) AS ?var))``,
* ``FROM <uri>`` (multiple),
* group graph patterns with triple blocks (``;`` and ``,`` shorthand and the
  ``a`` keyword), ``FILTER``, ``OPTIONAL``, ``UNION``, ``GRAPH``, ``BIND``,
  and nested ``SELECT`` subqueries,
* ``GROUP BY`` / ``HAVING`` (aggregates inside HAVING are supported by
  rewriting them to synthetic aggregate aliases),
* ``ORDER BY`` / ``LIMIT`` / ``OFFSET``.

The group graph pattern is translated following the SPARQL algebra rules:
adjacent triple blocks accumulate into a BGP, ``OPTIONAL`` becomes
``LeftJoin(pattern-so-far, optional-pattern)``, other elements are joined,
and the group's filters wrap the result.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..rdf.namespaces import DEFAULT_PREFIXES, RDF
from ..rdf.terms import Literal, URIRef, Variable, XSD_INTEGER, XSD_DOUBLE
from . import algebra as alg
from .expressions import (AndExpr, ArithmeticExpr, CompareExpr, ConstExpr,
                          Expression, FunctionExpr, InExpr, NotExpr, OrExpr,
                          UnaryMinusExpr, VarExpr)
from .tokenizer import Token, tokenize

_AGG_KEYWORDS = ("COUNT", "SUM", "MIN", "MAX", "AVG", "SAMPLE", "GROUP_CONCAT")

#: SPARQL string-literal escape sequences (ECHAR).  Unknown sequences
#: keep their backslash verbatim, matching the previous lenient behavior.
_STRING_ESCAPE = re.compile(r"\\(.)", re.DOTALL)
_STRING_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "b": "\b", "f": "\f",
                   '"': '"', "'": "'", "\\": "\\"}

_BUILTIN_FUNCTIONS = frozenset("""
    regex str lang datatype bound isiri isuri isliteral isblank isnumeric
    contains strstarts strends ucase lcase strlen year month day abs ceil
    floor round
""".split())


class ParseError(ValueError):
    def __init__(self, message: str, token: Token):
        super().__init__("line %d: %s (at %r)" % (token.line, message,
                                                  token.value or "<eof>"))
        self.token = token


class _SelectItem:
    """One item of the SELECT clause before aggregate extraction."""

    def __init__(self, var: Optional[str] = None,
                 expression: Optional[Expression] = None,
                 alias: Optional[str] = None,
                 aggregate: Optional[alg.Aggregate] = None):
        self.var = var
        self.expression = expression
        self.alias = alias
        self.aggregate = aggregate


class Parser:
    """Parser state over a token list."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0
        self.prefixes = dict(DEFAULT_PREFIXES)
        self._synthetic_counter = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind != kind:
            return None
        if value is not None and token.value != value:
            return None
        return self.next()

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            raise ParseError("expected %s%s" % (kind, " %r" % value if value else ""),
                             self.peek())
        return token

    def at_keyword(self, *keywords: str) -> bool:
        token = self.peek()
        return token.kind == "KEYWORD" and token.value in keywords

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def parse_query(self) -> alg.Query:
        self._parse_prologue()
        node = self._parse_select_query(top_level=True)
        self.expect("EOF")
        from_graphs = self._top_from_graphs
        return alg.Query(node, from_graphs=from_graphs, prefixes=self.prefixes)

    def _parse_prologue(self):
        while self.at_keyword("PREFIX", "BASE"):
            keyword = self.next().value
            if keyword == "PREFIX":
                pname = self.expect("PNAME").value
                prefix = pname[:-1] if pname.endswith(":") else pname.split(":")[0]
                iri = self.expect("IRI").value
                self.prefixes[prefix] = iri[1:-1]
            else:
                self.expect("IRI")  # BASE accepted and ignored

    # ------------------------------------------------------------------
    # SELECT query (top-level or nested)
    # ------------------------------------------------------------------
    def _parse_select_query(self, top_level: bool = False) -> alg.AlgebraNode:
        self.expect("KEYWORD", "SELECT")
        distinct = bool(self.accept("KEYWORD", "DISTINCT"))
        self.accept("KEYWORD", "REDUCED")
        items, star = self._parse_select_items()

        from_graphs: List[str] = []
        while self.at_keyword("FROM"):
            self.next()
            self.accept("KEYWORD", "NAMED")
            from_graphs.append(self.expect("IRI").value[1:-1])
        if top_level:
            self._top_from_graphs = from_graphs

        self.accept("KEYWORD", "WHERE")
        pattern = self._parse_group_graph_pattern()

        group_vars: Optional[List[str]] = None
        if self.at_keyword("GROUP"):
            self.next()
            self.expect("KEYWORD", "BY")
            group_vars = []
            while self.peek().kind == "VAR":
                group_vars.append(self.next().value.lstrip("?$"))
            if not group_vars:
                raise ParseError("GROUP BY requires at least one variable",
                                 self.peek())

        having_aggs: List[alg.Aggregate] = []
        having_expr: Optional[Expression] = None
        if self.at_keyword("HAVING"):
            self.next()
            having_expr = self._parse_constraint(collect_aggregates=having_aggs)

        # Assemble aggregation.
        select_aggs = [item.aggregate for item in items if item.aggregate]
        all_aggs = select_aggs + having_aggs
        if group_vars is not None or all_aggs:
            pattern = alg.Group(pattern, group_vars or [], all_aggs, having_expr)
        elif having_expr is not None:
            raise ParseError("HAVING without GROUP BY or aggregates", self.peek())

        # Non-aggregate computed select items become Extend nodes.
        for item in items:
            if item.expression is not None and item.aggregate is None:
                pattern = alg.Extend(pattern, item.alias, item.expression)

        if star:
            node: alg.AlgebraNode = alg.Project(pattern, None)
        else:
            variables = [item.var or item.alias or item.aggregate.alias
                         for item in items]
            node = alg.Project(pattern, variables)
        if distinct:
            node = alg.Distinct(node)

        if self.at_keyword("ORDER"):
            self.next()
            self.expect("KEYWORD", "BY")
            keys = []
            while True:
                if self.at_keyword("ASC", "DESC"):
                    direction = self.next().value.lower()
                    self.expect("PUNCT", "(")
                    var = self.expect("VAR").value
                    self.expect("PUNCT", ")")
                    keys.append((var, direction))
                elif self.peek().kind == "VAR":
                    keys.append((self.next().value, "asc"))
                else:
                    break
            if not keys:
                raise ParseError("ORDER BY requires at least one key", self.peek())
            node = alg.OrderBy(node, keys)

        limit: Optional[int] = None
        offset = 0
        while self.at_keyword("LIMIT", "OFFSET"):
            keyword = self.next().value
            number = int(self.expect("NUMBER").value)
            if keyword == "LIMIT":
                limit = number
            else:
                offset = number
        if limit is not None or offset:
            node = alg.Slice(node, limit, offset)
        return node

    def _parse_select_items(self) -> Tuple[List[_SelectItem], bool]:
        if self.accept("OP", "*"):
            return [], True
        items: List[_SelectItem] = []
        while True:
            token = self.peek()
            if token.kind == "VAR":
                items.append(_SelectItem(var=self.next().value.lstrip("?$")))
            elif token.kind == "PUNCT" and token.value == "(":
                self.next()
                aggregates: List[alg.Aggregate] = []
                expression = self._parse_expression(collect_aggregates=aggregates)
                self.expect("KEYWORD", "AS")
                alias = self.expect("VAR").value.lstrip("?$")
                self.expect("PUNCT", ")")
                if (len(aggregates) == 1 and isinstance(expression, VarExpr)
                        and expression.name == aggregates[0].alias):
                    # Plain (AGG(...) AS ?alias): rename the aggregate itself.
                    aggregates[0].alias = alias
                    items.append(_SelectItem(aggregate=aggregates[0]))
                elif aggregates:
                    raise ParseError("complex aggregate expressions in SELECT "
                                     "are not supported", token)
                else:
                    items.append(_SelectItem(expression=expression, alias=alias))
            elif (token.kind == "KEYWORD" and token.value in _AGG_KEYWORDS):
                # Bare COUNT(?x) as ?alias is invalid SPARQL; require parens form.
                raise ParseError("aggregates must be written as "
                                 "(AGG(...) AS ?alias)", token)
            else:
                break
        if not items:
            raise ParseError("empty SELECT clause", self.peek())
        return items, False

    # ------------------------------------------------------------------
    # Group graph pattern
    # ------------------------------------------------------------------
    def _parse_group_graph_pattern(self) -> alg.AlgebraNode:
        self.expect("PUNCT", "{")
        if self.at_keyword("SELECT"):
            node = self._parse_select_query()
            self.expect("PUNCT", "}")
            return node

        current: Optional[alg.AlgebraNode] = None
        triples: List = []
        filters: List[Expression] = []
        exists_filters: List[Tuple[alg.AlgebraNode, bool]] = []

        def flush_triples():
            nonlocal current, triples
            if triples:
                bgp = alg.BGP(triples)
                current = self._join(current, bgp)
                triples = []

        while True:
            token = self.peek()
            if token.kind == "PUNCT" and token.value == "}":
                self.next()
                break
            if token.kind == "EOF":
                raise ParseError("unterminated group pattern", token)
            if self.at_keyword("FILTER"):
                self.next()
                if self.at_keyword("EXISTS"):
                    self.next()
                    exists_filters.append((self._parse_group_graph_pattern(),
                                           False))
                elif (self.at_keyword("NOT")
                        and self.peek(1).kind == "KEYWORD"
                        and self.peek(1).value == "EXISTS"):
                    self.next()
                    self.next()
                    exists_filters.append((self._parse_group_graph_pattern(),
                                           True))
                else:
                    filters.append(self._parse_constraint())
                self.accept("PUNCT", ".")
            elif self.at_keyword("OPTIONAL"):
                self.next()
                optional = self._parse_group_or_union()
                flush_triples()
                current = alg.LeftJoin(current or alg.BGP([]), optional)
                self.accept("PUNCT", ".")
            elif self.at_keyword("GRAPH"):
                self.next()
                iri = self.expect("IRI").value[1:-1]
                inner = self._parse_group_graph_pattern()
                flush_triples()
                current = self._join(current, alg.GraphPattern(iri, inner))
                self.accept("PUNCT", ".")
            elif self.at_keyword("BIND"):
                self.next()
                self.expect("PUNCT", "(")
                expression = self._parse_expression()
                self.expect("KEYWORD", "AS")
                var = self.expect("VAR").value
                self.expect("PUNCT", ")")
                flush_triples()
                current = alg.Extend(current or alg.BGP([]), var, expression)
                self.accept("PUNCT", ".")
            elif self.at_keyword("MINUS"):
                self.next()
                right = self._parse_group_graph_pattern()
                flush_triples()
                current = alg.Minus(current or alg.BGP([]), right)
                self.accept("PUNCT", ".")
            elif self.at_keyword("VALUES"):
                self.next()
                inline = self._parse_inline_data()
                flush_triples()
                current = self._join(current, inline)
                self.accept("PUNCT", ".")
            elif token.kind == "PUNCT" and token.value == "{":
                sub = self._parse_group_or_union()
                flush_triples()
                current = self._join(current, sub)
                self.accept("PUNCT", ".")
            else:
                self._parse_triples_block(triples)

        flush_triples()
        node = current if current is not None else alg.BGP([])
        for condition in filters:
            node = alg.Filter(condition, node)
        for group, negated in exists_filters:
            node = alg.FilterExists(node, group, negated)
        return node

    def _parse_inline_data(self) -> alg.InlineData:
        """VALUES ?x { v1 v2 }  or  VALUES (?x ?y) { (v1 v2) (UNDEF v3) }"""
        variables: List[str] = []
        if self.peek().kind == "VAR":
            variables.append(self.next().value)
            single = True
        else:
            self.expect("PUNCT", "(")
            while self.peek().kind == "VAR":
                variables.append(self.next().value)
            self.expect("PUNCT", ")")
            single = False
        if not variables:
            raise ParseError("VALUES requires at least one variable",
                             self.peek())
        self.expect("PUNCT", "{")
        rows = []
        while not (self.peek().kind == "PUNCT" and self.peek().value == "}"):
            if single:
                rows.append((self._parse_values_term(),))
            else:
                self.expect("PUNCT", "(")
                row = []
                while not (self.peek().kind == "PUNCT"
                           and self.peek().value == ")"):
                    row.append(self._parse_values_term())
                self.expect("PUNCT", ")")
                if len(row) != len(variables):
                    raise ParseError("VALUES row arity mismatch", self.peek())
                rows.append(tuple(row))
        self.expect("PUNCT", "}")
        return alg.InlineData(variables, rows)

    def _parse_values_term(self):
        if self.at_keyword("UNDEF"):
            self.next()
            return None
        return self._parse_term(position="VALUES")

    def _parse_group_or_union(self) -> alg.AlgebraNode:
        node = self._parse_group_graph_pattern()
        while self.at_keyword("UNION"):
            self.next()
            right = self._parse_group_graph_pattern()
            node = alg.Union(node, right)
        return node

    @staticmethod
    def _join(left: Optional[alg.AlgebraNode],
              right: alg.AlgebraNode) -> alg.AlgebraNode:
        if left is None:
            return right
        # Merge adjacent BGPs so the optimizer sees one flat scope.
        if isinstance(left, alg.BGP) and isinstance(right, alg.BGP):
            return alg.BGP(left.triples + right.triples)
        return alg.Join(left, right)

    # ------------------------------------------------------------------
    # Triples
    # ------------------------------------------------------------------
    def _parse_triples_block(self, triples: List):
        subject = self._parse_term(position="subject")
        while True:
            predicate = self._parse_verb()
            while True:
                obj = self._parse_term(position="object")
                triples.append((subject, predicate, obj))
                if not self.accept("PUNCT", ","):
                    break
            if not self.accept("PUNCT", ";"):
                break
            # A dangling ';' before '.' or '}' is permitted.
            token = self.peek()
            if token.kind == "PUNCT" and token.value in (".", "}"):
                break
        self.accept("PUNCT", ".")

    def _parse_verb(self):
        if self.at_keyword("A"):
            self.next()
            return RDF.type
        return self._parse_term(position="predicate")

    def _parse_term(self, position: str):
        token = self.peek()
        if token.kind == "VAR":
            return Variable(self.next().value)
        if token.kind == "IRI":
            return URIRef(self.next().value[1:-1])
        if token.kind == "PNAME":
            return self._resolve_pname(self.next().value)
        if token.kind == "STRING":
            return self._parse_string_literal()
        if token.kind == "NUMBER":
            text = self.next().value
            if "." in text or "e" in text or "E" in text:
                return Literal(text, datatype=XSD_DOUBLE)
            return Literal(text, datatype=XSD_INTEGER)
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            self.next()
            return Literal(token.value == "TRUE")
        raise ParseError("expected a term in %s position" % position, token)

    def _parse_string_literal(self) -> Literal:
        raw = self.expect("STRING").value
        if raw.startswith('"""'):
            text = raw[3:-3]
        else:
            text = raw[1:-1]
        # Single-pass unescape: sequential str.replace corrupts adjacent
        # sequences (r"\\n" — escaped backslash, then 'n' — would first
        # match the inner r"\n" and turn into backslash+newline).
        text = _STRING_ESCAPE.sub(
            lambda m: _STRING_ESCAPES.get(m.group(1), m.group(0)), text)
        datatype = None
        language = None
        if self.accept("DTYPE"):
            dt_token = self.peek()
            if dt_token.kind == "IRI":
                datatype = self.next().value[1:-1]
            elif dt_token.kind == "PNAME":
                datatype = str(self._resolve_pname(self.next().value))
            else:
                raise ParseError("expected datatype after ^^", dt_token)
        elif self.peek().kind == "LANGTAG":
            language = self.next().value[1:]
        return Literal(text, datatype=datatype, language=language)

    def _resolve_pname(self, pname: str) -> URIRef:
        prefix, _, local = pname.partition(":")
        if prefix not in self.prefixes:
            raise ParseError("unknown prefix %r" % prefix,
                             self.tokens[self.pos - 1])
        return URIRef(self.prefixes[prefix] + local)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _parse_constraint(self, collect_aggregates=None) -> Expression:
        """FILTER/HAVING constraint: bracketted expression or function call."""
        token = self.peek()
        if token.kind == "PUNCT" and token.value == "(":
            self.next()
            expression = self._parse_expression(collect_aggregates)
            self.expect("PUNCT", ")")
            return expression
        if token.kind in ("NAME", "PNAME") or (
                token.kind == "KEYWORD" and token.value in _AGG_KEYWORDS):
            return self._parse_primary(collect_aggregates)
        raise ParseError("expected constraint", token)

    def _parse_expression(self, collect_aggregates=None) -> Expression:
        return self._parse_or(collect_aggregates)

    def _parse_or(self, aggs) -> Expression:
        node = self._parse_and(aggs)
        while self.accept("OP", "||"):
            node = OrExpr(node, self._parse_and(aggs))
        return node

    def _parse_and(self, aggs) -> Expression:
        node = self._parse_relational(aggs)
        while self.accept("OP", "&&"):
            node = AndExpr(node, self._parse_relational(aggs))
        return node

    def _parse_relational(self, aggs) -> Expression:
        node = self._parse_additive(aggs)
        token = self.peek()
        if token.kind == "OP" and token.value in ("=", "!=", "<", "<=", ">", ">="):
            op = self.next().value
            right = self._parse_additive(aggs)
            return CompareExpr(op, node, right)
        if self.at_keyword("IN"):
            self.next()
            return InExpr(node, self._parse_expression_list(aggs))
        if self.at_keyword("NOT"):
            self.next()
            self.expect("KEYWORD", "IN")
            return InExpr(node, self._parse_expression_list(aggs), negated=True)
        return node

    def _parse_expression_list(self, aggs) -> List[Expression]:
        self.expect("PUNCT", "(")
        options = []
        if not (self.peek().kind == "PUNCT" and self.peek().value == ")"):
            options.append(self._parse_expression(aggs))
            while self.accept("PUNCT", ","):
                options.append(self._parse_expression(aggs))
        self.expect("PUNCT", ")")
        return options

    def _parse_additive(self, aggs) -> Expression:
        node = self._parse_multiplicative(aggs)
        while True:
            token = self.peek()
            if token.kind == "OP" and token.value in ("+", "-"):
                op = self.next().value
                node = ArithmeticExpr(op, node, self._parse_multiplicative(aggs))
            else:
                return node

    def _parse_multiplicative(self, aggs) -> Expression:
        node = self._parse_unary(aggs)
        while True:
            token = self.peek()
            if token.kind == "OP" and token.value in ("*", "/"):
                op = self.next().value
                node = ArithmeticExpr(op, node, self._parse_unary(aggs))
            else:
                return node

    def _parse_unary(self, aggs) -> Expression:
        token = self.peek()
        if token.kind == "OP" and token.value == "!":
            self.next()
            return NotExpr(self._parse_unary(aggs))
        if token.kind == "OP" and token.value == "-":
            self.next()
            return UnaryMinusExpr(self._parse_unary(aggs))
        if token.kind == "OP" and token.value == "+":
            self.next()
            return self._parse_unary(aggs)
        return self._parse_primary(aggs)

    def _parse_primary(self, aggs) -> Expression:
        token = self.peek()
        if token.kind == "PUNCT" and token.value == "(":
            self.next()
            node = self._parse_expression(aggs)
            self.expect("PUNCT", ")")
            return node
        if token.kind == "VAR":
            return VarExpr(self.next().value)
        if token.kind == "KEYWORD" and token.value in _AGG_KEYWORDS:
            return self._parse_aggregate_call(aggs)
        if token.kind == "NAME":
            name = token.value
            if name.lower() in _BUILTIN_FUNCTIONS:
                self.next()
                args = self._parse_expression_list(aggs)
                return FunctionExpr(name.lower(), args)
            raise ParseError("unknown function %r" % name, token)
        if token.kind == "PNAME":
            # Either an xsd:* cast call or a constant prefixed name.
            pname = token.value
            if (self.peek(1).kind == "PUNCT" and self.peek(1).value == "("
                    and pname.lower().startswith("xsd:")):
                self.next()
                args = self._parse_expression_list(aggs)
                return FunctionExpr(pname.lower(), args)
            self.next()
            return ConstExpr(self._resolve_pname(pname))
        if token.kind == "IRI":
            return ConstExpr(URIRef(self.next().value[1:-1]))
        if token.kind == "STRING":
            return ConstExpr(self._parse_string_literal())
        if token.kind == "NUMBER":
            return ConstExpr(self._parse_term(position="expression"))
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            self.next()
            return ConstExpr(Literal(token.value == "TRUE"))
        raise ParseError("expected expression", token)

    def _parse_aggregate_call(self, aggs) -> Expression:
        """Parse ``COUNT([DISTINCT] expr|*)`` inside SELECT or HAVING.

        The aggregate is appended to ``aggs`` (synthesizing an alias) and a
        variable reference to that alias is returned, so the surrounding
        expression evaluates against pre-computed per-group values.
        ``GROUP_CONCAT`` additionally accepts the standard
        ``; SEPARATOR="..."`` modifier.
        """
        token = self.next()
        function = token.value.lower()
        if aggs is None:
            raise ParseError("aggregate %s not allowed here" % token.value, token)
        self.expect("PUNCT", "(")
        distinct = bool(self.accept("KEYWORD", "DISTINCT"))
        if self.accept("OP", "*"):
            expression = None
        else:
            expression = self._parse_expression()
        separator = None
        if self.accept("PUNCT", ";"):
            word = self.next()
            if not (word.kind == "NAME" and word.value.upper() == "SEPARATOR"):
                raise ParseError("expected SEPARATOR", word)
            if function != "group_concat":
                raise ParseError("SEPARATOR only applies to GROUP_CONCAT",
                                 word)
            self.expect("OP", "=")
            if self.peek().kind != "STRING":
                raise ParseError("SEPARATOR expects a string literal",
                                 self.peek())
            separator = self._parse_string_literal().lexical
        self.expect("PUNCT", ")")
        self._synthetic_counter += 1
        alias = "__agg_%d" % self._synthetic_counter
        aggregate = alg.Aggregate(function, expression, alias, distinct,
                                  separator=separator)
        aggs.append(aggregate)
        return VarExpr(alias)


def parse(text: str) -> alg.Query:
    """Parse a SPARQL SELECT query into an algebra :class:`~.algebra.Query`."""
    return Parser(text).parse_query()
