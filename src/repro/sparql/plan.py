"""The logical-plan layer: optimizer passes over the SPARQL algebra.

Both front-ends produce the same algebra — SPARQL text through the parser
and RDFFrames query models through :mod:`repro.core.compiler` — and this
module turns that algebra into an executable :class:`Plan` by running an
explicit pipeline of rewrite passes:

* ``FilterPushdown``   — move filters below joins/unions toward the data,
* ``ProjectionPruning`` — collapse and remove redundant projections,
* ``BGPMerge``         — fuse adjacent basic graph patterns into one scope,
* ``AggregatePushdown`` — narrow pre-``Group`` projections to the grouping
  and aggregated variables only, so aggregations consume (and the
  streaming hash ``Group`` keys on) exactly the columns they read; plans
  containing a ``Group`` are annotated streaming so the engine routes
  them through the pipelined executor's hash-aggregation path,
* ``LimitPushdown``    — fuse nested slices, push ``Slice`` bounds through
  cardinality-and-order-preserving spines (``Project``), and fuse
  ``Slice`` over ``OrderBy`` into a single bounded-sort :class:`~.algebra.TopK`
  node; plans whose tree carries a row bound are annotated
  (:attr:`Plan.streaming`) so the engine routes them to the pipelined
  streaming executor,
* ``JoinOrdering``     — the selectivity-greedy triple ordering of
  :mod:`~repro.sparql.optimizer`, applied once at plan time instead of on
  every evaluation.

After the rewrite fixpoint, the ``CostBasedJoinStrategy`` pass annotates
the tree in place: per-BGP estimated cardinalities and the chosen join
strategy (nested-loop / ``intersect`` / ``wcoj``, the last with a variable
elimination order for cyclic BGPs detected via the join hypergraph), and
per-join SIP eligibility.  The engine's execution knobs consult these
annotations under their ``'auto'`` settings.

Each pass is a pure ``node -> (node, changes)`` function (input trees are
never mutated) and records per-pass statistics on the plan, so ablations
and tests can see exactly what fired.  :class:`~repro.sparql.engine.Engine`
keys its plan cache on :func:`plan_key`, a normalized structural
serialization of the algebra — two textually different renderings of the
same query share one cached plan.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..rdf.terms import Variable, is_concrete
from . import algebra as alg
from .expressions import AndExpr, Expression
from .optimizer import (GraphStatistics, WCOJ_COST_FACTOR, WCOJ_MIN_TRIPLES,
                        bgp_is_cyclic,
                        estimate_join, estimate_wcoj, generic_join_eligible,
                        generic_join_order, intersection_worthwhile,
                        order_patterns, run_signature, run_width)

PassResult = Tuple[alg.AlgebraNode, int]
PassFn = Callable[[alg.AlgebraNode], PassResult]

#: Pipeline iteration cap: passes enable each other (pruning a no-op
#: projection exposes two BGPs to merging), so the pipeline reruns until a
#: full sweep changes nothing, bounded by this.
MAX_PIPELINE_ROUNDS = 4


class PassStats:
    """What one optimizer pass did during planning."""

    def __init__(self, name: str, changes: int, seconds: float):
        self.name = name
        self.changes = changes
        self.seconds = seconds

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "changes": self.changes,
                "seconds": self.seconds}

    def __repr__(self):
        return "PassStats(%s, changes=%d, %.6fs)" % (
            self.name, self.changes, self.seconds)


class Plan:
    """An optimized, executable logical plan.

    Holds the rewritten algebra :class:`~.algebra.Query`, the structural
    cache key it was planned under, per-pass statistics, and the output
    column order (``None`` for ``SELECT *``).  Plans are immutable once
    built and safe to execute any number of times.
    """

    def __init__(self, query: alg.Query, key: str,
                 pass_stats: Sequence[PassStats], source: str = "text"):
        self.query = query
        self.key = key
        self.pass_stats = list(pass_stats)
        self.source = source  # 'text' | 'model' | 'algebra'
        self.output_variables = output_variables(query)
        self.executions = 0
        # Statistics synopses lazily built while planning this query
        # (set by the engine; folded into the first execution's stats).
        self.synopsis_builds = 0
        # True when the tree carries a row bound (TopK, or Slice with a
        # limit) or an aggregation (Group): the engine then evaluates the
        # plan on the pipelined streaming executor, where a bound
        # short-circuits row production and Group runs as a streaming
        # hash aggregation over its child pipeline.
        self.streaming = (plan_is_bounded(query.pattern)
                          or plan_has_aggregate(query.pattern))
        # Columnar-plane eligibility: True when every operator in the
        # tree either has a column-at-a-time form or a cheap row detour,
        # and at least one BGP exists to produce columnar batches.  The
        # engine's ``vectorize='auto'`` routes streaming-eligible plans
        # with this annotation onto the vectorized executor.
        self.vectorized = plan_vectorizable(query.pattern)

    @property
    def total_changes(self) -> int:
        return sum(s.changes for s in self.pass_stats)

    def explain(self) -> str:
        """Textual rendering of the optimized tree plus pass statistics.

        Nodes annotated by the ``CostBasedJoinStrategy`` pass render
        their chosen join strategy, estimated cardinality, and (for
        ``wcoj``) the variable elimination order in a trailing
        ``[...]`` block; SIP-eligible joins render ``[sip]``.

        A triangle over a collaboration edge with a few high-degree hubs:
        the nested-loop estimate blows up on the hubs' squared fan-out,
        so the cost gate routes the BGP to generic join and annotates
        the variable elimination order.

        >>> from repro.rdf.graph import Graph
        >>> from repro.rdf.terms import URIRef
        >>> g = Graph("urn:ex")
        >>> w = URIRef("urn:with")
        >>> p = [URIRef("urn:p%02d" % i) for i in range(24)]
        >>> for i in range(24):  # sparse ring of collaborations
        ...     _ = g.add(p[i], w, p[(i + 1) % 24])
        ...     _ = g.add(p[(i + 1) % 24], w, p[i])
        >>> for h in range(8):   # eight hubs collaborate with everyone
        ...     for i in range(24):
        ...         if i != h:
        ...             _ = g.add(p[h], w, p[i])
        ...             _ = g.add(p[i], w, p[h])
        >>> from repro.sparql.parser import parse
        >>> plan = optimize_plan(parse(
        ...     "SELECT ?a WHERE { ?a <urn:with> ?b . "
        ...     "?b <urn:with> ?c . ?a <urn:with> ?c }"), graph=g)
        >>> for line in plan.explain().splitlines():
        ...     if not line.startswith("--"):
        ...         print(line)
        FROM []
        Project(['a'])
          BGP(3 triples) [strategy=wcoj, est_rows=2881, eliminate=?a->?b->?c]
        """
        lines: List[str] = ["FROM %s" % self.query.from_graphs]

        def walk(node, depth):
            lines.append("  " * depth + repr(node) + _explain_notes(node))
            for child in node.children():
                walk(child, depth + 1)

        walk(self.query.pattern, 0)
        for stats in self.pass_stats:
            lines.append("-- %s: %d change(s) in %.6fs"
                         % (stats.name, stats.changes, stats.seconds))
        return "\n".join(lines)

    def __repr__(self):
        return "Plan(source=%s, passes=%s)" % (
            self.source, [s.name for s in self.pass_stats])


def _explain_notes(node: alg.AlgebraNode) -> str:
    """The ``[...]`` annotation block :meth:`Plan.explain` appends to a
    node line, or '' when the planner annotated nothing."""
    notes: List[str] = []
    strategy = getattr(node, "strategy", None)
    if strategy is not None:
        notes.append("strategy=%s" % strategy)
    est_rows = getattr(node, "est_rows", None)
    if est_rows is not None:
        notes.append("est_rows=%d" % round(est_rows))
    eliminate = getattr(node, "eliminate", None)
    if eliminate:
        notes.append("eliminate=%s" % "->".join("?" + v for v in eliminate))
    if getattr(node, "sip_eligible", False):
        notes.append("sip")
    if not notes:
        return ""
    return " [%s]" % ", ".join(notes)


def output_variables(query: alg.Query) -> Optional[List[str]]:
    """The projection's column order, or ``None`` for ``SELECT *`` (column
    order then derives from the solutions)."""
    node = query.pattern
    while isinstance(node, (alg.Slice, alg.OrderBy, alg.Distinct, alg.TopK)):
        node = node.pattern
    if isinstance(node, alg.Project) and node.variables is not None:
        return list(node.variables)
    return None


def plan_is_bounded(node: alg.AlgebraNode) -> bool:
    """True when the tree contains a row bound a streaming executor can
    exploit (a ``TopK``, or a ``Slice`` with a limit).  Offset-only slices
    do not count: they still require every trailing row."""
    if isinstance(node, alg.TopK):
        return True
    if isinstance(node, alg.Slice) and node.limit is not None:
        return True
    return any(plan_is_bounded(child) for child in node.children())


def plan_has_aggregate(node: alg.AlgebraNode) -> bool:
    """True when the tree contains a ``Group``.  Such plans benefit from
    the streaming executor even without a row bound: the streaming hash
    ``Group`` folds its input into per-group accumulators instead of
    materializing the pre-aggregation table, and the single-pattern COUNT
    shape collapses into index-backed counting."""
    if isinstance(node, alg.Group):
        return True
    return any(plan_has_aggregate(child) for child in node.children())


#: Operators with a column-at-a-time form or a bounded row detour on the
#: vectorized plane.  OrderBy/TopK/Minus/FilterExists are absent: they are
#: row-comparison heavy, so the columnar plane would transpose everything
#: it produced and win nothing.
_VECTOR_FRIENDLY = (alg.Join, alg.LeftJoin, alg.Filter, alg.Extend,
                    alg.Project, alg.Distinct, alg.Slice, alg.Union,
                    alg.Group, alg.GraphPattern, alg.InlineData)


def plan_vectorizable(node: alg.AlgebraNode) -> bool:
    """True when the plan is eligible for the columnar batch plane.

    Eligibility is structural: every BGP must avoid the general
    slot-interpreting matcher (no variable in predicate position) and the
    multiway-intersection strategy (its steps have no columnar form), and
    every operator above must be vector-friendly.  At least one non-empty
    BGP must exist — otherwise there is no columnar producer and the
    annotation would route a plan that gains nothing.
    """
    ok, has_bgp = _vector_walk(node)
    return ok and has_bgp


def _vector_walk(node: alg.AlgebraNode) -> Tuple[bool, bool]:
    if isinstance(node, alg.BGP):
        if not node.triples:
            return True, False
        if getattr(node, "strategy", None) in ("intersect", "wcoj"):
            return False, True
        ok = not any(isinstance(triple[1], Variable)
                     for triple in node.triples)
        return ok, True
    if isinstance(node, _VECTOR_FRIENDLY):
        ok, has_bgp = True, False
        for child in node.children():
            child_ok, child_bgp = _vector_walk(child)
            ok = ok and child_ok
            has_bgp = has_bgp or child_bgp
        return ok, has_bgp
    return False, False


# ----------------------------------------------------------------------
# Generic structural helpers (all passes rebuild, never mutate)
# ----------------------------------------------------------------------

def _rebuild(node: alg.AlgebraNode,
             children: List[alg.AlgebraNode]) -> alg.AlgebraNode:
    """A copy of ``node`` with its children replaced (same arity/order as
    ``node.children()``)."""
    if isinstance(node, alg.BGP):
        return alg.BGP(node.triples)
    if isinstance(node, alg.InlineData):
        return alg.InlineData(node.variables, node.rows)
    if isinstance(node, alg.Join):
        return alg.Join(children[0], children[1])
    if isinstance(node, alg.LeftJoin):
        return alg.LeftJoin(children[0], children[1], node.condition)
    if isinstance(node, alg.Union):
        return alg.Union(children[0], children[1])
    if isinstance(node, alg.Minus):
        return alg.Minus(children[0], children[1])
    if isinstance(node, alg.Filter):
        return alg.Filter(node.condition, children[0])
    if isinstance(node, alg.Extend):
        return alg.Extend(children[0], node.var, node.expression)
    if isinstance(node, alg.Group):
        return alg.Group(children[0], node.group_vars, node.aggregates,
                         node.having)
    if isinstance(node, alg.Project):
        return alg.Project(children[0], node.variables)
    if isinstance(node, alg.Distinct):
        return alg.Distinct(children[0])
    if isinstance(node, alg.OrderBy):
        return alg.OrderBy(children[0], node.keys)
    if isinstance(node, alg.Slice):
        return alg.Slice(children[0], node.limit, node.offset)
    if isinstance(node, alg.TopK):
        return alg.TopK(children[0], node.keys, node.limit, node.offset)
    if isinstance(node, alg.GraphPattern):
        return alg.GraphPattern(node.graph_uri, children[0])
    if isinstance(node, alg.FilterExists):
        return alg.FilterExists(children[0], children[1], node.negated)
    raise TypeError("cannot rebuild algebra node %r" % node)


def expression_variables(expression: Expression) -> Set[str]:
    """All variable names an expression refers to."""
    return set(expression.variables())


def _split_conjuncts(expression: Expression) -> List[Expression]:
    """Flatten a chain of ``&&`` into its conjuncts.

    Safe for filter placement: a row passes ``FILTER(A && B)`` iff the
    effective boolean value of both conjuncts is true (SPARQL's
    three-valued ``&&`` never turns a non-true pair into true), which is
    exactly when it passes ``FILTER(A)`` and ``FILTER(B)``.
    """
    if isinstance(expression, AndExpr):
        return (_split_conjuncts(expression.left)
                + _split_conjuncts(expression.right))
    return [expression]


# ----------------------------------------------------------------------
# Pass 1: FilterPushdown
# ----------------------------------------------------------------------

def filter_pushdown(node: alg.AlgebraNode) -> PassResult:
    """Push filters toward the data.

    A conjunct moves below a Join (or to the preserved side of a LeftJoin)
    when all its variables are in scope on that side *and none* are in
    scope on the other side — the moved filter then sees exactly the same
    bindings it would have seen above the join, including unbound ones.
    Filters distribute into both branches of a Union unconditionally
    (union rows come from exactly one branch).
    """
    changes = 0

    def visit(n: alg.AlgebraNode) -> alg.AlgebraNode:
        nonlocal changes
        if isinstance(n, alg.Filter):
            inner = n.pattern
            pushed = _push_condition(n.condition, inner)
            if pushed is not None:
                changes += 1
                return visit(pushed)
            return alg.Filter(n.condition, visit(inner))
        children = [visit(child) for child in n.children()]
        return _rebuild(n, children) if children else n

    return visit(node), changes


def _push_condition(condition: Expression,
                    inner: alg.AlgebraNode) -> Optional[alg.AlgebraNode]:
    """One pushdown step for ``Filter(condition, inner)``; ``None`` when the
    filter cannot move."""
    conjuncts = _split_conjuncts(condition)

    if isinstance(inner, alg.Union):
        return alg.Union(alg.Filter(condition, inner.left),
                         alg.Filter(condition, inner.right))

    if isinstance(inner, (alg.Join, alg.LeftJoin)):
        left_scope = set(inner.left.in_scope())
        right_scope = set(inner.right.in_scope())
        stay: List[Expression] = []
        to_left: List[Expression] = []
        to_right: List[Expression] = []
        for conjunct in conjuncts:
            variables = expression_variables(conjunct)
            if variables <= left_scope and not (variables & right_scope):
                to_left.append(conjunct)
            elif (isinstance(inner, alg.Join) and variables <= right_scope
                    and not (variables & left_scope)):
                # Only an inner join admits a push to the right: LeftJoin
                # must preserve every left row regardless of the right side.
                to_right.append(conjunct)
            else:
                stay.append(conjunct)
        if not to_left and not to_right:
            return None
        left = inner.left
        for conjunct in to_left:
            left = alg.Filter(conjunct, left)
        right = inner.right
        for conjunct in to_right:
            right = alg.Filter(conjunct, right)
        if isinstance(inner, alg.LeftJoin):
            node: alg.AlgebraNode = alg.LeftJoin(left, right, inner.condition)
        else:
            node = alg.Join(left, right)
        for conjunct in stay:
            node = alg.Filter(conjunct, node)
        return node

    return None


# ----------------------------------------------------------------------
# Pass 2: ProjectionPruning
# ----------------------------------------------------------------------

def projection_pruning(node: alg.AlgebraNode) -> PassResult:
    """Remove redundant projection work.

    * ``Project(vars)`` over ``Project(cvars)`` with ``vars ⊆ cvars``
      collapses to a single projection (one table copy instead of two).
    * A non-root ``Project`` whose explicit variables equal its child's
      in-scope columns (same order) is a no-op and is dropped — which also
      exposes the pattern below it to ``BGPMerge``.
    * ``Distinct(Distinct(x))`` collapses.

    ``SELECT *`` projections (``variables=None``) are never touched: they
    carry the scope-isolation intent of deliberately nested queries (the
    naive-strategy baseline measures exactly that cost).  The root
    projection is protected because it defines the result column order.
    """
    changes = 0

    def visit(n: alg.AlgebraNode) -> alg.AlgebraNode:
        nonlocal changes
        children = [visit(child) for child in n.children()]
        n = _rebuild(n, children) if children else n
        if isinstance(n, alg.Distinct) and isinstance(n.pattern, alg.Distinct):
            changes += 1
            return n.pattern
        if isinstance(n, alg.Project) and n.variables is not None:
            child = n.pattern
            if (isinstance(child, alg.Project) and child.variables is not None
                    and set(n.variables) <= set(child.variables)):
                changes += 1
                return alg.Project(child.pattern, n.variables)
            if list(n.variables) == child.in_scope():
                changes += 1
                return child
        return n

    def spine(n: alg.AlgebraNode) -> alg.AlgebraNode:
        # The root modifier spine (Slice/OrderBy/Distinct over the root
        # Project) is walked structurally so the root projection itself is
        # never removed — it defines the result column order — while
        # everything below it is pruned by ``visit``.
        nonlocal changes
        if isinstance(n, (alg.Slice, alg.OrderBy, alg.Distinct, alg.TopK)):
            n = _rebuild(n, [spine(n.pattern)])
            if isinstance(n, alg.Distinct) \
                    and isinstance(n.pattern, alg.Distinct):
                changes += 1
                return n.pattern
            return n
        if isinstance(n, alg.Project):
            return alg.Project(visit(n.pattern), n.variables)
        return visit(n)

    return spine(node), changes


# ----------------------------------------------------------------------
# Pass 3: BGPMerge
# ----------------------------------------------------------------------

def bgp_merge(node: alg.AlgebraNode) -> PassResult:
    """Fuse ``Join(BGP, BGP)`` into a single BGP.

    A join of two basic graph patterns over the same active graph is, by
    the SPARQL algebra, the BGP of their combined triples — and one flat
    BGP is what the selectivity optimizer orders best.
    """
    changes = 0

    def visit(n: alg.AlgebraNode) -> alg.AlgebraNode:
        nonlocal changes
        children = [visit(child) for child in n.children()]
        n = _rebuild(n, children) if children else n
        if (isinstance(n, alg.Join) and isinstance(n.left, alg.BGP)
                and isinstance(n.right, alg.BGP)):
            changes += 1
            return alg.BGP(n.left.triples + n.right.triples)
        return n

    return visit(node), changes


# ----------------------------------------------------------------------
# Pass 4: AggregatePushdown
# ----------------------------------------------------------------------

def aggregate_pushdown(node: alg.AlgebraNode) -> PassResult:
    """Shrink the data flowing into aggregations.

    ``Group`` reads only its grouping variables and the variables its
    aggregate expressions mention; everything else its child carries is
    dead weight — columns hashed into no key and folded into no
    accumulator.  When the child is an explicit projection (the shape the
    RDFFrames generator emits for grouped subqueries), the projection is
    narrowed to exactly the needed variables, in their original order.
    Multiplicity is untouched (a projection is a per-row map), so every
    aggregate — including ``COUNT(*)`` — sees the same bag of groups.

    ``HAVING`` needs no extra columns: it is evaluated over the *output*
    row (grouping variables + aggregate aliases), never over the input.

    This narrowing is what lets the streaming hash ``Group`` key on thin
    id tuples, and it frequently exposes the single-pattern COUNT shape
    that the evaluator answers straight from the graph indexes.
    """
    changes = 0

    def visit(n: alg.AlgebraNode) -> alg.AlgebraNode:
        nonlocal changes
        children = [visit(child) for child in n.children()]
        n = _rebuild(n, children) if children else n
        if not isinstance(n, alg.Group):
            return n
        child = n.pattern
        if not isinstance(child, alg.Project) or child.variables is None:
            return n
        if any(a.expression is None and a.distinct for a in n.aggregates):
            # COUNT(DISTINCT *) counts distinct whole solutions — every
            # column is semantically significant, nothing can be pruned.
            return n
        needed = set(n.group_vars)
        for aggregate in n.aggregates:
            if aggregate.expression is not None:
                needed |= expression_variables(aggregate.expression)
        keep = [v for v in child.variables if v in needed]
        if len(keep) == len(child.variables):
            return n
        changes += 1
        return alg.Group(alg.Project(child.pattern, keep),
                         n.group_vars, n.aggregates, n.having)

    return visit(node), changes


# ----------------------------------------------------------------------
# Pass 5: LimitPushdown
# ----------------------------------------------------------------------

def limit_pushdown(node: alg.AlgebraNode) -> PassResult:
    """Move row bounds toward the data and fuse bounded sorts.

    Three rewrites, applied bottom-up until the pipeline reaches fixpoint:

    * ``Slice(Slice(p))`` — compose the two windows into one.
    * ``Slice(Project(p))`` — push the slice below the projection.  A
      projection is a per-row map (cardinality- and order-preserving), so
      slicing before or after it selects the same rows; moving the bound
      down lets it meet an ``OrderBy`` (next rewrite) or sit directly on a
      streaming producer.  This deliberately crosses subquery boundaries:
      a nested SELECT is materialized independently, but its row order and
      multiplicity are exactly what the outer slice would have seen.
    * ``Slice(OrderBy(p), limit=k)`` — fuse into :class:`~.algebra.TopK`:
      a single bounded-sort operator that keeps only ``offset + k`` rows.
    * ``TopK(Project(p))`` — swap to ``Project(TopK(p))`` when every sort
      variable bound below survives the projection (ordering before or
      after the column cut then ranks identically).  This lands the
      bounded sort directly on a BGP, where the streaming executor can
      threshold-prune join fan-out.

    ``Distinct`` is *not* reordered with a slice (``LIMIT k`` over
    ``DISTINCT`` must dedupe first); the streaming executor instead stops
    pulling from the dedupe as soon as ``k`` distinct rows exist.  A
    ``LIMIT 0`` slice is left alone — the streaming ``Slice`` answers it
    without pulling a single row, so there is nothing to fuse.
    """
    changes = 0

    def visit(n: alg.AlgebraNode) -> alg.AlgebraNode:
        nonlocal changes
        children = [visit(child) for child in n.children()]
        n = _rebuild(n, children) if children else n
        if isinstance(n, alg.TopK):
            inner = n.pattern
            if isinstance(inner, alg.Project):
                scope = set(inner.pattern.in_scope())
                if inner.variables is None:
                    projected = {v for v in scope
                                 if not v.startswith("__agg_")}
                else:
                    projected = set(inner.variables)
                if all(var in projected for var, _ in n.keys
                       if var in scope):
                    changes += 1
                    return alg.Project(
                        alg.TopK(inner.pattern, n.keys, n.limit, n.offset),
                        inner.variables)
            return n
        if not isinstance(n, alg.Slice):
            return n
        inner = n.pattern
        if isinstance(inner, alg.Slice):
            # rows[o2:o2+l2][o1:o1+l1] == rows[o2+o1 : o2+o1+min-window]
            offset = inner.offset + n.offset
            if inner.limit is None:
                limit = n.limit
            else:
                window = max(inner.limit - n.offset, 0)
                limit = window if n.limit is None else min(n.limit, window)
            changes += 1
            return visit(alg.Slice(inner.pattern, limit, offset))
        if isinstance(inner, alg.Project):
            changes += 1
            return alg.Project(visit(alg.Slice(inner.pattern,
                                               n.limit, n.offset)),
                               inner.variables)
        if isinstance(inner, alg.OrderBy) and n.limit:
            changes += 1
            return alg.TopK(inner.pattern, inner.keys, n.limit, n.offset)
        return n

    return visit(node), changes


# ----------------------------------------------------------------------
# Pass 6: JoinOrdering (plan-time selectivity ordering)
# ----------------------------------------------------------------------

def make_join_ordering(graph, dataset=None) -> PassFn:
    """Build the join-ordering pass for a query's resolved default graph.

    Reorders every BGP's triple patterns with the greedy selectivity
    ordering of :func:`~.optimizer.order_patterns`; BGPs under a
    ``GRAPH <uri>`` scope are ordered with that graph's statistics.  This
    is the same decision the evaluator used to make per execution — made
    once here, it is amortized over every plan-cache hit.
    """
    stats_cache: Dict[int, GraphStatistics] = {}

    def stats_for(g) -> GraphStatistics:
        key = id(g)
        stats = stats_cache.get(key)
        if stats is None:
            stats = GraphStatistics(g)
            stats_cache[key] = stats
        return stats

    def join_ordering(node: alg.AlgebraNode) -> PassResult:
        changes = 0

        def visit(n: alg.AlgebraNode, g) -> alg.AlgebraNode:
            nonlocal changes
            if isinstance(n, alg.BGP):
                if g is None or len(n.triples) < 2:
                    return n
                ordered = order_patterns(n.triples, stats_for(g))
                if ordered != n.triples:
                    changes += 1
                    return alg.BGP(ordered)
                return n
            if isinstance(n, alg.GraphPattern):
                target = g
                if dataset is not None and n.graph_uri in dataset:
                    target = dataset.graph(n.graph_uri)
                return alg.GraphPattern(n.graph_uri,
                                        visit(n.pattern, target))
            children = [visit(child, g) for child in n.children()]
            return _rebuild(n, children) if children else n

        return visit(node, graph), changes

    return join_ordering


# ----------------------------------------------------------------------
# Pass 7: CostBasedJoinStrategy (post-fixpoint annotation pass)
# ----------------------------------------------------------------------

#: Minimum triple count of a probe-side predicate before a join is marked
#: SIP-eligible: filtering a handful of candidates costs more bookkeeping
#: than it saves.
SIP_MIN_PREDICATE_TRIPLES = 32

def _bgp_wants_intersection(triples, stats: GraphStatistics) -> bool:
    """Simulate the evaluator's binding order and report whether some step
    has a *worthwhile* multiway intersection.

    Mirrors :meth:`Evaluator._intersection_plan` structurally (via the
    shared :func:`~.optimizer.run_signature`) and applies the shared
    statistics gate (:func:`~.optimizer.intersection_worthwhile`).  One
    winning step is enough: the annotation is per-BGP, and the evaluator
    re-applies the same gate per step under ``multiway='auto'``, so a
    BGP with one good and one useless opportunity intersects only where
    it pays.
    """
    bound: Set[str] = set()
    remaining = list(triples)
    while remaining:
        head = remaining[0]
        for term in (head[0], head[2]):
            if not isinstance(term, Variable) or term.name in bound:
                continue
            var = term.name
            widths: Dict = {}
            any_consumed = False
            for q in remaining:
                sig, consumes = run_signature(q, var, bound)
                if sig is None:
                    continue
                if sig not in widths:
                    widths[sig] = run_width(sig, stats)
                any_consumed = any_consumed or consumes
            if intersection_worthwhile(widths, any_consumed):
                return True
        remaining.pop(0)
        for term in head:
            if isinstance(term, Variable):
                bound.add(term.name)
    return False


def _probe_prunable(probe: alg.AlgebraNode, shared: Set[str],
                    stats: GraphStatistics) -> bool:
    """True when the probe subtree contains a BGP pattern that binds a
    shared variable under a constant predicate of non-trivial cardinality
    — the leaf a sideways filter would actually prune."""
    for bgp in alg.collect_bgps(probe):
        for s, p, o in bgp.triples:
            if not is_concrete(p):
                continue
            names = [t.name for t in (s, o) if isinstance(t, Variable)]
            if not any(name in shared for name in names):
                continue
            if stats.predicate_cardinality(p) >= SIP_MIN_PREDICATE_TRIPLES:
                return True
    return False


def _wcoj_sized(triples, stats: GraphStatistics) -> bool:
    """The generic-join size gate: total triples across the BGP's
    distinct predicates must clear :data:`~.optimizer.WCOJ_MIN_TRIPLES`
    (micro graphs and unit fixtures keep nested-loop)."""
    predicates = {q[1] for q in triples if is_concrete(q[1])}
    return sum(stats.predicate_cardinality(p)
               for p in predicates) >= WCOJ_MIN_TRIPLES


def make_cost_based_join_strategy(graph, dataset=None) -> PassFn:
    """Build the CostBasedJoinStrategy annotation pass for a resolved
    default graph.

    Unlike the rewrite passes, this one *annotates* nodes in place and
    must therefore run after the rewrite pipeline reaches fixpoint
    (rebuilding passes would drop the attributes).  Per BGP it estimates
    the output cardinality (``est_rows``, from the synopsis-backed
    :class:`~.optimizer.GraphStatistics`) and chooses a join strategy:

    * ``wcoj`` — the BGP's join hypergraph is cyclic
      (:func:`~.optimizer.bgp_is_cyclic`), structurally eligible for
      generic join, and large enough; a variable elimination order is
      annotated as ``eliminate`` (GROUP BY keys above the BGP are
      preferred to the front so aggregates can be pushed through the
      decomposition) along with the estimated generic-join cost
      (``est_cost``).  ``intersect_ok`` records whether the multiway
      gate would also fire, so engines with ``wcoj=False`` keep the
      intersection plan instead of falling all the way to nested-loop.
    * ``intersect`` — some step passes the shared multiway gate
      (:func:`~.optimizer.intersection_worthwhile`).
    * nested-loop otherwise (no ``strategy`` annotation).

    Joins additionally get ``sip_eligible`` marks, as before.  The
    engine's ``sip``/``multiway``/``wcoj`` knobs consult the annotations
    at execution time (``'auto'``), so one cached plan serves every knob
    setting.
    """
    stats_cache: Dict[int, GraphStatistics] = {}

    def stats_for(g) -> GraphStatistics:
        key = id(g)
        stats = stats_cache.get(key)
        if stats is None or not stats.fresh():
            stats = GraphStatistics(g)
            stats_cache[key] = stats
        return stats

    def join_strategy(node: alg.AlgebraNode) -> PassResult:
        changes = 0

        def mark_sip(n, build, probe, g) -> None:
            nonlocal changes
            if g is None:
                return
            shared = set(build.in_scope()) & set(probe.in_scope())
            if shared and _probe_prunable(probe, shared, stats_for(g)):
                n.sip_eligible = True
                changes += 1

        def visit(n: alg.AlgebraNode, g, prefer=()) -> None:
            nonlocal changes
            if isinstance(n, alg.BGP):
                if g is None or not n.triples:
                    return
                stats = stats_for(g)
                cost_nl, est_rows = estimate_join(n.triples, stats)
                n.est_rows = est_rows
                if len(n.triples) < 2:
                    return
                wants_intersect = _bgp_wants_intersection(n.triples, stats)
                if wants_intersect:
                    n.intersect_ok = True
                if len(n.triples) >= 3 \
                        and generic_join_eligible(n.triples) \
                        and bgp_is_cyclic(n.triples) \
                        and _wcoj_sized(n.triples, stats):
                    order = generic_join_order(n.triples, stats,
                                               prefer=prefer)
                    if order is not None:
                        cost_wcoj = estimate_wcoj(n.triples, order, stats)
                        if cost_wcoj * WCOJ_COST_FACTOR <= cost_nl:
                            n.strategy = "wcoj"
                            n.eliminate = tuple(order)
                            n.est_cost = cost_wcoj
                            changes += 1
                            return
                if wants_intersect:
                    n.strategy = "intersect"
                    n.est_cost = cost_nl
                    changes += 1
                return
            if isinstance(n, alg.GraphPattern):
                target = g
                if dataset is not None and n.graph_uri in dataset:
                    target = dataset.graph(n.graph_uri)
                visit(n.pattern, target, prefer)
                return
            if isinstance(n, alg.Group):
                # Grouping keys prefixed in the elimination order are
                # what lets COUNT/SUM ride the decomposition without
                # materializing the join.
                visit(n.pattern, g, tuple(n.group_vars))
                return
            if isinstance(n, alg.Project):
                visit(n.pattern, g, prefer)
                return
            if isinstance(n, alg.Join):
                mark_sip(n, n.left, n.right, g)
            elif isinstance(n, (alg.LeftJoin, alg.Minus)):
                mark_sip(n, n.left, n.right, g)
            elif isinstance(n, alg.FilterExists):
                # Exports flow pattern->group on the materialized plane
                # and group->pattern (EXISTS only) on the streaming one;
                # eligible when either direction has a prunable leaf.
                mark_sip(n, n.pattern, n.group, g)
                if not getattr(n, "sip_eligible", False) and not n.negated:
                    mark_sip(n, n.group, n.pattern, g)
            for child in n.children():
                visit(child, g)

        visit(node, graph)
        return node, changes

    return join_strategy


#: Backwards-compatible alias for the pre-cost-model pass constructor.
make_join_strategy = make_cost_based_join_strategy


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------

#: The rewrite passes every plan goes through, in order (JoinOrdering is
#: appended by :func:`optimize_plan` when a graph is resolved and the
#: engine's optimizer is enabled).
DEFAULT_PASSES: Tuple[Tuple[str, PassFn], ...] = (
    ("FilterPushdown", filter_pushdown),
    ("ProjectionPruning", projection_pruning),
    ("BGPMerge", bgp_merge),
    ("AggregatePushdown", aggregate_pushdown),
    ("LimitPushdown", limit_pushdown),
)


def optimize_plan(query: alg.Query, key: str = "", graph=None, dataset=None,
                  join_order: bool = True, source: str = "text",
                  passes: Optional[Sequence[Tuple[str, PassFn]]] = None,
                  push_limits: bool = True) -> Plan:
    """Run the pass pipeline over a parsed/compiled query and return a
    :class:`Plan`.

    ``graph`` is the query's resolved default graph (used only for
    join-ordering statistics; pass ``None`` to skip ordering), ``dataset``
    resolves ``GRAPH <uri>`` scopes.  ``push_limits=False`` drops the
    ``LimitPushdown`` pass (the benchmarks use it to measure the
    materialize-everything baseline).  Passes rerun until a full sweep
    changes nothing (earlier passes expose opportunities to later ones),
    capped at :data:`MAX_PIPELINE_ROUNDS` sweeps.
    """
    pipeline = list(DEFAULT_PASSES if passes is None else passes)
    if not push_limits and passes is None:
        pipeline = [entry for entry in pipeline if entry[0] != "LimitPushdown"]
    post: List[Tuple[str, PassFn]] = []
    if join_order and graph is not None:
        pipeline.append(("JoinOrdering", make_join_ordering(graph, dataset)))
        # CostBasedJoinStrategy only *annotates* (BGP strategy + estimates
        # + elimination orders, per-join SIP eligibility); it runs once
        # after the rewrite fixpoint so the rebuilding passes cannot drop
        # its attributes.
        post.append(("CostBasedJoinStrategy",
                     make_cost_based_join_strategy(graph, dataset)))

    node = query.pattern
    totals: Dict[str, PassStats] = {
        name: PassStats(name, 0, 0.0)
        for name, _ in list(pipeline) + post}
    for _ in range(MAX_PIPELINE_ROUNDS):
        round_changes = 0
        for name, pass_fn in pipeline:
            start = time.perf_counter()
            node, changes = pass_fn(node)
            totals[name].seconds += time.perf_counter() - start
            totals[name].changes += changes
            round_changes += changes
        if not round_changes:
            break
    for name, pass_fn in post:
        start = time.perf_counter()
        node, changes = pass_fn(node)
        totals[name].seconds += time.perf_counter() - start
        totals[name].changes += changes
    optimized = alg.Query(node, from_graphs=list(query.from_graphs),
                          prefixes=dict(query.prefixes))
    plan = Plan(optimized, key,
                [totals[name] for name, _ in list(pipeline) + post],
                source=source)
    if not push_limits:
        # The materialize-everything baseline: no streaming annotation
        # (and therefore no vectorized plane, which rides on streaming).
        plan.streaming = False
        plan.vectorized = False
    return plan


# ----------------------------------------------------------------------
# Structural plan keys
# ----------------------------------------------------------------------

def plan_key(query: alg.Query, default_graph_uri: Optional[str] = None,
             fingerprint: Tuple = ()) -> str:
    """A normalized structural serialization of a query, for plan caching.

    Two queries with the same algebra — regardless of surface text
    (whitespace, prefixed vs. full IRIs, front-end) — map to the same key.
    ``fingerprint`` ties the key to the dataset state so mutations re-plan
    (join ordering depends on graph statistics).
    """
    return "|".join([
        repr(tuple(query.from_graphs)),
        repr(default_graph_uri),
        repr(fingerprint),
        _node_key(query.pattern),
    ])


def _term_key(term) -> str:
    if isinstance(term, Variable):
        return "?" + term.name
    return repr(term)


def _node_key(node: alg.AlgebraNode) -> str:
    if isinstance(node, alg.BGP):
        return "BGP[%s]" % ";".join(
            ",".join(_term_key(t) for t in triple) for triple in node.triples)
    if isinstance(node, alg.InlineData):
        return "Values[%s|%s]" % (",".join(node.variables),
                                  ";".join(repr(row) for row in node.rows))
    if isinstance(node, alg.Join):
        return "Join(%s,%s)" % (_node_key(node.left), _node_key(node.right))
    if isinstance(node, alg.LeftJoin):
        condition = node.condition.sparql() if node.condition else ""
        return "LeftJoin(%s,%s,%s)" % (_node_key(node.left),
                                       _node_key(node.right), condition)
    if isinstance(node, alg.Union):
        return "Union(%s,%s)" % (_node_key(node.left), _node_key(node.right))
    if isinstance(node, alg.Minus):
        return "Minus(%s,%s)" % (_node_key(node.left), _node_key(node.right))
    if isinstance(node, alg.Filter):
        return "Filter(%s,%s)" % (node.condition.sparql(),
                                  _node_key(node.pattern))
    if isinstance(node, alg.Extend):
        return "Extend(%s,%s,%s)" % (node.var, node.expression.sparql(),
                                     _node_key(node.pattern))
    if isinstance(node, alg.Group):
        having = node.having.sparql() if node.having is not None else ""
        return "Group(%s|%s|%s|%s)" % (
            ",".join(node.group_vars),
            ",".join(a.sparql() for a in node.aggregates),
            having, _node_key(node.pattern))
    if isinstance(node, alg.Project):
        variables = "*" if node.variables is None else ",".join(node.variables)
        return "Project(%s|%s)" % (variables, _node_key(node.pattern))
    if isinstance(node, alg.Distinct):
        return "Distinct(%s)" % _node_key(node.pattern)
    if isinstance(node, alg.OrderBy):
        return "OrderBy(%s|%s)" % (node.keys, _node_key(node.pattern))
    if isinstance(node, alg.Slice):
        return "Slice(%s,%s|%s)" % (node.limit, node.offset,
                                    _node_key(node.pattern))
    if isinstance(node, alg.TopK):
        return "TopK(%s,%s,%s|%s)" % (node.keys, node.limit, node.offset,
                                      _node_key(node.pattern))
    if isinstance(node, alg.GraphPattern):
        return "Graph(%s|%s)" % (node.graph_uri, _node_key(node.pattern))
    if isinstance(node, alg.FilterExists):
        return "Exists(%s,%s,%s)" % (node.negated, _node_key(node.pattern),
                                     _node_key(node.group))
    raise TypeError("cannot serialize algebra node %r" % node)
