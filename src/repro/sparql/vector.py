"""Column-at-a-time kernels for the vectorized data plane.

The streaming executor's hot operators exchange :class:`~.solution.
ColumnBatch` objects — one flat list of term ids per variable — and
this module supplies the pieces that make whole-column evaluation pay:

* :func:`compile_predicate` turns the id-comparison subset of FILTER
  conditions (``=``, ``!=``, ``IN``/``NOT IN`` against IRI constants,
  ``BOUND``/``!BOUND``, and ``&&``/``||`` combinations thereof) into a
  per-plan closure that scans a column and emits a *selection vector* (a
  byte flag per row) without decoding a single term.  Conditions outside
  that subset return ``None`` and the filter falls back to row view.
* :func:`replicate` / :func:`replicate_mask` expand a parent column
  through a per-row fan-out count — the columnar face of the pattern
  matcher's ``row + (o,)`` append, done with C-level ``itertools``
  plumbing instead of per-row tuple construction.
* :func:`expand_columns` is the full expansion step built on top: when
  every fan-out count is 0 or 1 (lookup-shaped joins, the common case in
  star and chain BGPs) it degenerates to a selection-vector compress —
  and to a zero-copy column share when nothing was dropped at all —
  falling back to :func:`replicate` only for real fan-out.

Soundness of the id-comparison subset: the term dictionary is injective,
so id equality *is* term equality; and for a comparison against an IRI
constant SPARQL's ``=``/``!=`` never raise a type error
(:func:`~.expressions._compare` defines them for any operand mix that
includes a URI), so "row dropped on expression error" and "row dropped on
id mismatch" coincide exactly.  Literal constants are *not* compiled:
two distinct ids can be value-equal (``1`` vs ``1.0``), which only the
row-view comparison handles.
"""

from __future__ import annotations

from itertools import chain, repeat
from typing import Callable, Dict, Optional

from ..rdf.terms import URIRef
from .expressions import (AndExpr, CompareExpr, ConstExpr, Expression,
                          FunctionExpr, InExpr, NotExpr, OrExpr, VarExpr)
from .solution import ColumnBatch

__all__ = ["compile_predicate", "expand_columns", "predicate_compilable",
           "replicate", "replicate_mask"]


# ----------------------------------------------------------------------
# Column replication (BGP fan-out)
# ----------------------------------------------------------------------

def replicate(col: list, counts) -> list:
    """Repeat ``col[i]`` ``counts[i]`` times, concatenated.

    This is how a vectorized index-nested-loop step carries its parent
    columns through a fan-out: the per-row repetition runs entirely in C
    (``chain``/``map``/``repeat`` feeding ``list.extend``)."""
    out = []
    out.extend(chain.from_iterable(map(repeat, col, counts)))
    return out


def replicate_mask(mask: bytearray, counts) -> bytearray:
    """:func:`replicate` for a null mask column."""
    out = bytearray()
    out.extend(chain.from_iterable(map(repeat, mask, counts)))
    return out


def tile(col: list, times: int) -> list:
    """The whole column repeated ``times`` times (constant fan-out)."""
    return col * times


def expand_columns(cb: ColumnBatch, counts, new: list) -> ColumnBatch:
    """Attach ``new`` as a fresh column of ``cb``, repeating each parent
    row ``counts[i]`` times.

    BGP batches are always fully bound, so masks never appear here.  When
    no count exceeds 1 the expansion is really a *selection*: the counts
    list doubles as the selection vector and the parent columns are
    compressed in C (or shared outright when every count is 1).  Only a
    genuine fan-out pays for :func:`replicate`.
    """
    kept = len(new)
    if kept <= cb.length and (not kept or max(counts) <= 1):
        base = cb.take_flags(bytearray(counts), kept)
        return ColumnBatch(list(base.columns) + [new], None, kept)
    out = [replicate(col, counts) for col in cb.columns]
    out.append(new)
    return ColumnBatch(out, None, kept)


# ----------------------------------------------------------------------
# Predicate compilation (FILTER -> selection vector)
# ----------------------------------------------------------------------

def _const_uri(expression: Expression):
    """The IRI term of a constant operand, else ``None``."""
    if type(expression) is ConstExpr and isinstance(expression.term, URIRef):
        return expression.term
    return None


def _var_const_sides(node: CompareExpr):
    """Normalize ``?x <op> <iri>`` / ``<iri> <op> ?x`` to (var, term)."""
    if type(node.left) is VarExpr:
        term = _const_uri(node.right)
        if term is not None:
            return node.left.name, term
    if type(node.right) is VarExpr:
        term = _const_uri(node.left)
        if term is not None:
            return node.right.name, term
    return None


def predicate_compilable(condition: Expression) -> bool:
    """Static (dictionary-free) check mirroring :func:`compile_predicate`.

    True when the condition is inside the id-comparison subset, i.e. the
    vectorized filter will run column-at-a-time instead of falling back
    to row view.  Used by the planner's ``vectorized`` annotation."""
    t = type(condition)
    if t is CompareExpr:
        return condition.op in ("=", "!=") \
            and _var_const_sides(condition) is not None
    if t is InExpr:
        return type(condition.operand) is VarExpr and all(
            _const_uri(option) is not None for option in condition.options)
    if t is FunctionExpr:
        return condition.name == "bound" and len(condition.args) == 1 \
            and type(condition.args[0]) is VarExpr
    if t is NotExpr:
        inner = condition.operand
        return type(inner) is FunctionExpr and inner.name == "bound" \
            and len(inner.args) == 1 and type(inner.args[0]) is VarExpr
    if t in (AndExpr, OrExpr):
        return predicate_compilable(condition.left) \
            and predicate_compilable(condition.right)
    return False


def compile_predicate(condition: Expression, index: Dict[str, int],
                      dictionary) -> Optional[Callable]:
    """Compile a FILTER condition into ``pred(batch) -> (flags, kept)``.

    ``flags`` is a ``bytearray`` selection vector over the
    :class:`~.solution.ColumnBatch` (byte ``1`` = row survives), ``kept``
    the number of survivors.  Returns ``None`` when the condition is
    outside the id-comparison subset — the caller then filters through
    the row-view path.

    A flag is set only when the condition evaluates to *true with no
    error* for that row, which is exactly the set FILTER keeps: false and
    error rows are dropped alike, so the compiled form never needs to
    distinguish them.
    """
    lookup = dictionary.lookup
    t = type(condition)

    if t is CompareExpr:
        sides = _var_const_sides(condition)
        if sides is None or condition.op not in ("=", "!="):
            return None
        name, term = sides
        pos = index.get(name)
        cid = lookup(term)  # None: the IRI names no term in this graph
        if condition.op == "=":
            if pos is None or cid is None:
                # Unbound-in-schema or unknown constant: `=` can never
                # hold (an error or a false comparison drops the row).
                return _none_pass()
            return _scan_eq(pos, cid)
        if pos is None:
            return _none_pass()  # unbound: comparison errors, row dropped
        return _scan_ne(pos, cid)

    if t is InExpr:
        if type(condition.operand) is not VarExpr:
            return None
        terms = []
        for option in condition.options:
            term = _const_uri(option)
            if term is None:
                return None
            terms.append(term)
        pos = index.get(condition.operand.name)
        if pos is None:
            return _none_pass()  # unbound operand always errors
        ids = {tid for tid in (lookup(term) for term in terms)
               if tid is not None}
        if condition.negated:
            return _scan_not_in(pos, ids)
        if not ids:
            return _none_pass()
        return _scan_in(pos, ids)

    if t is FunctionExpr:
        if condition.name != "bound" or len(condition.args) != 1 \
                or type(condition.args[0]) is not VarExpr:
            return None
        return _scan_bound(index.get(condition.args[0].name), False)

    if t is NotExpr:
        inner = condition.operand
        if type(inner) is FunctionExpr and inner.name == "bound" \
                and len(inner.args) == 1 and type(inner.args[0]) is VarExpr:
            return _scan_bound(index.get(inner.args[0].name), True)
        return None

    if t in (AndExpr, OrExpr):
        left = compile_predicate(condition.left, index, dictionary)
        if left is None:
            return None
        right = compile_predicate(condition.right, index, dictionary)
        if right is None:
            return None
        # With flags meaning "true and error-free", SPARQL's
        # error-tolerant && and || reduce to bitwise AND/OR: a FILTER
        # keeps a row iff the combination is true, which requires both
        # (either) operand flags set.
        return _combine(left, right, t is AndExpr)

    return None


def _none_pass():
    def pred(batch):
        return bytearray(len(batch)), 0
    return pred


def _scan_eq(pos: int, cid: int):
    def pred(batch):
        flags = bytearray(len(batch))
        kept = 0
        i = 0
        for tid in batch.columns[pos]:
            if tid == cid:
                flags[i] = 1
                kept += 1
            i += 1
        # Null cells hold the -1 sentinel and can never equal a real id.
        return flags, kept
    return pred


def _scan_ne(pos: int, cid: Optional[int]):
    # cid None (IRI unknown to the dictionary): every *bound* value
    # differs from it, and IRI != is total, so bound-ness alone decides.
    def pred(batch):
        n = len(batch)
        col = batch.columns[pos]
        mask = batch.mask(pos)
        flags = bytearray(n)
        kept = 0
        if cid is None:
            if mask is None:
                return bytearray(b"\x01" * n), n
            for i, null in enumerate(mask):
                if not null:
                    flags[i] = 1
                    kept += 1
            return flags, kept
        i = 0
        for tid in col:
            if tid != cid:
                flags[i] = 1
                kept += 1
            i += 1
        if mask is not None:
            for i, null in enumerate(mask):
                if null and flags[i]:
                    flags[i] = 0
                    kept -= 1
        return flags, kept
    return pred


def _scan_in(pos: int, ids: set):
    def pred(batch):
        flags = bytearray(len(batch))
        kept = 0
        i = 0
        for tid in batch.columns[pos]:
            if tid in ids:
                flags[i] = 1
                kept += 1
            i += 1
        return flags, kept
    return pred


def _scan_not_in(pos: int, ids: set):
    def pred(batch):
        n = len(batch)
        col = batch.columns[pos]
        mask = batch.mask(pos)
        flags = bytearray(n)
        kept = 0
        i = 0
        for tid in col:
            if tid not in ids:
                flags[i] = 1
                kept += 1
            i += 1
        if mask is not None:
            for i, null in enumerate(mask):
                if null and flags[i]:
                    flags[i] = 0
                    kept -= 1
        return flags, kept
    return pred


def _scan_bound(pos: Optional[int], negate: bool):
    def pred(batch):
        n = len(batch)
        if pos is None:
            bound_flags = bytearray(n)  # variable absent: never bound
        else:
            mask = batch.mask(pos)
            if mask is None:
                bound_flags = bytearray(b"\x01" * n)
            else:
                bound_flags = bytearray(0 if null else 1 for null in mask)
        if negate:
            bound_flags = bytearray(0 if f else 1 for f in bound_flags)
        return bound_flags, sum(bound_flags)
    return pred


def _combine(left: Callable, right: Callable, conjunction: bool):
    def pred(batch):
        lflags, lkept = left(batch)
        if conjunction and not lkept:
            return lflags, 0
        rflags, _ = right(batch)
        kept = 0
        if conjunction:
            for i, f in enumerate(lflags):
                if f and rflags[i]:
                    kept += 1
                else:
                    lflags[i] = 0
        else:
            for i, f in enumerate(rflags):
                if f:
                    lflags[i] = 1
            kept = sum(lflags)
        return lflags, kept
    return pred
