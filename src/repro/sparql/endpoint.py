"""A simulated SPARQL-protocol endpoint.

Section 4.3 of the paper explains why RDFFrames paginates results when it
talks to an endpoint over HTTP: the endpoint only returns the first chunk
of a result (its size capped by server configuration), and the client must
request the remainder chunk by chunk; endpoints also impose time budgets.

This module reproduces that contract in-process so the client-side
pagination machinery is exercised for real: an :class:`Endpoint` caps every
response at ``max_rows`` rows and reports whether more are available; the
client re-requests with increasing offsets.  A per-query ``timeout``
simulates endpoint time budgets.
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, Optional, Tuple

from .engine import Engine, QueryTimeout
from .results import ResultSet, ResultStream


class EndpointError(RuntimeError):
    """A protocol-level endpoint failure."""


class EndpointResponse:
    """One page of results, mirroring an HTTP response.

    ``payload`` is the page serialized in the W3C SPARQL 1.1 JSON results
    format (what a real endpoint sends on the wire); ``result`` keeps the
    in-memory page for in-process convenience.  Clients simulating HTTP
    should read ``payload`` and decode it, paying the real parse cost.
    """

    def __init__(self, result: ResultSet, offset: int, total_available: bool,
                 has_more: bool, payload: str = None):
        self.result = result
        self.offset = offset
        self.has_more = has_more
        self.total_available = total_available
        self.payload = payload

    def __repr__(self):
        return "EndpointResponse(%d rows at %d, has_more=%s)" % (
            len(self.result), self.offset, self.has_more)


class Endpoint:
    """A SPARQL endpoint façade over an :class:`Engine`.

    Parameters
    ----------
    engine:
        The backing engine.
    max_rows:
        The server-configured response cap (Virtuoso's ``ResultSetMaxRows``).
    timeout:
        Per-query execution budget in seconds; exceeded -> :class:`QueryTimeout`.
    """

    def __init__(self, engine: Engine, max_rows: int = 10000,
                 timeout: Optional[float] = None):
        if max_rows <= 0:
            raise ValueError("max_rows must be positive")
        self.engine = engine
        self.max_rows = max_rows
        self.timeout = timeout
        self.requests_served = 0
        # A lazy cursor is kept per query text so pagination neither
        # re-executes the query nor materializes rows no client asked for:
        # serving the page at ``offset`` pulls at most ``offset + page``
        # rows from the engine's streaming executor, and rows already
        # pulled for earlier pages are served from the cursor's buffer
        # (mirrors endpoint-side cursors/result caches).
        self._cache: Dict[str, ResultStream] = {}

    def request(self, query_text: str, offset: int = 0,
                limit: Optional[int] = None) -> EndpointResponse:
        """Serve one page of a query's results.

        ``limit`` can lower (never raise) the per-response row cap.
        """
        self.requests_served += 1
        key = hashlib.sha256(query_text.encode()).hexdigest()
        cursor = self._cache.get(key)
        if cursor is None:
            cursor = self.engine.stream(query_text, timeout=self.timeout)
            self._cache[key] = cursor
        elif self.timeout is not None:
            # Each request gets a fresh evaluation budget: the timeout
            # bounds this page's pull, not the cursor's wall-clock
            # lifetime (client think-time between pages is free).
            cursor.arm_deadline(self.timeout)
        page_size = self.max_rows if limit is None else min(limit, self.max_rows)
        try:
            page = cursor.page(offset, page_size)
            has_more = cursor.has_more(offset + len(page))
        except Exception:
            # A failed pull (timeout, row budget) kills the underlying
            # generator: drop the cursor so the next request re-executes
            # instead of silently serving a truncated/empty result.
            self._cache.pop(key, None)
            raise
        from .json_results import encode_results
        payload = encode_results(page)
        return EndpointResponse(page, offset, True, has_more, payload=payload)

    def clear_cache(self):
        self._cache.clear()
