"""A simulated SPARQL-protocol endpoint.

Section 4.3 of the paper explains why RDFFrames paginates results when it
talks to an endpoint over HTTP: the endpoint only returns the first chunk
of a result (its size capped by server configuration), and the client must
request the remainder chunk by chunk; endpoints also impose time budgets.

This module reproduces that contract in-process so the client-side
pagination machinery is exercised for real: an :class:`Endpoint` caps every
response at ``max_rows`` rows and reports whether more are available; the
client re-requests with increasing offsets.  A per-query ``timeout``
simulates endpoint time budgets.

Failures cross the endpoint boundary *classified*: raw engine exceptions
(parse errors, deadline trips, row-budget trips) are mapped onto the
:mod:`~repro.sparql.errors` taxonomy — all :class:`EndpointError`
subtypes — so clients can retry transient failures and fail fast on
deterministic ones.  The original exception is chained as ``__cause__``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Optional, Tuple

from .engine import Engine
from .errors import EndpointError, classify_error
from .results import ResultSet, ResultStream

__all__ = ["Endpoint", "EndpointError", "EndpointResponse"]


class EndpointResponse:
    """One page of results, mirroring an HTTP response.

    ``payload`` is the page serialized in the W3C SPARQL 1.1 JSON results
    format (what a real endpoint sends on the wire); ``result`` keeps the
    in-memory page for in-process convenience.  Clients simulating HTTP
    should read ``payload`` and decode it, paying the real parse cost.
    """

    def __init__(self, result: ResultSet, offset: int, has_more: bool,
                 payload: Optional[str] = None):
        self.result = result
        self.offset = offset
        self.has_more = has_more
        self.payload = payload

    def __repr__(self):
        return "EndpointResponse(%d rows at %d, has_more=%s)" % (
            len(self.result), self.offset, self.has_more)


class Endpoint:
    """A SPARQL endpoint façade over an :class:`Engine`.

    Parameters
    ----------
    engine:
        The backing engine.
    max_rows:
        The server-configured response cap (Virtuoso's ``ResultSetMaxRows``).
    timeout:
        Per-query execution budget in seconds; exceeded -> a
        :class:`~repro.sparql.errors.TransientError` chained from the
        underlying :class:`QueryTimeout`.
    cursor_cache_size:
        How many per-query lazy cursors are kept (LRU).  Cursors are keyed
        on ``(query hash, dataset fingerprint)``, so a graph mutation
        makes every pre-mutation cursor unreachable instead of serving
        stale pages (mirroring the plan cache's invalidation).
    result_cache:
        An optional shared :class:`~repro.sparql.cache.ResultCache` —
        typically the same instance a :class:`~repro.sparql.server
        .QueryServer` over this engine uses, so HTTP-style paging and
        in-process submissions see one coherent store.  Complete results
        (an exhausted cursor) are inserted under the engine's normalized
        plan key; later requests for any page of the same query are
        sliced from the cached result without touching the evaluator.
        Failed pulls are never inserted (the cursor is dropped instead).
    """

    def __init__(self, engine: Engine, max_rows: int = 10000,
                 timeout: Optional[float] = None,
                 cursor_cache_size: int = 32,
                 result_cache=None, cache_tenant: str = "endpoint"):
        if max_rows <= 0:
            raise ValueError("max_rows must be positive")
        if cursor_cache_size < 0:
            raise ValueError("cursor_cache_size must be >= 0")
        self.engine = engine
        self.max_rows = max_rows
        self.timeout = timeout
        self.cursor_cache_size = cursor_cache_size
        self.result_cache = result_cache
        self.cache_tenant = cache_tenant
        self.requests_served = 0
        # A lazy cursor is kept per (query text, dataset state) so
        # pagination neither re-executes the query nor materializes rows
        # no client asked for: serving the page at ``offset`` pulls at
        # most ``offset + page`` rows from the engine's streaming
        # executor, and rows already pulled for earlier pages are served
        # from the cursor's buffer (mirrors endpoint-side cursors/result
        # caches).  Bounded LRU: unlike the unbounded per-query-text dict
        # it replaces, it cannot grow without limit under one-off query
        # texts, and the fingerprint in the key invalidates cursors that
        # pre-date a graph mutation.
        self._cache: "OrderedDict[Tuple[str, Tuple], ResultStream]" \
            = OrderedDict()
        self._lock = threading.Lock()

    def _cursor_key(self, query_text: str) -> Tuple[str, Tuple]:
        digest = hashlib.sha256(query_text.encode()).hexdigest()
        return (digest, self.engine._fingerprint())

    def request(self, query_text: str, offset: int = 0,
                limit: Optional[int] = None) -> EndpointResponse:
        """Serve one page of a query's results.

        ``limit`` can lower (never raise) the per-response row cap.
        Failures surface as classified :class:`EndpointError` subtypes
        with the raw engine exception chained as ``__cause__``.
        """
        self.requests_served += 1
        page_size = self.max_rows if limit is None \
            else min(limit, self.max_rows)
        result_cache = self.result_cache
        plan_key = None
        if result_cache is not None:
            # One coherent store with the in-process serving tier: the
            # key is the engine's normalized plan key (structure +
            # default graph + dataset fingerprint), so a hit here serves
            # pages the QueryServer populated, and vice versa.
            try:
                plan_key = self.engine.plan(query_text).key
            except Exception as exc:
                classified = classify_error(exc)
                if classified is exc:
                    raise
                raise classified from exc
            cached = result_cache.get(plan_key)
            if cached is not None:
                full = cached[0]
                page = full.slice(offset, page_size)
                from .json_results import encode_results
                return EndpointResponse(
                    page, offset, offset + len(page) < len(full),
                    payload=encode_results(page))
        key = self._cursor_key(query_text)
        try:
            with self._lock:
                cursor = self._cache.get(key)
                if cursor is not None:
                    self._cache.move_to_end(key)
            if cursor is None:
                cursor = self.engine.stream(query_text, timeout=self.timeout)
                with self._lock:
                    if self.cursor_cache_size > 0:
                        self._cache[key] = cursor
                        while len(self._cache) > self.cursor_cache_size:
                            self._cache.popitem(last=False)
            elif self.timeout is not None:
                # Each request gets a fresh evaluation budget: the timeout
                # bounds this page's pull, not the cursor's wall-clock
                # lifetime (client think-time between pages is free).
                cursor.arm_deadline(self.timeout)
            try:
                page = cursor.page(offset, page_size)
                has_more = cursor.has_more(offset + len(page))
            except Exception:
                # A failed pull (timeout, row budget, cancellation) kills
                # the underlying generator: drop the cursor so the next
                # request re-executes instead of silently serving a
                # truncated/empty result.
                with self._lock:
                    self._cache.pop(key, None)
                raise
        except Exception as exc:
            classified = classify_error(exc)
            if classified is exc:
                raise
            raise classified from exc
        if result_cache is not None and cursor.exhausted:
            # The cursor drained without a failed pull: its buffer is the
            # complete result, safe to share.  Partial cursors are never
            # inserted, and failed pulls dropped the cursor above.
            result_cache.put(
                plan_key, ResultSet(cursor.variables, list(cursor.rows)),
                tenant=self.cache_tenant)
        from .json_results import encode_results
        payload = encode_results(page)
        return EndpointResponse(page, offset, has_more, payload=payload)

    def clear_cache(self):
        with self._lock:
            self._cache.clear()

    @property
    def cached_cursors(self) -> int:
        """How many lazy cursors the endpoint currently holds."""
        return len(self._cache)
