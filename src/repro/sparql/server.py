"""A concurrent, fault-tolerant query-serving tier over a shared engine.

The ROADMAP's "millions of users" axis: real endpoints multiplex many
concurrent requests over shared read-only graphs, and survive overload by
*admission control* — refusing work they cannot finish — rather than by
wedging.  :class:`QueryServer` is that tier for this repo's engine:

* **Worker pool.**  ``workers`` threads pull tickets from a *bounded*
  queue.  Planning is serialized (the engine's plan cache is shared
  state); execution runs concurrently, one thread-confined
  :class:`~repro.sparql.evaluator.Evaluator` per request via
  :meth:`Engine.evaluate_plan`.
* **Admission control.**  A full queue or a tenant over its in-flight cap
  sheds the request *at submit time* with
  :class:`~repro.sparql.errors.ServerOverloaded` — fail fast, no queue
  camping.  Per-request ``timeout`` and ``max_rows`` budgets wire
  straight into the evaluator's existing deadline and row-budget valves.
* **Cooperative cancellation.**  Every ticket carries a
  :class:`~repro.sparql.errors.CancelToken` checked at the evaluator's
  deadline checkpoints: a client that gives up kills its query
  mid-operator, and the freed worker moves on.
* **Classified failures.**  Whatever goes wrong, the ticket resolves to
  an :class:`~repro.sparql.errors.EndpointError` subtype — never a
  silently truncated result.

>>> from repro.rdf import Graph, Literal, URIRef
>>> from repro.sparql import Engine
>>> from repro.sparql.server import QueryServer
>>> g = Graph("http://g")
>>> for i in range(6):
...     _ = g.add(URIRef("http://x/s%d" % i), URIRef("http://x/p"),
...               Literal(i))
>>> with QueryServer(Engine(g), workers=2) as server:
...     ticket = server.submit("SELECT ?s ?v WHERE { ?s <http://x/p> ?v }")
...     len(ticket.result())
6
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import Dict, List, Optional

from .cache import ResultCache
from .engine import Engine
from .errors import (CancelToken, QueryCancelled, ServerOverloaded,
                     classify_error)
from .evaluator import EvaluationStats
from .results import ResultSet

__all__ = ["QueryServer", "QueryTicket", "ServerStats"]

#: Ticket lifecycle states.
QUEUED, RUNNING, DONE, FAILED, CANCELLED = (
    "queued", "running", "done", "failed", "cancelled")


class QueryTicket:
    """One admitted request: a future over the query's outcome.

    ``result()`` blocks until the query resolves and either returns the
    :class:`ResultSet` or raises the classified failure.  ``cancel()``
    requests cooperative cancellation — a no-op once the query resolved.
    """

    def __init__(self, ticket_id: int, tenant: str, query: str):
        self.id = ticket_id
        self.tenant = tenant
        self.query = query
        self.state = QUEUED
        self.cancel_token = CancelToken()
        self.stats: Optional[EvaluationStats] = None
        self.elapsed: Optional[float] = None  # evaluator seconds
        self.waited: Optional[float] = None   # queue seconds before start
        #: How the result cache treated this request: ``"hit"`` (served
        #: from cache), ``"miss"`` (executed and inserted), ``"coalesced"``
        #: (shared a concurrent leader's execution), ``"bypass"``
        #: (``cache=False`` or no cache configured), or ``None`` while
        #: unresolved.
        self.cache_state: Optional[str] = None
        self._submitted = time.perf_counter()
        self._done = threading.Event()
        self._running = threading.Event()
        self._result: Optional[ResultSet] = None
        self._error: Optional[BaseException] = None

    # -- client side ---------------------------------------------------
    def cancel(self, reason: Optional[str] = None) -> None:
        """Request cancellation (cooperative; safe from any thread)."""
        self.cancel_token.cancel(reason)

    def done(self) -> bool:
        return self._done.is_set()

    def wait_running(self, timeout: Optional[float] = None) -> bool:
        """Block until a worker picked this ticket up (or it resolved
        without ever running, e.g. cancelled while queued).  An event,
        not a poll — tests use it instead of wall-clock sleeps."""
        return self._running.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> ResultSet:
        """Block until resolved; return the result or raise the failure."""
        if not self._done.wait(timeout):
            raise TimeoutError("ticket %d not resolved within %.3gs"
                               % (self.id, timeout))
        if self._error is not None:
            raise self._error
        return self._result

    def error(self, timeout: Optional[float] = None
              ) -> Optional[BaseException]:
        """Block until resolved; the classified failure, or None."""
        if not self._done.wait(timeout):
            raise TimeoutError("ticket %d not resolved within %.3gs"
                               % (self.id, timeout))
        return self._error

    # -- server side ---------------------------------------------------
    def _resolve(self, state: str, result: Optional[ResultSet] = None,
                 error: Optional[BaseException] = None) -> None:
        self.state = state
        self._result = result
        self._error = error
        self._running.set()  # resolved tickets never leave waiters parked
        self._done.set()

    def __repr__(self):
        return "QueryTicket(id=%d, tenant=%r, state=%r)" % (
            self.id, self.tenant, self.state)


class ServerStats:
    """Thread-safe serving counters (all monotone)."""

    FIELDS = ("submitted", "admitted", "shed", "completed", "failed",
              "cancelled", "cache_hits", "cache_misses", "coalesced",
              "cache_evictions")

    def __init__(self):
        self._lock = threading.Lock()
        for field in self.FIELDS:
            setattr(self, field, 0)
        self.errors_by_class: Dict[str, int] = {}
        self.peak_in_flight = 0

    def bump(self, field: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + by)

    def record_error(self, exc: BaseException) -> None:
        with self._lock:
            name = type(exc).__name__
            self.errors_by_class[name] = self.errors_by_class.get(name, 0) + 1

    def record_in_flight(self, now: int) -> None:
        with self._lock:
            if now > self.peak_in_flight:
                self.peak_in_flight = now

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            out = {field: getattr(self, field) for field in self.FIELDS}
            out["peak_in_flight"] = self.peak_in_flight
            out["errors_by_class"] = dict(self.errors_by_class)
            return out

    def __repr__(self):
        return "ServerStats(%r)" % self.as_dict()


class QueryServer:
    """A threaded query server multiplexing one shared read-only engine.

    Parameters
    ----------
    engine:
        The shared engine.  Its graphs are treated as read-only for the
        server's lifetime; the term dictionary and lazy index structures
        are safe under concurrent readers (build-then-publish + interning
        lock).
    workers:
        Executor threads.
    queue_size:
        Bound on queued (admitted but not yet running) requests; a full
        queue sheds with :class:`ServerOverloaded`.
    max_inflight_per_tenant:
        Per-tenant cap on queued+running requests — one noisy tenant
        cannot occupy the whole queue.  ``None`` disables the cap.
    default_timeout / default_max_rows:
        Per-request budget defaults, overridable per ``submit`` call,
        wired to the evaluator's deadline and row-budget valves.
    default_graph_uri:
        Passed through to plan/execute for every request.
    result_cache:
        An optional :class:`~repro.sparql.cache.ResultCache` shared by
        every request (and, if desired, by an :class:`Endpoint` over the
        same engine).  When present, ``submit``'s ``cache`` knob decides
        per request whether the cache is consulted; hits skip the
        evaluator entirely and concurrent identical submissions coalesce
        onto a single execution.
    """

    def __init__(self, engine: Engine, workers: int = 4,
                 queue_size: int = 16,
                 max_inflight_per_tenant: Optional[int] = None,
                 default_timeout: Optional[float] = None,
                 default_max_rows: Optional[int] = None,
                 default_graph_uri: Optional[str] = None,
                 result_cache: Optional[ResultCache] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.engine = engine
        self.default_timeout = default_timeout
        self.default_max_rows = default_max_rows
        self.default_graph_uri = default_graph_uri
        self.max_inflight_per_tenant = max_inflight_per_tenant
        self.result_cache = result_cache
        self.stats = ServerStats()
        self._queue: "queue.Queue[Optional[tuple]]" = queue.Queue(
            maxsize=queue_size)
        # Planning mutates the engine's shared LRU plan cache; serialize
        # it.  Execution (the expensive part) runs outside the lock.
        self._plan_lock = threading.Lock()
        self._admission_lock = threading.Lock()
        self._idle = threading.Condition(self._admission_lock)
        self._inflight_by_tenant: Dict[str, int] = {}
        self._ids = itertools.count(1)
        self._closed = False
        self._workers: List[threading.Thread] = []
        for i in range(workers):
            thread = threading.Thread(target=self._worker_loop,
                                      name="query-server-%d" % i,
                                      daemon=True)
            thread.start()
            self._workers.append(thread)

    # -- submission ----------------------------------------------------
    def submit(self, query: str, tenant: str = "anonymous",
               timeout: Optional[float] = None,
               max_rows: Optional[int] = None,
               cache: object = "auto") -> QueryTicket:
        """Admit a query, returning a :class:`QueryTicket` future.

        Raises :class:`ServerOverloaded` immediately — never blocks —
        when the request queue is full or the tenant is at its in-flight
        cap; a shed request consumes no evaluator time at all.

        ``cache`` controls the result cache for *this* request (a no-op
        when the server has none): ``'auto'`` consults it and inserts
        results subject to the cache's size policy; ``True`` additionally
        forces insertion past the per-entry byte cap; ``False`` bypasses
        the cache entirely — the request always executes and its result
        is never stored.  Cached and coalesced replies share the
        producing execution's result and stats; a request that needs
        strict per-request ``max_rows`` enforcement is served from cache
        only when the cached result fits its budget (otherwise it
        executes and trips the valve exactly as an uncached one would).
        """
        if cache not in (True, False, "auto"):
            raise ValueError("cache must be True, False or 'auto', got %r"
                             % (cache,))
        if self._closed:
            raise ServerOverloaded("server is shut down")
        self.stats.bump("submitted")
        with self._admission_lock:
            inflight = self._inflight_by_tenant.get(tenant, 0)
            cap = self.max_inflight_per_tenant
            if cap is not None and inflight >= cap:
                self.stats.bump("shed")
                raise ServerOverloaded(
                    "tenant %r already has %d requests in flight (cap %d)"
                    % (tenant, inflight, cap))
            self._inflight_by_tenant[tenant] = inflight + 1
            self.stats.record_in_flight(
                sum(self._inflight_by_tenant.values()))
        ticket = QueryTicket(next(self._ids), tenant, query)
        budget_timeout = self.default_timeout if timeout is None else timeout
        budget_rows = self.default_max_rows if max_rows is None else max_rows
        try:
            self._queue.put_nowait(
                (ticket, budget_timeout, budget_rows, cache))
        except queue.Full:
            self._release_tenant(tenant)
            self.stats.bump("shed")
            raise ServerOverloaded(
                "request queue full (%d queued)" % self._queue.maxsize) \
                from None
        self.stats.bump("admitted")
        return ticket

    def execute(self, query: str, tenant: str = "anonymous",
                timeout: Optional[float] = None,
                max_rows: Optional[int] = None,
                cache: object = "auto") -> ResultSet:
        """Synchronous convenience: submit and wait for the result."""
        return self.submit(query, tenant=tenant, timeout=timeout,
                           max_rows=max_rows, cache=cache).result()

    def _release_tenant(self, tenant: str) -> None:
        with self._admission_lock:
            remaining = self._inflight_by_tenant.get(tenant, 1) - 1
            if remaining <= 0:
                self._inflight_by_tenant.pop(tenant, None)
            else:
                self._inflight_by_tenant[tenant] = remaining
            self._idle.notify_all()

    @property
    def in_flight(self) -> int:
        """Currently admitted-and-unresolved requests across tenants."""
        with self._admission_lock:
            return sum(self._inflight_by_tenant.values())

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no request is admitted-and-unresolved.

        Event-driven (a condition notified as tenants drain), so tests
        and drain logic need no wall-clock polling loops.  Returns
        ``False`` on timeout."""
        with self._idle:
            return self._idle.wait_for(
                lambda: not self._inflight_by_tenant, timeout)

    # -- execution -----------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:  # shutdown sentinel
                self._queue.task_done()
                return
            ticket, budget_timeout, budget_rows, cache_mode = item
            try:
                self._run_ticket(ticket, budget_timeout, budget_rows,
                                 cache_mode)
            finally:
                self._release_tenant(ticket.tenant)
                self._queue.task_done()

    def _run_ticket(self, ticket: QueryTicket,
                    budget_timeout: Optional[float],
                    budget_rows: Optional[int],
                    cache_mode: object = "auto") -> None:
        ticket.waited = time.perf_counter() - ticket._submitted
        if ticket.cancel_token.cancelled:
            # Cancelled while queued: zero evaluator time spent.
            ticket.stats = EvaluationStats()
            self.stats.bump("cancelled")
            ticket._resolve(CANCELLED, error=QueryCancelled(
                "query cancelled while queued"))
            return
        ticket.state = RUNNING
        ticket._running.set()
        try:
            with self._plan_lock:
                plan = self.engine.plan(ticket.query,
                                        self.default_graph_uri)
        except Exception as exc:  # noqa: BLE001 — classified below
            self._fail(ticket, exc)
            return
        cache = self.result_cache
        if cache is None or cache_mode is False:
            ticket.cache_state = "bypass"
            self._execute_plain(ticket, plan, budget_timeout, budget_rows)
            return
        key = plan.key
        while True:
            cached = cache.get(key)
            if cached is not None:
                result, stats = cached
                if budget_rows is not None and len(result) > budget_rows:
                    # The cached result would never have fit this
                    # request's row budget: execute so the valve trips
                    # exactly as it would uncached.
                    ticket.cache_state = "bypass"
                    self._execute_plain(ticket, plan, budget_timeout,
                                        budget_rows)
                    return
                ticket.cache_state = "hit"
                ticket.stats = stats
                ticket.elapsed = 0.0
                self.stats.bump("cache_hits")
                self.stats.bump("completed")
                ticket._resolve(DONE, result=result)
                return
            is_leader, flight = cache.join_flight(key)
            if is_leader:
                self._lead_flight(ticket, plan, key, flight,
                                  budget_timeout, budget_rows, cache_mode)
                return
            # Follower: park until the leader resolves or aborts.  The
            # flight only exists while a leader worker is executing, so
            # someone is always making progress — no deadlock.
            flight.wait()
            if ticket.cancel_token.cancelled:
                err = QueryCancelled("query cancelled while coalesced")
                self.stats.record_error(err)
                self.stats.bump("cancelled")
                ticket._resolve(CANCELLED, error=err)
                return
            if flight.ok and (budget_rows is None
                              or len(flight.result) <= budget_rows):
                ticket.cache_state = "coalesced"
                ticket.stats = flight.stats
                ticket.elapsed = 0.0
                self.stats.bump("coalesced")
                self.stats.bump("completed")
                ticket._resolve(DONE, result=flight.result)
                return
            # Leader aborted (cancelled/failed) or the shared result
            # busts this follower's row budget: loop — serve from cache,
            # coalesce behind a new leader, or become one ourselves.

    def _lead_flight(self, ticket: QueryTicket, plan, key: str, flight,
                     budget_timeout: Optional[float],
                     budget_rows: Optional[int],
                     cache_mode: object) -> None:
        """Execute as the single-flight leader; share or abort."""
        cache = self.result_cache
        self.stats.bump("cache_misses")
        resolved = False
        try:
            try:
                result, stats, elapsed = self.engine.evaluate_plan(
                    plan, self.default_graph_uri, timeout=budget_timeout,
                    cancel=ticket.cancel_token, max_rows=budget_rows)
            except Exception as exc:  # noqa: BLE001 — classified below
                # A failed execution is never inserted into the cache.
                self._fail(ticket, exc)
                return
            ticket.cache_state = "miss"
            evicted = cache.put(key, result, stats, tenant=ticket.tenant,
                                force=(cache_mode is True))
            if evicted:
                self.stats.bump("cache_evictions", evicted)
            cache.resolve_flight(key, flight, result, stats)
            resolved = True
            ticket.stats = stats
            ticket.elapsed = elapsed
            self.stats.bump("completed")
            ticket._resolve(DONE, result=result)
        finally:
            if not resolved:
                cache.abort_flight(key, flight)

    def _execute_plain(self, ticket: QueryTicket, plan,
                       budget_timeout: Optional[float],
                       budget_rows: Optional[int]) -> None:
        try:
            result, stats, elapsed = self.engine.evaluate_plan(
                plan, self.default_graph_uri, timeout=budget_timeout,
                cancel=ticket.cancel_token, max_rows=budget_rows)
        except Exception as exc:  # noqa: BLE001 — classified below
            self._fail(ticket, exc)
            return
        ticket.stats = stats
        ticket.elapsed = elapsed
        self.stats.bump("completed")
        ticket._resolve(DONE, result=result)

    def _fail(self, ticket: QueryTicket, exc: BaseException) -> None:
        """Classify and resolve a failed execution."""
        ticket.stats = getattr(exc, "evaluation_stats", None)
        classified = classify_error(exc)
        if classified is not exc:
            classified.__cause__ = exc
        self.stats.record_error(classified)
        if isinstance(classified, QueryCancelled):
            self.stats.bump("cancelled")
            ticket._resolve(CANCELLED, error=classified)
        else:
            self.stats.bump("failed")
            ticket._resolve(FAILED, error=classified)

    # -- lifecycle -----------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop admitting, then stop workers (after the queue drains)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put(None)
        if wait:
            for thread in self._workers:
                thread.join()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self):
        return "QueryServer(workers=%d, in_flight=%d, %r)" % (
            len(self._workers), self.in_flight, self.stats)
