"""Solution mappings and multisets — the semantic core of SPARQL evaluation.

Section 5.2 of the paper defines evaluation over *multisets of mappings*: a
mapping is a partial function from variables to RDF terms; two mappings are
compatible when they agree on every shared variable; joins merge compatible
mappings.  This module implements those definitions.

A mapping is represented as a plain ``dict`` from variable *name* (string,
without the ``?``) to an RDF term.  Unbound variables are simply absent from
the dict.  A multiset is a Python list of such dicts (duplicates preserved —
bag semantics).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..rdf.terms import Node

Mapping = Dict[str, Node]
Multiset = List[Mapping]


def compatible(mu1: Mapping, mu2: Mapping) -> bool:
    """True when the two mappings agree on all shared variables."""
    if len(mu2) < len(mu1):
        mu1, mu2 = mu2, mu1
    for var, value in mu1.items():
        other = mu2.get(var)
        if other is not None and other != value:
            return False
    return True


def merge(mu1: Mapping, mu2: Mapping) -> Mapping:
    """The union of two compatible mappings (mu2 extends mu1)."""
    merged = dict(mu1)
    merged.update(mu2)
    return merged


def _always_bound(solutions: Multiset, candidates: Sequence[str]) -> List[str]:
    """The subset of ``candidates`` bound in every mapping of the multiset."""
    bound = list(candidates)
    for mu in solutions:
        bound = [v for v in bound if v in mu]
        if not bound:
            break
    return bound


def _agree(mu1: Mapping, mu2: Mapping, variables: Sequence[str]) -> bool:
    for var in variables:
        v1 = mu1.get(var)
        if v1 is None:
            continue
        v2 = mu2.get(var)
        if v2 is not None and v1 != v2:
            return False
    return True


def hash_join(left: Multiset, right: Multiset,
              common: Sequence[str]) -> Multiset:
    """Join two multisets of mappings on their shared variables.

    ``common`` is the set of variables that occur in *both* operands'
    in-scope variables.  Variables in ``common`` that are unbound in a
    particular mapping still join (SPARQL compatibility).  The join hashes
    on the shared variables that are bound in *every* row of both sides
    (typically the entity keys) and verifies the remaining shared variables
    within each bucket — avoiding the quadratic blow-up a naive
    compatibility join suffers on union/optional results whose shared
    variables are sparsely bound.
    """
    if not left or not right:
        return []
    common = list(common)
    if not common:
        return [merge(l, r) for l in left for r in right]
    if len(right) < len(left):
        # Build the hash table on the smaller side.
        left, right = right, left

    keys = _always_bound(right, _always_bound(left, common))
    residual = [v for v in common if v not in keys]
    if not keys:
        return _loose_join(left, right, common)

    index: Dict[Tuple, List[Mapping]] = {}
    for mu in left:
        index.setdefault(tuple(mu[v] for v in keys), []).append(mu)

    out: Multiset = []
    for mu in right:
        bucket = index.get(tuple(mu[v] for v in keys))
        if not bucket:
            continue
        if residual:
            for other in bucket:
                if _agree(mu, other, residual):
                    out.append(merge(other, mu))
        else:
            for other in bucket:
                out.append(merge(other, mu))
    return out


def _loose_join(left: Multiset, right: Multiset,
                common: Sequence[str]) -> Multiset:
    """Fallback when no shared variable is universally bound: partition on
    fully-bound keys and nested-loop the rest."""
    index: Dict[Tuple, List[Mapping]] = {}
    loose: List[Mapping] = []
    for mu in left:
        key = tuple(mu.get(v) for v in common)
        if None in key:
            loose.append(mu)
        else:
            index.setdefault(key, []).append(mu)
    out: Multiset = []
    for mu in right:
        key = tuple(mu.get(v) for v in common)
        if None in key:
            for other in left:
                if compatible(mu, other):
                    out.append(merge(other, mu))
            continue
        for other in index.get(key, ()):
            out.append(merge(other, mu))
        for other in loose:
            if compatible(mu, other):
                out.append(merge(other, mu))
    return out


def left_join(left: Multiset, right: Multiset,
              common: Sequence[str]) -> Multiset:
    """SPARQL LeftJoin: every left mapping survives; compatible right
    mappings extend it, otherwise the left mapping passes through alone.

    Uses the same always-bound hashing strategy as :func:`hash_join`.
    """
    if not right:
        return list(left)
    common = list(common)
    if not common:
        return [merge(l, r) for l in left for r in right]

    keys = _always_bound(right, _always_bound(left, common))
    residual = [v for v in common if v not in keys]
    if not keys:
        return _loose_left_join(left, right, common)

    index: Dict[Tuple, List[Mapping]] = {}
    for mu in right:
        index.setdefault(tuple(mu[v] for v in keys), []).append(mu)

    out: Multiset = []
    for mu in left:
        matched = False
        bucket = index.get(tuple(mu[v] for v in keys))
        if bucket:
            for other in bucket:
                if not residual or _agree(mu, other, residual):
                    out.append(merge(mu, other))
                    matched = True
        if not matched:
            out.append(mu)
    return out


def _loose_left_join(left: Multiset, right: Multiset,
                     common: Sequence[str]) -> Multiset:
    index: Dict[Tuple, List[Mapping]] = {}
    loose: List[Mapping] = []
    for mu in right:
        key = tuple(mu.get(v) for v in common)
        if None in key:
            loose.append(mu)
        else:
            index.setdefault(key, []).append(mu)
    out: Multiset = []
    for mu in left:
        key = tuple(mu.get(v) for v in common)
        matched = False
        if None in key:
            for other in right:
                if compatible(mu, other):
                    out.append(merge(mu, other))
                    matched = True
        else:
            for other in index.get(key, ()):
                out.append(merge(mu, other))
                matched = True
            for other in loose:
                if compatible(mu, other):
                    out.append(merge(mu, other))
                    matched = True
        if not matched:
            out.append(mu)
    return out


def minus(left: Multiset, right: Multiset,
          common: Sequence[str]) -> Multiset:
    """Mappings in ``left`` with no compatible mapping in ``right``
    sharing at least one bound variable — SPARQL MINUS semantics."""
    return [mu for mu in left
            if not any(compatible(mu, other)
                       and any(v in mu and v in other for v in common)
                       for other in right)]


def project(solutions: Multiset, variables: Sequence[str]) -> Multiset:
    """Restrict each mapping to the given variables (bag semantics kept)."""
    wanted = list(variables)
    out = []
    for mu in solutions:
        out.append({v: mu[v] for v in wanted if v in mu})
    return out


def distinct(solutions: Multiset,
             variables: Optional[Sequence[str]] = None) -> Multiset:
    """Collapse duplicate mappings to multiplicity one."""
    seen = set()
    out = []
    for mu in solutions:
        if variables is None:
            key = tuple(sorted(mu.items(), key=lambda kv: kv[0]))
        else:
            key = tuple(mu.get(v) for v in variables)
        if key not in seen:
            seen.add(key)
            out.append(mu)
    return out


def in_scope_variables(solutions: Multiset) -> List[str]:
    """All variables bound in at least one mapping, in first-seen order."""
    seen: List[str] = []
    seen_set = set()
    for mu in solutions:
        for var in mu:
            if var not in seen_set:
                seen_set.add(var)
                seen.append(var)
    return seen
