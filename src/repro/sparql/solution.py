"""Solution mappings and multisets — the semantic core of SPARQL evaluation.

Section 5.2 of the paper defines evaluation over *multisets of mappings*: a
mapping is a partial function from variables to RDF terms; two mappings are
compatible when they agree on every shared variable; joins merge compatible
mappings.  This module implements those definitions twice:

* The original *dict-based* representation: a mapping is a plain ``dict``
  from variable name (string, without the ``?``) to an RDF term; unbound
  variables are absent; a multiset is a list of such dicts (bag semantics).
  This representation is retained as the executable reference semantics —
  the :class:`~.reference.ReferenceEvaluator` runs on it, and the columnar
  operators are differential-tested against it.

* The *columnar* representation used by the production evaluator: a
  :class:`SolutionTable` with a fixed schema header (tuple of variable
  names) and positional rows of dense integer term ids (``None`` for
  unbound).  Joins hash ints instead of term objects, merges are tuple
  concatenation instead of dict copies, and terms are decoded only at the
  result boundary or inside expression evaluation (via :class:`RowView`).
"""

from __future__ import annotations

from itertools import compress
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from ..rdf.terms import Node

Mapping = Dict[str, Node]
Multiset = List[Mapping]

#: One columnar solution row: term ids positionally aligned with the
#: table's schema, ``None`` for unbound.
Row = Tuple[Optional[int], ...]


def compatible(mu1: Mapping, mu2: Mapping) -> bool:
    """True when the two mappings agree on all shared variables."""
    if len(mu2) < len(mu1):
        mu1, mu2 = mu2, mu1
    for var, value in mu1.items():
        other = mu2.get(var)
        if other is not None and other != value:
            return False
    return True


def merge(mu1: Mapping, mu2: Mapping) -> Mapping:
    """The union of two compatible mappings (mu2 extends mu1)."""
    merged = dict(mu1)
    merged.update(mu2)
    return merged


def _always_bound(solutions: Multiset, candidates: Sequence[str]) -> List[str]:
    """The subset of ``candidates`` bound in every mapping of the multiset."""
    bound = list(candidates)
    for mu in solutions:
        bound = [v for v in bound if v in mu]
        if not bound:
            break
    return bound


def _agree(mu1: Mapping, mu2: Mapping, variables: Sequence[str]) -> bool:
    for var in variables:
        v1 = mu1.get(var)
        if v1 is None:
            continue
        v2 = mu2.get(var)
        if v2 is not None and v1 != v2:
            return False
    return True


def hash_join(left: Multiset, right: Multiset,
              common: Sequence[str]) -> Multiset:
    """Join two multisets of mappings on their shared variables.

    ``common`` is the set of variables that occur in *both* operands'
    in-scope variables.  Variables in ``common`` that are unbound in a
    particular mapping still join (SPARQL compatibility).  The join hashes
    on the shared variables that are bound in *every* row of both sides
    (typically the entity keys) and verifies the remaining shared variables
    within each bucket — avoiding the quadratic blow-up a naive
    compatibility join suffers on union/optional results whose shared
    variables are sparsely bound.
    """
    if not left or not right:
        return []
    common = list(common)
    if not common:
        return [merge(l, r) for l in left for r in right]
    if len(right) < len(left):
        # Build the hash table on the smaller side.
        left, right = right, left

    keys = _always_bound(right, _always_bound(left, common))
    residual = [v for v in common if v not in keys]
    if not keys:
        return _loose_join(left, right, common)

    index: Dict[Tuple, List[Mapping]] = {}
    for mu in left:
        index.setdefault(tuple(mu[v] for v in keys), []).append(mu)

    out: Multiset = []
    for mu in right:
        bucket = index.get(tuple(mu[v] for v in keys))
        if not bucket:
            continue
        if residual:
            for other in bucket:
                if _agree(mu, other, residual):
                    out.append(merge(other, mu))
        else:
            for other in bucket:
                out.append(merge(other, mu))
    return out


def _loose_join(left: Multiset, right: Multiset,
                common: Sequence[str]) -> Multiset:
    """Fallback when no shared variable is universally bound: partition on
    fully-bound keys and nested-loop the rest."""
    index: Dict[Tuple, List[Mapping]] = {}
    loose: List[Mapping] = []
    for mu in left:
        key = tuple(mu.get(v) for v in common)
        if None in key:
            loose.append(mu)
        else:
            index.setdefault(key, []).append(mu)
    out: Multiset = []
    for mu in right:
        key = tuple(mu.get(v) for v in common)
        if None in key:
            for other in left:
                if compatible(mu, other):
                    out.append(merge(other, mu))
            continue
        for other in index.get(key, ()):
            out.append(merge(other, mu))
        for other in loose:
            if compatible(mu, other):
                out.append(merge(other, mu))
    return out


def left_join(left: Multiset, right: Multiset,
              common: Sequence[str]) -> Multiset:
    """SPARQL LeftJoin: every left mapping survives; compatible right
    mappings extend it, otherwise the left mapping passes through alone.

    Uses the same always-bound hashing strategy as :func:`hash_join`.
    """
    if not right:
        return list(left)
    common = list(common)
    if not common:
        return [merge(l, r) for l in left for r in right]

    keys = _always_bound(right, _always_bound(left, common))
    residual = [v for v in common if v not in keys]
    if not keys:
        return _loose_left_join(left, right, common)

    index: Dict[Tuple, List[Mapping]] = {}
    for mu in right:
        index.setdefault(tuple(mu[v] for v in keys), []).append(mu)

    out: Multiset = []
    for mu in left:
        matched = False
        bucket = index.get(tuple(mu[v] for v in keys))
        if bucket:
            for other in bucket:
                if not residual or _agree(mu, other, residual):
                    out.append(merge(mu, other))
                    matched = True
        if not matched:
            out.append(mu)
    return out


def _loose_left_join(left: Multiset, right: Multiset,
                     common: Sequence[str]) -> Multiset:
    index: Dict[Tuple, List[Mapping]] = {}
    loose: List[Mapping] = []
    for mu in right:
        key = tuple(mu.get(v) for v in common)
        if None in key:
            loose.append(mu)
        else:
            index.setdefault(key, []).append(mu)
    out: Multiset = []
    for mu in left:
        key = tuple(mu.get(v) for v in common)
        matched = False
        if None in key:
            for other in right:
                if compatible(mu, other):
                    out.append(merge(mu, other))
                    matched = True
        else:
            for other in index.get(key, ()):
                out.append(merge(mu, other))
                matched = True
            for other in loose:
                if compatible(mu, other):
                    out.append(merge(mu, other))
                    matched = True
        if not matched:
            out.append(mu)
    return out


def minus(left: Multiset, right: Multiset,
          common: Sequence[str]) -> Multiset:
    """Mappings in ``left`` with no compatible mapping in ``right``
    sharing at least one bound variable — SPARQL MINUS semantics."""
    return [mu for mu in left
            if not any(compatible(mu, other)
                       and any(v in mu and v in other for v in common)
                       for other in right)]


def project(solutions: Multiset, variables: Sequence[str]) -> Multiset:
    """Restrict each mapping to the given variables (bag semantics kept)."""
    wanted = list(variables)
    out = []
    for mu in solutions:
        out.append({v: mu[v] for v in wanted if v in mu})
    return out


def distinct(solutions: Multiset,
             variables: Optional[Sequence[str]] = None) -> Multiset:
    """Collapse duplicate mappings to multiplicity one."""
    seen = set()
    out = []
    for mu in solutions:
        if variables is None:
            key = tuple(sorted(mu.items(), key=lambda kv: kv[0]))
        else:
            key = tuple(mu.get(v) for v in variables)
        if key not in seen:
            seen.add(key)
            out.append(mu)
    return out


def in_scope_variables(solutions: Multiset) -> List[str]:
    """All variables bound in at least one mapping, in first-seen order."""
    seen: List[str] = []
    seen_set = set()
    for mu in solutions:
        for var in mu:
            if var not in seen_set:
                seen_set.add(var)
                seen.append(var)
    return seen


# ======================================================================
# Columnar solution tables (dictionary-encoded data plane)
# ======================================================================

class SolutionTable:
    """A multiset of solution mappings in columnar form.

    ``variables`` is the fixed schema header; ``rows`` is a list of
    positionally-aligned tuples of dense integer term ids (``None`` for
    unbound).  Duplicates are preserved (bag semantics).  Operators never
    mutate input rows, so tables can be shared (e.g. by the BGP cache).
    """

    __slots__ = ("variables", "index", "rows")

    def __init__(self, variables: Sequence[str],
                 rows: Optional[List[Row]] = None):
        self.variables: Tuple[str, ...] = tuple(variables)
        self.index: Dict[str, int] = {v: i for i, v in
                                      enumerate(self.variables)}
        self.rows: List[Row] = rows if rows is not None else []

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self):
        return "SolutionTable(%d rows, vars=%s)" % (
            len(self.rows), list(self.variables))

    @staticmethod
    def unit() -> "SolutionTable":
        """The join identity: one empty solution."""
        return SolutionTable((), [()])


class ColumnBatch:
    """One batch of solution rows in columnar form.

    ``columns`` holds one flat list of dense term ids per schema
    variable; an unbound cell stores the sentinel ``-1`` and is flagged in
    the column's null mask.  ``masks`` is ``None`` when no column has a
    null, otherwise a list with one entry per column: ``None`` (no nulls
    in that column) or a ``bytearray`` whose byte ``1`` marks a null row.
    Term ids are dense non-negative integers, so ``-1`` can never collide
    with a real binding.

    Columns are deliberately plain lists rather than ``array('q')``:
    the ids referenced by a column already exist as interned int objects
    in the graph indexes, so a list column is just shared pointers —
    selection (``itertools.compress``), slicing, flattening and
    counting all run at C speed without re-boxing.  A typed-array layout
    was measured here and lost 1.5-2.5x on exactly those kernels because
    every element read materializes a fresh int object.

    A ``ColumnBatch`` is interchangeable with a row-batch everywhere:
    iterating it (or indexing a row) yields the exact ``None``-restored
    id-tuples the row representation uses, so any operator that has no
    columnar fast path transparently falls back to row view.  Vectorized
    operators instead work on whole columns: selection vectors are
    applied with :meth:`take_flags`, projections with :meth:`take` (which
    shares column storage — columns are never mutated in place).
    """

    __slots__ = ("columns", "masks", "length")

    def __init__(self, columns: List[list],
                 masks: Optional[List[Optional[bytearray]]] = None,
                 length: Optional[int] = None):
        self.columns = columns
        self.masks = masks
        self.length = len(columns[0]) if length is None else length

    @classmethod
    def from_rows(cls, rows: Sequence[Row], width: int) -> "ColumnBatch":
        """Transpose a row batch (id-tuples, ``None`` for unbound)."""
        n = len(rows)
        if width == 0:
            return cls([], None, n)
        if n == 0:
            return cls([[] for _ in range(width)], None, 0)
        columns: List[list] = []
        masks: Optional[List[Optional[bytearray]]] = None
        for j, col in enumerate(zip(*rows)):
            col = list(col)
            if None in col:
                # The column has nulls: patch them to the sentinel and
                # record their positions in the mask.
                mask = bytearray(n)
                for i, tid in enumerate(col):
                    if tid is None:
                        mask[i] = 1
                        col[i] = -1
                if masks is None:
                    masks = [None] * width
                masks[j] = mask
            columns.append(col)
        return cls(columns, masks, n)

    def to_rows(self) -> List[Row]:
        """Transpose back to the row-tuple representation."""
        if not self.columns:
            return [()] * self.length
        masks = self.masks
        if masks is None:
            return list(zip(*self.columns))
        cols: List[Sequence] = []
        for col, mask in zip(self.columns, masks):
            if mask is None:
                cols.append(col)
            else:
                cols.append([None if null else tid
                             for tid, null in zip(col, mask)])
        return list(zip(*cols))

    def __len__(self) -> int:
        return self.length

    def __iter__(self):
        return iter(self.to_rows())

    def __getitem__(self, item):
        if isinstance(item, slice):
            masks = self.masks
            if masks is not None:
                masks = [None if m is None else m[item] for m in masks]
                if not any(masks):
                    masks = None
            start, stop, _ = item.indices(self.length)
            return ColumnBatch([col[item] for col in self.columns], masks,
                               max(0, stop - start))
        masks = self.masks
        if masks is None:
            return tuple(col[item] for col in self.columns)
        return tuple(None if m is not None and m[item] else col[item]
                     for col, m in zip(self.columns, masks))

    @property
    def width(self) -> int:
        return len(self.columns)

    def column(self, pos: int) -> list:
        return self.columns[pos]

    def mask(self, pos: int) -> Optional[bytearray]:
        return None if self.masks is None else self.masks[pos]

    def take(self, positions: Sequence[Optional[int]]) -> "ColumnBatch":
        """Project to the given column positions (``None`` produces an
        all-null column).  Shares column storage — no data is copied."""
        n = self.length
        columns: List[list] = []
        masks: Optional[List[Optional[bytearray]]] = None
        for j, p in enumerate(positions):
            if p is None:
                columns.append([-1] * n)
                if masks is None:
                    masks = [None] * len(positions)
                masks[j] = bytearray(b"\x01" * n)
            else:
                columns.append(self.columns[p])
                m = self.mask(p)
                if m is not None:
                    if masks is None:
                        masks = [None] * len(positions)
                    masks[j] = m
        return ColumnBatch(columns, masks, n)

    def take_flags(self, flags: bytearray, kept: int) -> "ColumnBatch":
        """Apply a selection vector: keep row ``i`` when ``flags[i]``."""
        if kept == self.length:
            return self
        columns = [list(compress(col, flags)) for col in self.columns]
        masks = self.masks
        if masks is not None:
            masks = [None if m is None else bytearray(compress(m, flags))
                     for m in masks]
            if not any(any(m) for m in masks if m is not None):
                masks = None
        return ColumnBatch(columns, masks, kept)

    def append_column(self, col: list,
                      mask: Optional[bytearray] = None) -> "ColumnBatch":
        """A new batch with one extra column (storage shared)."""
        columns = self.columns + [col]
        masks = self.masks
        if masks is not None or mask is not None:
            masks = ([None] * len(self.columns) if masks is None
                     else list(masks)) + [mask]
        return ColumnBatch(columns, masks, self.length)

    def __repr__(self):
        return "ColumnBatch(%d rows x %d cols)" % (self.length,
                                                   len(self.columns))


class TableStream:
    """A lazily-produced :class:`SolutionTable`: a fixed schema header plus
    an iterator of *batches* — row-tuple lists, or :class:`ColumnBatch`
    objects on the vectorized plane (operators accept either kind).

    This is the unit of the pipelined executor: operators hand each other
    ``TableStream`` objects and pull batches on demand, so a bounded
    consumer (``Slice``, ``TopK``) stops upstream row production simply by
    not pulling.  The schema is computed statically at stream-construction
    time — no batch has to be pulled to know the columns.

    ``total_rows`` counts every row that has crossed this stream's batch
    boundary so far, maintained while batches are pulled — consumers that
    drain the stream (``to_table``, the result cursor) read the row count
    from here instead of re-measuring, which keeps it in lockstep with
    ``EvaluationStats.rows_pulled`` without a second pass.
    """

    __slots__ = ("variables", "index", "batches", "total_rows")

    def __init__(self, variables: Sequence[str], batches):
        self.variables: Tuple[str, ...] = tuple(variables)
        self.index: Dict[str, int] = {v: i for i, v in
                                      enumerate(self.variables)}
        self.total_rows = 0
        self.batches = self._count(batches)

    def _count(self, batches):
        try:
            for batch in batches:
                self.total_rows += len(batch)
                yield batch
        finally:
            # Propagate early-exit close() into the wrapped producer so
            # its cleanup (generator finalizers upstream) still runs.
            close = getattr(batches, "close", None)
            if close is not None:
                close()

    def rows(self):
        """Flatten the remaining batches into one row iterator."""
        for batch in self.batches:
            for row in batch:
                yield row

    def to_table(self) -> SolutionTable:
        """Drain the stream into a materialized table."""
        rows: List[Row] = []
        for batch in self.batches:
            if type(batch) is ColumnBatch:
                rows.extend(batch.to_rows())
            else:
                rows.extend(batch)
        return SolutionTable(self.variables, rows)

    def __repr__(self):
        return "TableStream(vars=%s)" % (list(self.variables),)


def batched(rows: Sequence[Row], cap: int):
    """Re-chunk a materialized row list into batches of at most ``cap``.

    Chunks are list slices (one shallow copy each); a list that already
    fits in one batch is yielded *as is* — consumers never mutate batches,
    so re-chunking a materialized table must not duplicate it."""
    if len(rows) <= cap:
        if rows:
            yield rows
        return
    for start in range(0, len(rows), cap):
        yield rows[start:start + cap]


def stream_distinct(batches, seen: Optional[set] = None):
    """Streaming dedup over an iterator of batches (row lists or
    :class:`ColumnBatch`).

    Yields each batch reduced to its first-seen rows, preserving order and
    pulling nothing beyond what the consumer asks for — the dedup behind
    both the executor's ``Distinct`` operator and
    :meth:`~repro.sparql.results.ResultSet.distinct`.  ``seen`` can be
    passed in to carry dedup state across several streams (e.g. paginated
    fetches); the key representation per row is identical for columnar
    and row batches — single-column rows dedup on the bare cell value,
    wider rows on the id-tuple — so one ``seen`` set is shared across
    batch kinds."""
    if seen is None:
        seen = set()
    add = seen.add
    for batch in batches:
        if type(batch) is ColumnBatch:
            if batch.width == 1:
                # Hot single-column shape: dedup on bare ids, no tuples,
                # and (unmasked) no selection vector either — the single
                # survivor column is built directly in one pass.
                mask = batch.mask(0)
                if mask is None:
                    fresh = []
                    append = fresh.append
                    for value in batch.columns[0]:
                        if value not in seen:
                            add(value)
                            append(value)
                    if fresh:
                        yield ColumnBatch([fresh], None, len(fresh))
                    continue
                cells = (None if null else tid
                         for tid, null in zip(batch.columns[0], mask))
                flags = bytearray(len(batch))
                kept = 0
                for i, value in enumerate(cells):
                    if value not in seen:
                        add(value)
                        flags[i] = 1
                        kept += 1
                if kept:
                    yield batch.take_flags(flags, kept)
                continue
            flags = bytearray(len(batch))
            kept = 0
            for i, row in enumerate(batch.to_rows()):
                if row not in seen:
                    add(row)
                    flags[i] = 1
                    kept += 1
            if kept:
                yield batch.take_flags(flags, kept)
            continue
        fresh = []
        append = fresh.append
        if batch and len(batch[0]) == 1:
            for row in batch:
                value = row[0]
                if value not in seen:
                    add(value)
                    append(row)
        else:
            for row in batch:
                if row not in seen:
                    add(row)
                    append(row)
        if fresh:
            yield fresh


class RowView:
    """A read-only dict-like view of one columnar row, decoding term ids
    lazily on access.  This is what expression evaluation sees: an unbound
    variable (``None`` cell or absent column) raises ``KeyError`` from
    ``[]``, exactly like the dict representation, so SPARQL error
    semantics are preserved without materializing a dict per row."""

    __slots__ = ("_index", "_row", "_decode")

    def __init__(self, index: Dict[str, int], row: Row,
                 decode: Callable[[int], Node]):
        self._index = index
        self._row = row
        self._decode = decode

    def __getitem__(self, name: str) -> Node:
        pos = self._index.get(name)
        if pos is None:
            raise KeyError(name)
        tid = self._row[pos]
        if tid is None:
            raise KeyError(name)
        return self._decode(tid)

    def __contains__(self, name: str) -> bool:
        pos = self._index.get(name)
        return pos is not None and self._row[pos] is not None

    def get(self, name: str, default=None):
        pos = self._index.get(name)
        if pos is None:
            return default
        tid = self._row[pos]
        if tid is None:
            return default
        return self._decode(tid)

    def keys(self):
        return [v for v, pos in self._index.items()
                if self._row[pos] is not None]

    def __iter__(self):
        return iter(self.keys())

    def __len__(self):
        return sum(1 for cell in self._row if cell is not None)


# -- schema plumbing ---------------------------------------------------

def _merge_plan(left: SolutionTable, right: SolutionTable):
    """Precompute the merged schema of a binary operator.

    Returns ``(out_vars, shared, right_only)`` where ``shared`` is a list
    of ``(left_pos, right_pos)`` pairs for variables in both schemas and
    ``right_only`` the right positions appended after the left columns.
    """
    shared: List[Tuple[int, int]] = []
    right_only: List[int] = []
    lindex = left.index
    for rpos, var in enumerate(right.variables):
        lpos = lindex.get(var)
        if lpos is None:
            right_only.append(rpos)
        else:
            shared.append((lpos, rpos))
    out_vars = left.variables + tuple(right.variables[rp]
                                      for rp in right_only)
    return out_vars, shared, right_only


def _merge_rows(lrow: Row, rrow: Row, shared, right_only) -> Row:
    """Union of two compatible rows in the merged schema."""
    if shared:
        merged = list(lrow)
        for lp, rp in shared:
            if merged[lp] is None:
                merged[lp] = rrow[rp]
        merged.extend(rrow[rp] for rp in right_only)
        return tuple(merged)
    return lrow + tuple(rrow[rp] for rp in right_only)


def _rows_compatible(lrow: Row, rrow: Row, shared) -> bool:
    for lp, rp in shared:
        a = lrow[lp]
        if a is None:
            continue
        b = rrow[rp]
        if b is not None and a != b:
            return False
    return True


def _always_bound_pairs(left_rows: List[Row], right_rows: List[Row],
                        shared) -> Tuple[list, list]:
    """Split shared column pairs into (always bound on both sides,
    residual).  Mirrors the dict implementation's ``_always_bound``."""
    keys = []
    residual = []
    for lp, rp in shared:
        if all(row[lp] is not None for row in left_rows) and \
                all(row[rp] is not None for row in right_rows):
            keys.append((lp, rp))
        else:
            residual.append((lp, rp))
    return keys, residual


# -- operators ---------------------------------------------------------

def table_join(left: SolutionTable, right: SolutionTable) -> SolutionTable:
    """Join two solution tables on their shared schema variables.

    Same strategy as :func:`hash_join`: hash on the shared columns bound in
    every row of both sides, verify residual shared columns within each
    bucket, and fall back to a fully-bound/loose partition when no shared
    column is universally bound.
    """
    out_vars, shared, right_only = _merge_plan(left, right)
    out = SolutionTable(out_vars)
    if not left.rows or not right.rows:
        return out
    if not shared:
        rows = out.rows
        for lrow in left.rows:
            for rrow in right.rows:
                rows.append(lrow + tuple(rrow[rp] for rp in right_only))
        return out

    keys, residual = _always_bound_pairs(left.rows, right.rows, shared)
    if not keys:
        _loose_table_join(left, right, shared, right_only, out)
        return out

    # Build the hash table on the smaller side, probe with the larger.
    build_left = len(left.rows) <= len(right.rows)
    if build_left:
        build_rows, probe_rows = left.rows, right.rows
        build_key = [lp for lp, _ in keys]
        probe_key = [rp for _, rp in keys]
    else:
        build_rows, probe_rows = right.rows, left.rows
        build_key = [rp for _, rp in keys]
        probe_key = [lp for lp, _ in keys]

    index: Dict = {}
    if len(build_key) == 1:
        # Scalar keys: no per-row tuple construction.
        bk, pk = build_key[0], probe_key[0]
        for row in build_rows:
            index.setdefault(row[bk], []).append(row)
        probe_keys = ((probe, probe[pk]) for probe in probe_rows)
    else:
        for row in build_rows:
            index.setdefault(tuple(row[p] for p in build_key), []).append(row)
        probe_keys = ((probe, tuple(probe[p] for p in probe_key))
                      for probe in probe_rows)

    rows = out.rows
    fast_merge = not residual  # keys + residual partition shared
    for probe, key in probe_keys:
        bucket = index.get(key)
        if not bucket:
            continue
        if fast_merge:
            # Every shared column is an always-bound key: the merged row is
            # the left row plus the right-only columns, no None filling.
            if build_left:
                extra = tuple([probe[rp] for rp in right_only])
                for other in bucket:
                    rows.append(other + extra)
            else:
                for other in bucket:
                    rows.append(probe + tuple([other[rp]
                                               for rp in right_only]))
            continue
        for other in bucket:
            if build_left:
                lrow, rrow = other, probe
            else:
                lrow, rrow = probe, other
            if not residual or _rows_compatible(lrow, rrow, residual):
                rows.append(_merge_rows(lrow, rrow, shared, right_only))
    return out


def _loose_table_join(left: SolutionTable, right: SolutionTable,
                      shared, right_only, out: SolutionTable) -> None:
    """Fallback when no shared column is universally bound: partition the
    left side on fully-bound keys and nested-loop the rest."""
    lkey = [lp for lp, _ in shared]
    rkey = [rp for _, rp in shared]
    index: Dict[Tuple, List[Row]] = {}
    loose: List[Row] = []
    for lrow in left.rows:
        key = tuple(lrow[p] for p in lkey)
        if None in key:
            loose.append(lrow)
        else:
            index.setdefault(key, []).append(lrow)
    rows = out.rows
    for rrow in right.rows:
        key = tuple(rrow[p] for p in rkey)
        if None in key:
            for lrow in left.rows:
                if _rows_compatible(lrow, rrow, shared):
                    rows.append(_merge_rows(lrow, rrow, shared, right_only))
            continue
        for lrow in index.get(key, ()):
            rows.append(_merge_rows(lrow, rrow, shared, right_only))
        for lrow in loose:
            if _rows_compatible(lrow, rrow, shared):
                rows.append(_merge_rows(lrow, rrow, shared, right_only))


def table_left_join(left: SolutionTable, right: SolutionTable,
                    accept: Optional[Callable[[Row], bool]] = None
                    ) -> SolutionTable:
    """SPARQL LeftJoin on solution tables: every left row survives;
    compatible right rows extend it, otherwise the left row passes through
    padded with ``None``.

    ``accept``, when given, is the LeftJoin *condition* evaluated on each
    merged candidate row (in the output schema): the extension only counts
    as a match when ``accept`` returns True.  Candidates are still found by
    hash-partitioning on the always-bound shared columns — the condition is
    evaluated only within buckets, never over the full cross product.
    """
    out_vars, shared, right_only = _merge_plan(left, right)
    out = SolutionTable(out_vars)
    rows = out.rows
    pad = (None,) * len(right_only)
    if not right.rows:
        for lrow in left.rows:
            rows.append(lrow + pad)
        return out
    if not shared:
        for lrow in left.rows:
            matched = False
            for rrow in right.rows:
                merged = lrow + tuple(rrow[rp] for rp in right_only)
                if accept is None or accept(merged):
                    rows.append(merged)
                    matched = True
            if not matched:
                rows.append(lrow + pad)
        return out

    keys, residual = _always_bound_pairs(left.rows, right.rows, shared)
    if not keys:
        _loose_table_left_join(left, right, shared, right_only, pad,
                               accept, out)
        return out

    lkey = [lp for lp, _ in keys]
    rkey = [rp for _, rp in keys]
    index: Dict = {}
    if len(keys) == 1:
        rk, lk = rkey[0], lkey[0]
        for rrow in right.rows:
            index.setdefault(rrow[rk], []).append(rrow)
        left_keys = ((lrow, lrow[lk]) for lrow in left.rows)
    else:
        for rrow in right.rows:
            index.setdefault(tuple(rrow[p] for p in rkey), []).append(rrow)
        left_keys = ((lrow, tuple(lrow[p] for p in lkey))
                     for lrow in left.rows)

    fast_merge = not residual and accept is None
    for lrow, key in left_keys:
        bucket = index.get(key)
        if bucket:
            if fast_merge:
                for rrow in bucket:
                    rows.append(lrow + tuple([rrow[rp]
                                              for rp in right_only]))
                continue
            matched = False
            for rrow in bucket:
                if residual and not _rows_compatible(lrow, rrow, residual):
                    continue
                merged = _merge_rows(lrow, rrow, shared, right_only)
                if accept is None or accept(merged):
                    rows.append(merged)
                    matched = True
            if matched:
                continue
        rows.append(lrow + pad)
    return out


def _loose_table_left_join(left: SolutionTable, right: SolutionTable,
                           shared, right_only, pad,
                           accept, out: SolutionTable) -> None:
    lkey = [lp for lp, _ in shared]
    rkey = [rp for _, rp in shared]
    index: Dict[Tuple, List[Row]] = {}
    loose: List[Row] = []
    for rrow in right.rows:
        key = tuple(rrow[p] for p in rkey)
        if None in key:
            loose.append(rrow)
        else:
            index.setdefault(key, []).append(rrow)
    rows = out.rows
    for lrow in left.rows:
        key = tuple(lrow[p] for p in lkey)
        matched = False
        if None in key:
            candidates: Iterable[Row] = right.rows
        else:
            candidates = list(index.get(key, ())) + loose
        for rrow in candidates:
            if not _rows_compatible(lrow, rrow, shared):
                continue
            merged = _merge_rows(lrow, rrow, shared, right_only)
            if accept is None or accept(merged):
                rows.append(merged)
                matched = True
        if not matched:
            rows.append(lrow + pad)


def table_minus(left: SolutionTable, right: SolutionTable) -> SolutionTable:
    """Rows of ``left`` with no compatible row in ``right`` sharing at
    least one *bound* variable — SPARQL MINUS semantics."""
    _, shared, _ = _merge_plan(left, right)
    if not shared or not right.rows:
        return SolutionTable(left.variables, list(left.rows))
    out = SolutionTable(left.variables)
    rows = out.rows
    for lrow in left.rows:
        excluded = False
        for rrow in right.rows:
            overlap = False
            compatible = True
            for lp, rp in shared:
                a = lrow[lp]
                b = rrow[rp]
                if a is None or b is None:
                    continue
                if a != b:
                    compatible = False
                    break
                overlap = True
            if compatible and overlap:
                excluded = True
                break
        if not excluded:
            rows.append(lrow)
    return out


def table_project(table: SolutionTable,
                  variables: Sequence[str]) -> SolutionTable:
    """Restrict the table to the given schema (bag semantics kept).
    Variables absent from the input schema become all-``None`` columns."""
    positions = [table.index.get(v) for v in variables]
    if None in positions:
        rows = [tuple([None if p is None else row[p] for p in positions])
                for row in table.rows]
    elif len(positions) == 1:
        p0 = positions[0]
        rows = [(row[p0],) for row in table.rows]
    else:
        rows = [tuple([row[p] for p in positions]) for row in table.rows]
    return SolutionTable(variables, rows)


def table_distinct(table: SolutionTable) -> SolutionTable:
    """Collapse duplicate rows to multiplicity one (the materialized face
    of :func:`stream_distinct`)."""
    rows: List[Row] = []
    for batch in stream_distinct(iter((table.rows,))):
        rows.extend(batch)
    return SolutionTable(table.variables, rows)


def table_union(left: SolutionTable, right: SolutionTable) -> SolutionTable:
    """Bag concatenation with schema alignment (SPARQL UNION)."""
    out_vars, _, right_only = _merge_plan(left, right)
    out = SolutionTable(out_vars)
    rows = out.rows
    pad = (None,) * len(right_only)
    for lrow in left.rows:
        rows.append(lrow + pad)
    rindex = right.index
    rmap = [rindex.get(v) for v in out_vars]
    for rrow in right.rows:
        rows.append(tuple(None if p is None else rrow[p] for p in rmap))
    return out


# -- conversion (tests / decode boundary) ------------------------------

def table_from_mappings(solutions: Multiset, dictionary,
                        variables: Optional[Sequence[str]] = None
                        ) -> SolutionTable:
    """Encode a dict-based multiset into a columnar table."""
    if variables is None:
        variables = in_scope_variables(solutions)
    encode = dictionary.encode
    rows = [tuple(encode(mu[v]) if v in mu else None for v in variables)
            for mu in solutions]
    return SolutionTable(variables, rows)


def table_to_mappings(table: SolutionTable, dictionary) -> Multiset:
    """Decode a columnar table back into a dict-based multiset."""
    decode = dictionary.decode
    out: Multiset = []
    variables = table.variables
    for row in table.rows:
        out.append({v: decode(tid) for v, tid in zip(variables, row)
                    if tid is not None})
    return out
