"""Composable, deterministic fault injection for the endpoint tier.

Section 4.3's premise is that endpoints fail for real: connections blip,
pages arrive truncated, time budgets trip mid-pagination.  This module
generalizes the old single-trick ``FlakyEndpoint`` test double into a
layer that wraps *any* endpoint and injects faults by a deterministic
seeded schedule, so a chaos run is exactly reproducible:

* :class:`TransientFaults` — the request raises a
  :class:`~repro.sparql.errors.TransientError` before reaching the inner
  endpoint (a connection blip / 503).
* :class:`LatencyFaults` — the request is delayed (per-page latency).
* :class:`PayloadCorruption` — the response's SPARQL-JSON wire payload is
  truncated or replaced with garbage (a corrupt page).
* :class:`MidStreamTimeouts` — the inner endpoint is forced to evaluate
  the page under a zero time budget, so its *own* deadline valve trips
  mid-pull, its cursor is dropped, and the classified
  ``TransientError`` takes the exact path a production timeout takes.

Each injector draws from its own ``random.Random(seed)`` stream, so the
fault schedule depends only on the seed and the request order — never on
``PYTHONHASHSEED`` or wall-clock time.  ``max_consecutive`` bounds how
many times the same (query, offset) page can fault *in a row*, which
turns "retries probably absorb the faults" into a guarantee the chaos
suite can assert: with ``max_retries > max_consecutive`` every page
eventually succeeds, so results must be bag-identical to the undisturbed
engine.

>>> from repro.rdf import Graph, Literal, URIRef
>>> from repro.sparql import Endpoint, Engine
>>> from repro.sparql.faults import FaultyEndpoint, TransientFaults
>>> g = Graph("http://g")
>>> for i in range(5):
...     _ = g.add(URIRef("http://x/s%d" % i), URIRef("http://x/p"),
...               Literal(i))
>>> flaky = FaultyEndpoint(Endpoint(Engine(g)),
...                        [TransientFaults(rate=1.0, max_consecutive=1)])
>>> flaky.request("SELECT ?s ?v WHERE { ?s <http://x/p> ?v }")
Traceback (most recent call last):
    ...
repro.sparql.errors.TransientError: injected transient failure (request 1)
>>> len(flaky.request("SELECT ?s ?v WHERE { ?s <http://x/p> ?v }").result)
5
>>> flaky.faults_injected
{'transient': 1}
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, Optional, Sequence, Tuple

from .endpoint import Endpoint, EndpointResponse
from .errors import TransientError

__all__ = ["FaultInjector", "TransientFaults", "LatencyFaults",
           "PayloadCorruption", "MidStreamTimeouts", "FaultyEndpoint"]


class FaultInjector:
    """Base class: one kind of fault, fired by a seeded schedule.

    ``rate`` is the per-request fault probability drawn from this
    injector's private ``random.Random(seed)`` stream; ``max_consecutive``
    (when set) caps how many times the same (query, offset) page faults
    in a row — after that many consecutive faults the page is left alone
    until it succeeds once, which resets the streak.
    """

    kind = "fault"

    def __init__(self, rate: float = 0.1, seed: int = 0,
                 max_consecutive: Optional[int] = None):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.rate = rate
        self.max_consecutive = max_consecutive
        self._rng = random.Random((seed, self.kind).__repr__())
        self._streaks: Dict[Tuple[str, int], int] = {}
        self.fired = 0

    def should_fire(self, query: str, offset: int) -> bool:
        """One schedule draw; honors the consecutive-fault cap per page."""
        key = (query, offset)
        fire = self._rng.random() < self.rate
        if fire and self.max_consecutive is not None \
                and self._streaks.get(key, 0) >= self.max_consecutive:
            fire = False
        if fire:
            self._streaks[key] = self._streaks.get(key, 0) + 1
            self.fired += 1
        else:
            self._streaks.pop(key, None)
        return fire

    # Hooks; subclasses override one (or both).
    def before_request(self, endpoint: Endpoint, query: str, offset: int,
                       limit: Optional[int]) -> None:
        """Runs before the inner endpoint is called; may raise."""

    def after_response(self, endpoint: Endpoint, query: str, offset: int,
                       limit: Optional[int],
                       response: EndpointResponse) -> EndpointResponse:
        """Runs on the inner endpoint's response; may mutate or raise."""
        return response


class TransientFaults(FaultInjector):
    """The wire blips: the request fails before reaching the endpoint."""

    kind = "transient"

    def before_request(self, endpoint, query, offset, limit):
        if self.should_fire(query, offset):
            raise TransientError("injected transient failure (request %d)"
                                 % self.fired)


class LatencyFaults(FaultInjector):
    """Per-page latency: the request is delayed by up to ``delay``
    seconds (uniform, drawn from the seeded stream)."""

    kind = "latency"

    def __init__(self, delay: float = 0.005, rate: float = 1.0,
                 seed: int = 0, sleep: Callable[[float], None] = time.sleep):
        super().__init__(rate=rate, seed=seed)
        self.delay = delay
        self.slept = 0.0
        self._sleep = sleep  # injectable so tests never actually wait

    def before_request(self, endpoint, query, offset, limit):
        if self.should_fire(query, offset):
            pause = self._rng.uniform(0.0, self.delay)
            self.slept += pause
            self._sleep(pause)


class PayloadCorruption(FaultInjector):
    """The page's wire payload arrives damaged.

    Alternates (by schedule draw) between *truncation* — the JSON document
    cut mid-way, exactly what a dropped connection leaves behind — and
    *garbage* — a non-JSON body (an HTML error page, say).  Decoding must
    fail loudly client-side; a truncated page silently accepted would be
    a silently truncated result set.
    """

    kind = "corrupt"

    def after_response(self, endpoint, query, offset, limit, response):
        if self.should_fire(query, offset) and response.payload is not None:
            if self._rng.random() < 0.5:
                response.payload = response.payload[
                    :max(1, len(response.payload) // 2)]
            else:
                response.payload = "<html>502 Bad Gateway</html>"
        return response


class MidStreamTimeouts(FaultInjector):
    """The endpoint's own time budget trips mid-page.

    Forces the inner endpoint to serve this page under a zero timeout, so
    the engine's deadline valve raises *while rows are being pulled*, the
    endpoint drops its (now dead) cursor, and the client sees the same
    classified ``TransientError`` a genuinely slow page produces.  The
    next attempt re-executes from a fresh cursor — the cursor-drop path
    under test.
    """

    kind = "timeout"

    def before_request(self, endpoint, query, offset, limit):
        if self.should_fire(query, offset):
            saved = endpoint.timeout
            try:
                endpoint.timeout = 0.0
                # The inner request both arms the zero budget and trips
                # it; restore before re-raising so only this page faults.
                endpoint.request(query, offset=offset, limit=limit)
            finally:
                endpoint.timeout = saved
            # A zero budget that somehow served the page (empty result,
            # nothing to pull) still counts as an injected timeout.
            raise TransientError(
                "injected mid-stream timeout at offset %d" % offset)


class FaultyEndpoint:
    """Wraps any :class:`Endpoint`, injecting faults on the way through.

    Duck-types the endpoint surface the clients use (``request``,
    ``engine``, ``max_rows``, ``timeout``), so it drops in anywhere an
    endpoint is expected, and composes: each request runs every
    injector's ``before_request`` hook in order, then the inner request,
    then every ``after_response`` hook in order.
    """

    def __init__(self, inner: Endpoint,
                 faults: Sequence[FaultInjector] = ()):
        self.inner = inner
        self.faults = list(faults)
        self.requests_seen = 0

    def request(self, query_text: str, offset: int = 0,
                limit: Optional[int] = None) -> EndpointResponse:
        self.requests_seen += 1
        for fault in self.faults:
            fault.before_request(self.inner, query_text, offset, limit)
        response = self.inner.request(query_text, offset=offset,
                                      limit=limit)
        for fault in self.faults:
            response = fault.after_response(self.inner, query_text, offset,
                                            limit, response)
        return response

    @property
    def faults_injected(self) -> Dict[str, int]:
        """Fired-fault counts by kind (kinds that never fired omitted)."""
        counts: Dict[str, int] = {}
        for fault in self.faults:
            if fault.fired:
                counts[fault.kind] = counts.get(fault.kind, 0) + fault.fired
        return counts

    # -- endpoint surface delegation -----------------------------------
    @property
    def engine(self):
        return self.inner.engine

    @property
    def max_rows(self):
        return self.inner.max_rows

    @property
    def timeout(self):
        return self.inner.timeout

    def clear_cache(self):
        self.inner.clear_cache()

    def __repr__(self):
        return "FaultyEndpoint(%r, %d injectors, injected=%r)" % (
            self.inner, len(self.faults), self.faults_injected)
