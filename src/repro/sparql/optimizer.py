"""Join-order optimization for basic graph patterns.

The engine evaluates a BGP as an index-nested-loop join: triple patterns are
matched one at a time, with variables bound so far substituted into the next
pattern before it hits the indexes.  The order in which patterns are matched
dominates cost, so this module implements a greedy ordering: repeatedly pick
the remaining pattern with the smallest estimated cardinality given the
variables already bound, in the spirit of classic selectivity-based
optimizers (and of what Virtuoso does for the paper's flat queries).

It also hosts the statistics the planner's ``JoinStrategy`` pass consumes
(per-predicate average fan-out) and :func:`run_signature`, the shared
definition of which triple patterns can feed a sorted-run intersection step
for a candidate variable — the planner uses it to decide *whether* a BGP
should run multiway, the evaluator to decide *how*.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..rdf.terms import TriplePattern, Variable, is_concrete


class GraphStatistics:
    """Per-predicate statistics for cardinality estimation.

    Profiles come from the graph's public, memoized
    ``predicate_profile(p) -> (triples, distinct_s, distinct_o)`` interface
    (:class:`~repro.rdf.graph.Graph` and its :class:`~repro.rdf.dataset.GraphUnion`
    aggregation both provide it), so the optimizer never reaches into
    private index structures and never re-scans a predicate it has already
    profiled.

    Statistics objects are scoped to a *single planning call* (one
    ``optimize_plan`` pipeline, one evaluator instance): their memos are
    cheap to rebuild and must not outlive the graph state they describe.
    As a second line of defence, the fallback memo for graph-likes without
    ``predicate_profile`` re-validates against the graph's size and drops
    itself when the graph mutated underneath — earlier revisions served
    stale triple counts forever.
    """

    def __init__(self, graph):
        self._graph = graph
        self._total = max(1, graph.count() if hasattr(graph, "count") else len(graph))
        # Local memo for graph-likes without predicate_profile (which is
        # itself memoized); order_patterns calls estimate O(n) per BGP.
        self._by_predicate: Dict = {}
        # Size snapshot guarding the fallback memo: a mutation changes the
        # triple count, which invalidates every cached scan.  (An
        # equal-size replace slips through — acceptable for estimates, and
        # planning-call scoping bounds the exposure to one plan.)
        self._fallback_size: Optional[int] = None

    def _graph_size(self) -> int:
        graph = self._graph
        if hasattr(graph, "count"):
            return graph.count()
        return len(graph)

    def _predicate_stats(self, predicate) -> Tuple[int, int, int]:
        """(triples, distinct subjects, distinct objects) for a predicate."""
        graph = self._graph
        if hasattr(graph, "predicate_profile"):
            return graph.predicate_profile(predicate)
        # Graph-like object without the profile interface: one full scan,
        # memoized until the graph's size changes.
        size = self._graph_size()
        if size != self._fallback_size:
            self._by_predicate.clear()
            self._fallback_size = size
        cached = self._by_predicate.get(predicate)
        if cached is not None:
            return cached
        triples = 0
        seen_s: Set = set()
        seen_o: Set = set()
        for s, _, o in graph.triples(None, predicate, None):
            triples += 1
            seen_s.add(s)
            seen_o.add(o)
        stats = (triples, len(seen_s), len(seen_o))
        self._by_predicate[predicate] = stats
        return stats

    def subject_fanout(self, predicate) -> float:
        """Average objects per subject for a predicate: triples over
        distinct subjects.  This is the multiplicity a forward expansion
        ``(s bound, p) -> objects`` appends per input row — the quantity
        sideways information passing and intersection steps try to prune
        *before* it happens."""
        triples, distinct_s, _ = self._predicate_stats(predicate)
        return triples / max(1, distinct_s)

    def object_fanout(self, predicate) -> float:
        """Average subjects per object: the backward-expansion mirror of
        :meth:`subject_fanout`."""
        triples, _, distinct_o = self._predicate_stats(predicate)
        return triples / max(1, distinct_o)

    def predicate_cardinality(self, predicate) -> int:
        """Total triples for a predicate (0 when absent)."""
        return self._predicate_stats(predicate)[0]

    def distinct_subjects(self, predicate) -> int:
        """Distinct subjects carrying a predicate — the width of the
        ``p -> subjects`` sorted run."""
        return self._predicate_stats(predicate)[1]

    def distinct_objects(self, predicate) -> int:
        """Distinct objects of a predicate."""
        return self._predicate_stats(predicate)[2]

    def estimate(self, pattern: TriplePattern, bound: Set[str]) -> float:
        """Estimated number of matches for ``pattern`` when the variables in
        ``bound`` already have values."""
        s, p, o = pattern

        def is_fixed(term):
            return is_concrete(term) or (isinstance(term, Variable)
                                         and term.name in bound)

        if is_concrete(p):
            triples, distinct_s, distinct_o = self._predicate_stats(p)
            if triples == 0:
                return 0.0
            estimate = float(triples)
            if is_fixed(s):
                estimate /= max(1, distinct_s)
            if is_fixed(o):
                estimate /= max(1, distinct_o)
            return max(estimate, 0.001)
        # Variable predicate: discourage until everything else is bound.
        estimate = float(self._total)
        if is_fixed(s):
            estimate /= max(1.0, self._total ** 0.5)
        if is_fixed(o):
            estimate /= max(1.0, self._total ** 0.5)
        return max(estimate, 0.01)


def order_patterns(patterns: Sequence[TriplePattern],
                   stats: GraphStatistics) -> List[TriplePattern]:
    """Greedy selectivity ordering of a BGP's triple patterns.

    Picks the cheapest pattern first, adds its variables to the bound set,
    and repeats.  Patterns sharing variables with already-chosen ones are
    strongly preferred (their estimates shrink once variables are bound),
    which avoids Cartesian products.

    A pattern's estimate depends only on which of its subject/object slots
    are fixed, so estimates are memoized per ``(pattern, fixedness)``
    within one ordering call — the greedy loop re-examines every remaining
    pattern each round, but each distinct estimate is computed once
    instead of O(n²) times.  Cost ties are broken deterministically in
    favour of the pattern that appears *first in the input* (the parser's
    textual order), so the chosen order is a pure function of the query
    and the statistics.
    """
    remaining = list(range(len(patterns)))
    ordered: List[TriplePattern] = []
    bound: Set[str] = set()
    # (pattern index, s fixed?, o fixed?) -> base estimate.  Fixedness of
    # a slot is the only way ``bound`` enters the estimate, so this key
    # captures every distinct value ``stats.estimate`` can return for the
    # pattern during this call.
    memo: Dict[Tuple[int, bool, bool], float] = {}

    def fixed(term) -> bool:
        return is_concrete(term) or (isinstance(term, Variable)
                                     and term.name in bound)

    while remaining:
        best_index = None
        best_cost = None
        for index in remaining:
            pattern = patterns[index]
            key = (index, fixed(pattern[0]), fixed(pattern[2]))
            cost = memo.get(key)
            if cost is None:
                cost = stats.estimate(pattern, bound)
                memo[key] = cost
            # Disconnected patterns (no shared variable) imply a Cartesian
            # product with everything so far; penalize them heavily.
            if ordered and not _shares_variable(pattern, bound):
                cost *= 1e6
            # Strict less-than keeps the earliest input index on ties.
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_index = index
        remaining.remove(best_index)
        chosen = patterns[best_index]
        ordered.append(chosen)
        for term in chosen:
            if isinstance(term, Variable):
                bound.add(term.name)
    return ordered


def _shares_variable(pattern: TriplePattern, bound: Set[str]) -> bool:
    return any(isinstance(t, Variable) and t.name in bound for t in pattern)


# ----------------------------------------------------------------------
# Sorted-run signatures (shared by the JoinStrategy pass and the
# evaluator's multiway BGP compiler)
# ----------------------------------------------------------------------

def run_signature(pattern: TriplePattern, candidate: str,
                  bound: Set[str]):
    """Describe the sorted run that constrains variable ``candidate`` in
    ``pattern``, given the already-bound variable names.

    Returns ``(signature, consumed)``.  ``signature`` is a hashable key —
    two patterns with equal signatures denote the *same* run and therefore
    contribute only one operand to an intersection — or ``None`` when the
    pattern cannot contribute (variable predicate, candidate absent or
    repeated, or candidate in object position with a free subject, for
    which no run index exists).  ``consumed`` is True when the run is
    exactly the pattern's match set for the candidate (its only free
    position), so an intersection step satisfies the pattern completely
    and the pattern can be dropped from the plan.

    Signature shapes::

        ("subjects", p, term)        (p, o) -> subjects, o concrete
        ("subjects", p, ("?", v))    (p, o) -> subjects, o bound per row
        ("psubjects", p)             p -> subjects (candidate must *have* p)
        ("objects", p, term)         (s, p) -> objects, s concrete
        ("objects", p, ("?", v))     (s, p) -> objects, s bound per row
    """
    s, p, o = pattern
    if not is_concrete(p):
        return None, False
    s_is_cand = isinstance(s, Variable) and s.name == candidate
    o_is_cand = isinstance(o, Variable) and o.name == candidate
    if s_is_cand == o_is_cand:  # absent, or repeated across positions
        return None, False
    if s_is_cand:
        if is_concrete(o):
            return ("subjects", p, o), True
        if o.name in bound:
            return ("subjects", p, ("?", o.name)), True
        return ("psubjects", p), False
    if is_concrete(s):
        return ("objects", p, s), True
    if s.name in bound:
        return ("objects", p, ("?", s.name)), True
    return None, False


def run_width(signature, stats: GraphStatistics) -> float:
    """Expected length of the sorted run a signature denotes.

    ``psubjects`` runs span every subject of the predicate; the keyed runs
    are estimated by the predicate's average fan-out toward the candidate
    position.  The ``JoinStrategy`` pass compares these widths to decide
    whether intersection beats expand-then-filter for a step.
    """
    kind, predicate = signature[0], signature[1]
    if kind == "psubjects":
        return float(stats.distinct_subjects(predicate))
    if kind == "subjects":
        return stats.object_fanout(predicate)
    return stats.subject_fanout(predicate)


#: Minimum width of the widest operand before intersection is worth the
#: bookkeeping (skips micro graphs and unit-test fixtures).
INTERSECT_MIN_WIDE_RUN = 8

#: A predicate-subject run prunes a seed of width ``w`` only when it does
#: not simply *cover* the seed's population; beyond this width ratio it is
#: treated as covering (think ``psubj(starring)`` against "films of one
#: actor": every film has a cast) and contributes nothing.
PSUBJ_COVER_RATIO = 16


def intersection_worthwhile(widths: Dict, any_consumed: bool) -> bool:
    """The statistics gate one candidate intersection step must pass.

    ``widths`` maps distinct run signatures to their estimated widths
    (:func:`run_width`).  The evaluator iterates the narrowest operand
    and probes the rest, so a step pays off when (a) some operand is
    *consumed* — the intersection absorbs a whole pattern's
    expand-then-check work; presence-only (``psubjects``) operand sets
    tend to simply cover each other's populations — and (b) at least one
    *probe* operand is genuinely selective against the seed: keyed runs
    (constant- or row-bound) always are, a predicate-subject run only
    when its width stays within :data:`PSUBJ_COVER_RATIO` of the seed's
    (wider means it merely covers the seed's population).  The widest
    operand must also clear :data:`INTERSECT_MIN_WIDE_RUN` (something to
    prune).  Shared by the planner's ``JoinStrategy`` pass (to annotate)
    and the evaluator's multiway compiler (to skip non-worthwhile steps
    under ``multiway='auto'``).
    """
    if len(widths) < 2 or not any_consumed:
        return False
    by_width = sorted(widths.items(), key=lambda kv: kv[1])
    seed_width = by_width[0][1]
    if by_width[-1][1] < INTERSECT_MIN_WIDE_RUN:
        return False
    return any(sig[0] != "psubjects"
               or width <= PSUBJ_COVER_RATIO * seed_width
               for sig, width in by_width[1:])
