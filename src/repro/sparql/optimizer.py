"""Join-order optimization for basic graph patterns.

The engine evaluates a BGP as an index-nested-loop join: triple patterns are
matched one at a time, with variables bound so far substituted into the next
pattern before it hits the indexes.  The order in which patterns are matched
dominates cost, so this module implements a greedy ordering: repeatedly pick
the remaining pattern with the smallest estimated cardinality given the
variables already bound, in the spirit of classic selectivity-based
optimizers (and of what Virtuoso does for the paper's flat queries).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..rdf.terms import TriplePattern, Variable, is_concrete


class GraphStatistics:
    """Per-predicate statistics for cardinality estimation.

    Profiles come from the graph's public, memoized
    ``predicate_profile(p) -> (triples, distinct_s, distinct_o)`` interface
    (:class:`~repro.rdf.graph.Graph` and its :class:`~repro.rdf.dataset.GraphUnion`
    aggregation both provide it), so the optimizer never reaches into
    private index structures and never re-scans a predicate it has already
    profiled.
    """

    def __init__(self, graph):
        self._graph = graph
        self._total = max(1, graph.count() if hasattr(graph, "count") else len(graph))
        # Local memo for graph-likes without predicate_profile (which is
        # itself memoized); order_patterns calls estimate O(n^2) per BGP.
        self._by_predicate: Dict = {}

    def _predicate_stats(self, predicate) -> Tuple[int, int, int]:
        """(triples, distinct subjects, distinct objects) for a predicate."""
        graph = self._graph
        if hasattr(graph, "predicate_profile"):
            return graph.predicate_profile(predicate)
        # Graph-like object without the profile interface: one full scan.
        cached = self._by_predicate.get(predicate)
        if cached is not None:
            return cached
        triples = 0
        seen_s: Set = set()
        seen_o: Set = set()
        for s, _, o in graph.triples(None, predicate, None):
            triples += 1
            seen_s.add(s)
            seen_o.add(o)
        stats = (triples, len(seen_s), len(seen_o))
        self._by_predicate[predicate] = stats
        return stats

    def estimate(self, pattern: TriplePattern, bound: Set[str]) -> float:
        """Estimated number of matches for ``pattern`` when the variables in
        ``bound`` already have values."""
        s, p, o = pattern

        def is_fixed(term):
            return is_concrete(term) or (isinstance(term, Variable)
                                         and term.name in bound)

        if is_concrete(p):
            triples, distinct_s, distinct_o = self._predicate_stats(p)
            if triples == 0:
                return 0.0
            estimate = float(triples)
            if is_fixed(s):
                estimate /= max(1, distinct_s)
            if is_fixed(o):
                estimate /= max(1, distinct_o)
            return max(estimate, 0.001)
        # Variable predicate: discourage until everything else is bound.
        estimate = float(self._total)
        if is_fixed(s):
            estimate /= max(1.0, self._total ** 0.5)
        if is_fixed(o):
            estimate /= max(1.0, self._total ** 0.5)
        return max(estimate, 0.01)


def order_patterns(patterns: Sequence[TriplePattern],
                   stats: GraphStatistics) -> List[TriplePattern]:
    """Greedy selectivity ordering of a BGP's triple patterns.

    Picks the cheapest pattern first, adds its variables to the bound set,
    and repeats.  Patterns sharing variables with already-chosen ones are
    strongly preferred (their estimates shrink once variables are bound),
    which avoids Cartesian products.
    """
    remaining = list(patterns)
    ordered: List[TriplePattern] = []
    bound: Set[str] = set()
    while remaining:
        best_index = 0
        best_cost = None
        for index, pattern in enumerate(remaining):
            cost = stats.estimate(pattern, bound)
            # Disconnected patterns (no shared variable) imply a Cartesian
            # product with everything so far; penalize them heavily.
            if ordered and not _shares_variable(pattern, bound):
                cost *= 1e6
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_index = index
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        for term in chosen:
            if isinstance(term, Variable):
                bound.add(term.name)
    return ordered


def _shares_variable(pattern: TriplePattern, bound: Set[str]) -> bool:
    return any(isinstance(t, Variable) and t.name in bound for t in pattern)
