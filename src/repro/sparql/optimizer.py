"""Join-order optimization for basic graph patterns.

The engine evaluates a BGP as an index-nested-loop join: triple patterns are
matched one at a time, with variables bound so far substituted into the next
pattern before it hits the indexes.  The order in which patterns are matched
dominates cost, so this module implements a greedy ordering: repeatedly pick
the remaining pattern with the smallest estimated cardinality given the
variables already bound, in the spirit of classic selectivity-based
optimizers (and of what Virtuoso does for the paper's flat queries).

It also hosts the statistics the planner's ``CostBasedJoinStrategy`` pass
consumes — :class:`GraphStatistics`, now sourced from the graph's
characteristic-sets and per-predicate synopses when the graph provides
them — and :func:`run_signature`, the shared definition of which triple
patterns can feed a sorted-run intersection step for a candidate variable.
The worst-case-optimal join machinery lives here too:
:func:`bgp_is_cyclic` detects cyclic BGPs via GYO reduction of the join
hypergraph, :func:`generic_join_order` picks a variable elimination order
by estimated run widths, and :func:`estimate_join` /
:func:`estimate_wcoj` are the cost models the planner compares.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..rdf.terms import TriplePattern, Variable, is_concrete


class GraphStatistics:
    """Per-predicate statistics for cardinality estimation.

    Profiles come from the graph's public, memoized
    ``predicate_profile(p) -> (triples, distinct_s, distinct_o)`` interface
    (:class:`~repro.rdf.graph.Graph` and its :class:`~repro.rdf.dataset.GraphUnion`
    aggregation both provide it), so the optimizer never reaches into
    private index structures and never re-scans a predicate it has already
    profiled.

    Statistics objects are scoped to a *single planning call* (one
    ``optimize_plan`` pipeline, one evaluator instance): their memos are
    cheap to rebuild and must not outlive the graph state they describe.
    As a second line of defence, the fallback memo for graph-likes without
    ``predicate_profile`` re-validates against the graph's size and drops
    itself when the graph mutated underneath — earlier revisions served
    stale triple counts forever.
    """

    def __init__(self, graph):
        self._graph = graph
        self._total = max(1, graph.count() if hasattr(graph, "count") else len(graph))
        # Mutation-counter snapshot: graphs (and unions, which sum member
        # versions) bump ``version`` on every mutation, so ``fresh()``
        # detects even an equal-size replace — including one inside a
        # union member, which a size check cannot see.
        self._version = getattr(graph, "version", None)
        # Local memo for graph-likes without predicate_profile (which is
        # itself memoized); order_patterns calls estimate O(n) per BGP.
        self._by_predicate: Dict = {}
        # Snapshot guarding the fallback memo: (version, size) of the
        # graph when the memo was filled.  Graph-likes without a version
        # counter degrade to the old size-only guard (an equal-size
        # replace slips through there — acceptable for estimates, and
        # planning-call scoping bounds the exposure to one plan).
        self._fallback_token: Optional[Tuple] = None

    def _graph_size(self) -> int:
        graph = self._graph
        if hasattr(graph, "count"):
            return graph.count()
        return len(graph)

    def fresh(self) -> bool:
        """Whether the graph state these statistics were built against is
        still current.  Graphs expose a monotone ``version`` mutation
        counter (a :class:`~repro.rdf.dataset.GraphUnion` sums its
        members', so member mutation is visible); graph-likes without one
        are always reported fresh and rely on the fallback size guard."""
        if self._version is None:
            return not hasattr(self._graph, "version")
        return getattr(self._graph, "version", None) == self._version

    def _predicate_stats(self, predicate) -> Tuple[int, int, int]:
        """(triples, distinct subjects, distinct objects) for a predicate.

        Sourced from the graph's per-predicate synopsis when available
        (exact for these three figures, and shared with the
        characteristic-sets build), else from ``predicate_profile``, else
        from one memoized full scan."""
        graph = self._graph
        if hasattr(graph, "predicate_synopsis"):
            pid = graph.dictionary.lookup(predicate)
            if pid is None:
                return (0, 0, 0)
            return graph.predicate_synopsis(pid)[:3]
        if hasattr(graph, "predicate_profile"):
            return graph.predicate_profile(predicate)
        # Graph-like object without the profile interface: one full scan,
        # memoized until the graph's version (or, lacking one, size)
        # changes.
        token = (getattr(graph, "version", None), self._graph_size())
        if token != self._fallback_token:
            self._by_predicate.clear()
            self._fallback_token = token
        cached = self._by_predicate.get(predicate)
        if cached is not None:
            return cached
        triples = 0
        seen_s: Set = set()
        seen_o: Set = set()
        for s, _, o in graph.triples(None, predicate, None):
            triples += 1
            seen_s.add(s)
            seen_o.add(o)
        stats = (triples, len(seen_s), len(seen_o))
        self._by_predicate[predicate] = stats
        return stats

    def star_count(self, predicates) -> float:
        """Estimated number of subjects carrying *all* of ``predicates``.

        Exact when the graph exposes characteristic sets (sum of class
        counts over superset classes — the Neumann/Moerkotte star-shape
        estimate); otherwise falls back to the rarest predicate's
        distinct-subject count (an upper bound)."""
        predicates = list(predicates)
        if not predicates:
            return 0.0
        graph = self._graph
        if hasattr(graph, "characteristic_sets"):
            lookup = graph.dictionary.lookup
            pids = []
            for p in predicates:
                pid = lookup(p)
                if pid is None:
                    return 0.0
                pids.append(pid)
            want = frozenset(pids)
            return float(sum(
                count for cls, (count, _) in graph.characteristic_sets().items()
                if want <= cls))
        return float(min(self._predicate_stats(p)[1] for p in predicates))

    def subject_fanout(self, predicate) -> float:
        """Average objects per subject for a predicate: triples over
        distinct subjects.  This is the multiplicity a forward expansion
        ``(s bound, p) -> objects`` appends per input row — the quantity
        sideways information passing and intersection steps try to prune
        *before* it happens."""
        triples, distinct_s, _ = self._predicate_stats(predicate)
        return triples / max(1, distinct_s)

    def object_fanout(self, predicate) -> float:
        """Average subjects per object: the backward-expansion mirror of
        :meth:`subject_fanout`."""
        triples, _, distinct_o = self._predicate_stats(predicate)
        return triples / max(1, distinct_o)

    def _biased_fanout(self, predicate, slot: int, plain: float) -> float:
        """Edge-biased fan-out from the graph's synopsis (``slot`` 5 is
        subjects-per-object, 6 objects-per-subject), or ``plain`` when the
        graph keeps no synopsis or the sample is empty."""
        graph = self._graph
        if hasattr(graph, "predicate_synopsis"):
            pid = graph.dictionary.lookup(predicate)
            if pid is None:
                return 0.0
            syn = graph.predicate_synopsis(pid)
            if len(syn) > slot and syn[slot] > 0:
                return syn[slot]
        return plain

    def biased_subject_fanout(self, predicate) -> float:
        """Objects per subject when the subject is reached along a random
        triple (``E[deg^2]/E[deg]``) — the correct expansion multiplier
        for a forward hop *out of a join*, where heavy-tailed hubs are
        reached proportionally to their degree.  Falls back to the plain
        mean for graph-likes without a synopsis."""
        return self._biased_fanout(predicate, 6,
                                   self.subject_fanout(predicate))

    def biased_object_fanout(self, predicate) -> float:
        """Backward mirror of :meth:`biased_subject_fanout`."""
        return self._biased_fanout(predicate, 5,
                                   self.object_fanout(predicate))

    def predicate_cardinality(self, predicate) -> int:
        """Total triples for a predicate (0 when absent)."""
        return self._predicate_stats(predicate)[0]

    def distinct_subjects(self, predicate) -> int:
        """Distinct subjects carrying a predicate — the width of the
        ``p -> subjects`` sorted run."""
        return self._predicate_stats(predicate)[1]

    def distinct_objects(self, predicate) -> int:
        """Distinct objects of a predicate."""
        return self._predicate_stats(predicate)[2]

    def estimate(self, pattern: TriplePattern, bound: Set[str]) -> float:
        """Estimated number of matches for ``pattern`` when the variables in
        ``bound`` already have values."""
        s, p, o = pattern

        def is_fixed(term):
            return is_concrete(term) or (isinstance(term, Variable)
                                         and term.name in bound)

        if is_concrete(p):
            triples, distinct_s, distinct_o = self._predicate_stats(p)
            if triples == 0:
                return 0.0
            estimate = float(triples)
            if is_fixed(s):
                estimate /= max(1, distinct_s)
            if is_fixed(o):
                estimate /= max(1, distinct_o)
            return max(estimate, 0.001)
        # Variable predicate: discourage until everything else is bound.
        estimate = float(self._total)
        if is_fixed(s):
            estimate /= max(1.0, self._total ** 0.5)
        if is_fixed(o):
            estimate /= max(1.0, self._total ** 0.5)
        return max(estimate, 0.01)


def order_patterns(patterns: Sequence[TriplePattern],
                   stats: GraphStatistics) -> List[TriplePattern]:
    """Greedy selectivity ordering of a BGP's triple patterns.

    Picks the cheapest pattern first, adds its variables to the bound set,
    and repeats.  Patterns sharing variables with already-chosen ones are
    strongly preferred (their estimates shrink once variables are bound),
    which avoids Cartesian products.

    A pattern's estimate depends only on which of its subject/object slots
    are fixed, so estimates are memoized per ``(pattern, fixedness)``
    within one ordering call — the greedy loop re-examines every remaining
    pattern each round, but each distinct estimate is computed once
    instead of O(n²) times.  Cost ties are broken on the pattern's
    canonical text (term reprs), *not* its input position, so the chosen
    order — and therefore :func:`estimate_join` and the planner's
    strategy choice — is a pure function of the pattern *set* and the
    statistics, invariant under input-order permutations (self-join BGPs
    tie constantly: every pattern shares the predicate).
    """
    tie_key = [tuple(repr(t) for t in q) for q in patterns]
    remaining = list(range(len(patterns)))
    ordered: List[TriplePattern] = []
    bound: Set[str] = set()
    # (pattern index, s fixed?, o fixed?) -> base estimate.  Fixedness of
    # a slot is the only way ``bound`` enters the estimate, so this key
    # captures every distinct value ``stats.estimate`` can return for the
    # pattern during this call.
    memo: Dict[Tuple[int, bool, bool], float] = {}

    def fixed(term) -> bool:
        return is_concrete(term) or (isinstance(term, Variable)
                                     and term.name in bound)

    while remaining:
        best_index = None
        best_cost = None
        for index in remaining:
            pattern = patterns[index]
            key = (index, fixed(pattern[0]), fixed(pattern[2]))
            cost = memo.get(key)
            if cost is None:
                cost = stats.estimate(pattern, bound)
                memo[key] = cost
            # Disconnected patterns (no shared variable) imply a Cartesian
            # product with everything so far; penalize them heavily.
            if ordered and not _shares_variable(pattern, bound):
                cost *= 1e6
            if (best_cost is None or cost < best_cost
                    or (cost == best_cost
                        and tie_key[index] < tie_key[best_index])):
                best_cost = cost
                best_index = index
        remaining.remove(best_index)
        chosen = patterns[best_index]
        ordered.append(chosen)
        for term in chosen:
            if isinstance(term, Variable):
                bound.add(term.name)
    return ordered


def _shares_variable(pattern: TriplePattern, bound: Set[str]) -> bool:
    return any(isinstance(t, Variable) and t.name in bound for t in pattern)


# ----------------------------------------------------------------------
# Sorted-run signatures (shared by the JoinStrategy pass and the
# evaluator's multiway BGP compiler)
# ----------------------------------------------------------------------

def run_signature(pattern: TriplePattern, candidate: str,
                  bound: Set[str]):
    """Describe the sorted run that constrains variable ``candidate`` in
    ``pattern``, given the already-bound variable names.

    Returns ``(signature, consumed)``.  ``signature`` is a hashable key —
    two patterns with equal signatures denote the *same* run and therefore
    contribute only one operand to an intersection — or ``None`` when the
    pattern cannot contribute (variable predicate, candidate absent or
    repeated, or candidate in object position with a free subject, for
    which no run index exists).  ``consumed`` is True when the run is
    exactly the pattern's match set for the candidate (its only free
    position), so an intersection step satisfies the pattern completely
    and the pattern can be dropped from the plan.

    Signature shapes::

        ("subjects", p, term)        (p, o) -> subjects, o concrete
        ("subjects", p, ("?", v))    (p, o) -> subjects, o bound per row
        ("psubjects", p)             p -> subjects (candidate must *have* p)
        ("objects", p, term)         (s, p) -> objects, s concrete
        ("objects", p, ("?", v))     (s, p) -> objects, s bound per row
    """
    s, p, o = pattern
    if not is_concrete(p):
        return None, False
    s_is_cand = isinstance(s, Variable) and s.name == candidate
    o_is_cand = isinstance(o, Variable) and o.name == candidate
    if s_is_cand == o_is_cand:  # absent, or repeated across positions
        return None, False
    if s_is_cand:
        if is_concrete(o):
            return ("subjects", p, o), True
        if o.name in bound:
            return ("subjects", p, ("?", o.name)), True
        return ("psubjects", p), False
    if is_concrete(s):
        return ("objects", p, s), True
    if s.name in bound:
        return ("objects", p, ("?", s.name)), True
    return None, False


def run_width(signature, stats: GraphStatistics) -> float:
    """Expected length of the sorted run a signature denotes.

    ``psubjects`` runs span every subject of the predicate; the keyed runs
    are estimated by the predicate's average fan-out toward the candidate
    position.  The ``JoinStrategy`` pass compares these widths to decide
    whether intersection beats expand-then-filter for a step.
    """
    kind, predicate = signature[0], signature[1]
    if kind == "psubjects":
        return float(stats.distinct_subjects(predicate))
    if kind == "subjects":
        return stats.object_fanout(predicate)
    return stats.subject_fanout(predicate)


#: Minimum width of the widest operand before intersection is worth the
#: bookkeeping (skips micro graphs and unit-test fixtures).
INTERSECT_MIN_WIDE_RUN = 8

#: A predicate-subject run prunes a seed of width ``w`` only when it does
#: not simply *cover* the seed's population; beyond this width ratio it is
#: treated as covering (think ``psubj(starring)`` against "films of one
#: actor": every film has a cast) and contributes nothing.
PSUBJ_COVER_RATIO = 16


def intersection_worthwhile(widths: Dict, any_consumed: bool) -> bool:
    """The statistics gate one candidate intersection step must pass.

    ``widths`` maps distinct run signatures to their estimated widths
    (:func:`run_width`).  The evaluator iterates the narrowest operand
    and probes the rest, so a step pays off when (a) some operand is
    *consumed* — the intersection absorbs a whole pattern's
    expand-then-check work; presence-only (``psubjects``) operand sets
    tend to simply cover each other's populations — and (b) at least one
    *probe* operand is genuinely selective against the seed: keyed runs
    (constant- or row-bound) always are, a predicate-subject run only
    when its width stays within :data:`PSUBJ_COVER_RATIO` of the seed's
    (wider means it merely covers the seed's population).  The widest
    operand must also clear :data:`INTERSECT_MIN_WIDE_RUN` (something to
    prune).  Shared by the planner's ``JoinStrategy`` pass (to annotate)
    and the evaluator's multiway compiler (to skip non-worthwhile steps
    under ``multiway='auto'``).
    """
    if len(widths) < 2 or not any_consumed:
        return False
    by_width = sorted(widths.items(), key=lambda kv: kv[1])
    seed_width = by_width[0][1]
    if by_width[-1][1] < INTERSECT_MIN_WIDE_RUN:
        return False
    return any(sig[0] != "psubjects"
               or width <= PSUBJ_COVER_RATIO * seed_width
               for sig, width in by_width[1:])


# ----------------------------------------------------------------------
# Worst-case-optimal (generic) join planning: join-hypergraph cyclicity,
# variable elimination orders, and the cost models the
# ``CostBasedJoinStrategy`` pass compares.
# ----------------------------------------------------------------------

#: Total triples across a BGP's predicates below which generic join is
#: not attempted (micro graphs and unit fixtures keep nested-loop).
WCOJ_MIN_TRIPLES = 16

#: Constant-factor handicap on the generic-join estimate when the planner
#: compares it against the nested-loop/intersection plan
#: (``estimate_wcoj * WCOJ_COST_FACTOR <= cost_nl``).  A generic-join
#: level pays run set-up and per-candidate probe bookkeeping that a plain
#: index expansion does not, so its estimated candidate count must beat
#: nested-loop by this margin before the detour is worth it.  Calibrated
#: on the joins corpus: benign cyclic shapes with tiny fan-outs (the
#: costar triangle) sit near the boundary, while heavy-tailed shapes
#: (the collaborator graph's wedge blow-ups) clear it several times over
#: at benchmark scales.
WCOJ_COST_FACTOR = 1.5


def bgp_hyperedges(patterns: Sequence[TriplePattern]) -> List[frozenset]:
    """The BGP's join hypergraph as one vertex set per pattern, where
    vertices are variable names (subject/object positions; a variable
    predicate contributes its name too, so patterns exotic for WCOJ still
    shape the cyclicity test)."""
    edges = []
    for pattern in patterns:
        edge = frozenset(t.name for t in pattern if isinstance(t, Variable))
        if edge:
            edges.append(edge)
    return edges


def bgp_is_cyclic(patterns: Sequence[TriplePattern]) -> bool:
    """Whether the BGP's join hypergraph is cyclic (not alpha-acyclic).

    Runs GYO reduction: repeatedly delete hyperedges contained in another
    edge and "ear" vertices that appear in exactly one edge.  The
    hypergraph is acyclic iff the reduction erases everything; a cyclic
    core (triangle, 4-cycle, clique) survives, and those are exactly the
    shapes where binary join plans can blow up on intermediate results
    and generic join is worst-case optimal.
    """
    edges = bgp_hyperedges(patterns)
    changed = True
    while changed and edges:
        changed = False
        # Delete edges contained in another edge.
        for i, edge in enumerate(edges):
            if any(i != j and edge <= other for j, other in enumerate(edges)):
                edges.pop(i)
                changed = True
                break
        if changed:
            continue
        # Delete ear vertices (appearing in exactly one edge).
        counts: Dict[str, int] = {}
        for edge in edges:
            for v in edge:
                counts[v] = counts.get(v, 0) + 1
        ears = {v for v, n in counts.items() if n == 1}
        if ears:
            reduced = []
            for edge in edges:
                trimmed = frozenset(v for v in edge if v not in ears)
                if trimmed != edge:
                    changed = True
                if trimmed:
                    reduced.append(trimmed)
            edges = reduced
    return bool(edges)


def generic_join_eligible(patterns: Sequence[TriplePattern]) -> bool:
    """Structural preconditions for the generic-join executor: every
    pattern has a concrete predicate (so sorted runs exist), no pattern
    repeats one variable across subject and object (no run signature for
    those), and there is at least one variable to bind."""
    saw_var = False
    for s, p, o in patterns:
        if not is_concrete(p):
            return False
        s_var = isinstance(s, Variable)
        o_var = isinstance(o, Variable)
        if s_var and o_var and s.name == o.name:
            return False
        saw_var = saw_var or s_var or o_var
    return saw_var


def generic_join_order(patterns: Sequence[TriplePattern],
                       stats: GraphStatistics,
                       prefer: Sequence[str] = ()) -> Optional[List[str]]:
    """A variable elimination order for generic join over ``patterns``.

    Greedy: at each level pick the unbound variable with the narrowest
    estimated constraining run (:func:`run_width` over its
    :func:`run_signature` operands).  After the first level only
    variables with a *keyed* run (constant- or bound-variable-keyed) are
    considered while any exist, which keeps the enumeration connected.
    Variables named in ``prefer`` (e.g. GROUP BY keys, so aggregates can
    be pushed down the decomposition) win within a level whenever
    eligible.  Ties break on the variable name, so the order is a pure
    function of the pattern *set* and the statistics — independent of
    pattern input order and of ``PYTHONHASHSEED``.

    Returns ``None`` when the BGP is structurally ineligible
    (:func:`generic_join_eligible`) or some variable never acquires a
    constraining run.
    """
    if not generic_join_eligible(patterns):
        return None
    names = sorted({t.name for q in patterns for t in (q[0], q[2])
                    if isinstance(t, Variable)})
    prefer_left = set(prefer) & set(names)
    order: List[str] = []
    bound: Set[str] = set()
    while len(order) < len(names):
        ranked = []
        for name in names:
            if name in bound:
                continue
            signatures = set()
            for q in patterns:
                sig, _ = run_signature(q, name, bound)
                if sig is not None:
                    signatures.add(sig)
            if not signatures:
                continue
            width = min(run_width(sig, stats) for sig in signatures)
            keyed = any(sig[0] != "psubjects" for sig in signatures)
            ranked.append((name, keyed, width))
        if not ranked:
            return None
        pool = ranked
        if bound:
            keyed_pool = [r for r in pool if r[1]]
            if keyed_pool:
                pool = keyed_pool
        if prefer_left:
            preferred = [r for r in pool if r[0] in prefer_left]
            if preferred:
                pool = preferred
        pool.sort(key=lambda r: (r[2], r[0]))
        chosen = pool[0][0]
        order.append(chosen)
        bound.add(chosen)
        prefer_left.discard(chosen)
    return order


def estimate_join(patterns: Sequence[TriplePattern],
                  stats: GraphStatistics) -> Tuple[float, float]:
    """``(cost, est_rows)`` of the greedy nested-loop plan: cost is the
    sum of estimated intermediate-result sizes along the greedy order
    (the classic C_out objective), est_rows the final product.

    An expansion out of a bound variable endpoint uses the synopsis's
    *edge-biased* fan-out moment instead of the plain mean when the
    variable was itself reached through a pattern with the **same
    predicate**: its values then appear in the intermediate result once
    per incident edge, so heavy-tailed hubs are revisited proportionally
    to their degree and the naive mean badly underestimates the blow-up
    (the whole reason cyclic self-join queries are hard for
    pattern-at-a-time plans).  A variable bound through an unrelated
    predicate keeps the uniform figure — degree correlation across
    predicates is assumed away, per the usual independence convention.
    """
    ordered = order_patterns(list(patterns), stats)
    bound: Set[str] = set()
    # Variable name -> predicates of the patterns that have touched it;
    # membership marks the variable's multiplicity as degree-biased for
    # that predicate's expansions.
    touched: Dict[str, Set] = {}
    rows = 1.0
    cost = 0.0
    for q in ordered:
        est = stats.estimate(q, bound)
        s, p, o = q
        if is_concrete(p):
            if (isinstance(s, Variable) and s.name in bound
                    and isinstance(o, Variable) and o.name not in bound
                    and p in touched.get(s.name, ())):
                plain = stats.subject_fanout(p)
                if plain > 0:
                    est *= stats.biased_subject_fanout(p) / plain
            elif (isinstance(o, Variable) and o.name in bound
                    and isinstance(s, Variable) and s.name not in bound
                    and p in touched.get(o.name, ())):
                plain = stats.object_fanout(p)
                if plain > 0:
                    est *= stats.biased_object_fanout(p) / plain
        rows *= est
        cost += rows
        for t in (s, o):
            if isinstance(t, Variable):
                bound.add(t.name)
                if is_concrete(p):
                    touched.setdefault(t.name, set()).add(p)
    return cost, rows


def _run_universe(signature, stats: GraphStatistics) -> float:
    """Size of the candidate universe a run draws from: distinct subjects
    of the predicate for subject-position runs, distinct objects for
    object-position ones.  The independence denominator for intersection
    estimates."""
    kind, predicate = signature[0], signature[1]
    if kind == "objects":
        return float(stats.distinct_objects(predicate))
    return float(stats.distinct_subjects(predicate))


def estimate_wcoj(patterns: Sequence[TriplePattern],
                  order: Sequence[str],
                  stats: GraphStatistics) -> float:
    """Estimated cost of generic join along ``order``.

    Each level seeds from its narrowest constraining run and eliminates
    candidates against the rest, so the level's *work* is the live-prefix
    count times the narrowest width (candidates generated), while the
    *survivors* shrink by each additional run's independence selectivity
    ``width / universe`` (``|A ∩ B| ≈ |A|·|B| / U``).  Summing the
    candidate counts mirrors :func:`estimate_join`'s C_out convention
    closely enough for the planner to compare the two, and — unlike the
    earlier no-shrink upper bound — credits exactly the multiply-
    constrained levels where generic join beats expand-then-filter.
    The arithmetic is order-independent over the signature set, so the
    estimate is a pure function of the pattern set and statistics.
    """
    bound: Set[str] = set()
    rows = 1.0
    cost = 0.0
    for name in order:
        signatures = set()
        for q in patterns:
            sig, _ = run_signature(q, name, bound)
            if sig is not None:
                signatures.add(sig)
        pairs = [(run_width(sig, stats), _run_universe(sig, stats))
                 for sig in signatures]
        if not pairs:
            bound.add(name)
            continue
        seed = min(pairs)
        cost += rows * max(seed[0], 0.001)
        survivors = max(seed[0], 0.001)
        seed_taken = False
        for pair in pairs:
            if not seed_taken and pair == seed:
                seed_taken = True
                continue
            width, universe = pair
            survivors *= min(1.0, width / max(universe, 1.0))
        rows *= max(survivors, 0.001)
        bound.add(name)
    return cost
