"""SPARQL algebra nodes.

The parser produces a tree of these nodes; the evaluator interprets them
bottom-up with bag semantics.  The node set matches the fragment defined in
Section 5.1 of the paper: triple patterns (grouped into BGPs), Join,
LeftJoin (OPTIONAL), Union, Filter, Extend (BIND / AS), Project, Distinct,
Group/aggregation with HAVING, OrderBy, Slice (LIMIT/OFFSET), GraphPattern
(GRAPH <uri> { ... }) and nested SELECT (any Project node below the root).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..rdf.terms import TriplePattern, Variable, is_concrete
from .expressions import Expression

AGGREGATE_FUNCTIONS = ("count", "sum", "min", "max", "avg", "sample",
                       "group_concat")


class AlgebraNode:
    """Base class for algebra nodes."""

    def in_scope(self) -> List[str]:
        """Variable names potentially bound by this pattern."""
        raise NotImplementedError

    def children(self) -> List["AlgebraNode"]:
        return []


class BGP(AlgebraNode):
    """A basic graph pattern: a conjunction of triple patterns."""

    def __init__(self, triples: Sequence[TriplePattern]):
        self.triples = list(triples)

    def in_scope(self) -> List[str]:
        out, seen = [], set()
        for triple in self.triples:
            for term in triple:
                if isinstance(term, Variable) and term.name not in seen:
                    seen.add(term.name)
                    out.append(term.name)
        return out

    def __repr__(self):
        return "BGP(%d triples)" % len(self.triples)


class Join(AlgebraNode):
    def __init__(self, left: AlgebraNode, right: AlgebraNode):
        self.left, self.right = left, right

    def in_scope(self):
        return _union(self.left.in_scope(), self.right.in_scope())

    def children(self):
        return [self.left, self.right]

    def __repr__(self):
        return "Join(%r, %r)" % (self.left, self.right)


class LeftJoin(AlgebraNode):
    """OPTIONAL: keep every left solution, extend when compatible."""

    def __init__(self, left: AlgebraNode, right: AlgebraNode,
                 condition: Optional[Expression] = None):
        self.left, self.right, self.condition = left, right, condition

    def in_scope(self):
        return _union(self.left.in_scope(), self.right.in_scope())

    def children(self):
        return [self.left, self.right]

    def __repr__(self):
        return "LeftJoin(%r, %r)" % (self.left, self.right)


class Union(AlgebraNode):
    def __init__(self, left: AlgebraNode, right: AlgebraNode):
        self.left, self.right = left, right

    def in_scope(self):
        return _union(self.left.in_scope(), self.right.in_scope())

    def children(self):
        return [self.left, self.right]

    def __repr__(self):
        return "Union(%r, %r)" % (self.left, self.right)


class Filter(AlgebraNode):
    def __init__(self, condition: Expression, pattern: AlgebraNode):
        self.condition, self.pattern = condition, pattern

    def in_scope(self):
        return self.pattern.in_scope()

    def children(self):
        return [self.pattern]

    def __repr__(self):
        return "Filter(%s, %r)" % (self.condition.sparql(), self.pattern)


class Extend(AlgebraNode):
    """BIND(expr AS ?var) / SELECT (expr AS ?var)."""

    def __init__(self, pattern: AlgebraNode, var: str, expression: Expression):
        self.pattern = pattern
        self.var = var.lstrip("?$")
        self.expression = expression

    def in_scope(self):
        return _union(self.pattern.in_scope(), [self.var])

    def children(self):
        return [self.pattern]

    def __repr__(self):
        return "Extend(?%s := %s)" % (self.var, self.expression.sparql())


class Aggregate:
    """One aggregate in a GROUP BY query: ``fn([DISTINCT] expr) AS alias``.

    ``separator`` applies to ``GROUP_CONCAT`` only (the ``SEPARATOR=".."``
    modifier); ``None`` means the SPARQL default, a single space.
    """

    def __init__(self, function: str, expression: Optional[Expression],
                 alias: str, distinct: bool = False,
                 separator: Optional[str] = None):
        function = function.lower()
        if function not in AGGREGATE_FUNCTIONS:
            raise ValueError("unknown aggregate %r" % function)
        if separator is not None and function != "group_concat":
            raise ValueError("SEPARATOR only applies to GROUP_CONCAT")
        self.function = function
        self.expression = expression  # None means COUNT(*)
        self.alias = alias.lstrip("?$")
        self.distinct = distinct
        self.separator = separator

    def sparql(self) -> str:
        inner = "*" if self.expression is None else self.expression.sparql()
        if self.distinct:
            inner = "DISTINCT " + inner
        if self.separator is not None:
            # The escape set mirrors what the parser's string literal
            # unescapes, so render -> parse round-trips exactly.  A raw
            # newline would break the tokenizer's STRING rule.
            escaped = (self.separator.replace("\\", "\\\\")
                       .replace('"', '\\"').replace("\n", "\\n")
                       .replace("\r", "\\r").replace("\t", "\\t")
                       .replace("\b", "\\b").replace("\f", "\\f"))
            inner += ' ; SEPARATOR="%s"' % escaped
        return "(%s(%s) AS ?%s)" % (self.function.upper(), inner, self.alias)

    def __repr__(self):
        return "Aggregate(%s)" % self.sparql()


class Group(AlgebraNode):
    """GROUP BY + aggregates + HAVING."""

    def __init__(self, pattern: AlgebraNode, group_vars: Sequence[str],
                 aggregates: Sequence[Aggregate],
                 having: Optional[Expression] = None):
        self.pattern = pattern
        self.group_vars = [v.lstrip("?$") for v in group_vars]
        self.aggregates = list(aggregates)
        self.having = having

    def in_scope(self):
        return self.group_vars + [agg.alias for agg in self.aggregates]

    def children(self):
        return [self.pattern]

    def __repr__(self):
        return "Group(by=%s, aggs=%r)" % (self.group_vars, self.aggregates)


class Project(AlgebraNode):
    """SELECT projection.  ``variables=None`` means ``SELECT *``.

    A Project node appearing below another Project is a nested subquery:
    the evaluator materializes it independently (the behaviour whose cost
    the paper's naive-vs-optimized experiments measure).
    """

    def __init__(self, pattern: AlgebraNode,
                 variables: Optional[Sequence[str]] = None):
        self.pattern = pattern
        self.variables = ([v.lstrip("?$") for v in variables]
                          if variables is not None else None)

    def in_scope(self):
        if self.variables is None:
            return self.pattern.in_scope()
        return list(self.variables)

    def children(self):
        return [self.pattern]

    def __repr__(self):
        return "Project(%s)" % ("*" if self.variables is None else self.variables)


class Distinct(AlgebraNode):
    def __init__(self, pattern: AlgebraNode):
        self.pattern = pattern

    def in_scope(self):
        return self.pattern.in_scope()

    def children(self):
        return [self.pattern]

    def __repr__(self):
        return "Distinct(%r)" % self.pattern


class OrderBy(AlgebraNode):
    """ORDER BY; keys are ``(variable_name, 'asc'|'desc')`` pairs."""

    def __init__(self, pattern: AlgebraNode, keys: Sequence[Tuple[str, str]]):
        self.pattern = pattern
        self.keys = [(v.lstrip("?$"), order.lower()) for v, order in keys]

    def in_scope(self):
        return self.pattern.in_scope()

    def children(self):
        return [self.pattern]

    def __repr__(self):
        return "OrderBy(%s)" % self.keys


class Slice(AlgebraNode):
    """LIMIT / OFFSET."""

    def __init__(self, pattern: AlgebraNode, limit: Optional[int] = None,
                 offset: int = 0):
        self.pattern = pattern
        self.limit = limit
        self.offset = offset

    def in_scope(self):
        return self.pattern.in_scope()

    def children(self):
        return [self.pattern]

    def __repr__(self):
        return "Slice(limit=%s, offset=%s)" % (self.limit, self.offset)


class TopK(AlgebraNode):
    """Fused ``ORDER BY ... LIMIT k [OFFSET o]`` — a bounded sort.

    Produced by the planner's ``LimitPushdown`` pass from
    ``Slice(OrderBy(p))`` when a limit is present; never built by the
    parser.  The evaluator answers it with a single heap pass
    (``heapq.nsmallest`` under a composite, direction-aware key) instead
    of a full sort followed by a slice, and the streaming executor keeps
    only ``offset + limit`` rows in memory while consuming its child.
    """

    def __init__(self, pattern: AlgebraNode, keys: Sequence[Tuple[str, str]],
                 limit: int, offset: int = 0):
        self.pattern = pattern
        self.keys = [(v.lstrip("?$"), order.lower()) for v, order in keys]
        self.limit = limit
        self.offset = offset

    def in_scope(self):
        return self.pattern.in_scope()

    def children(self):
        return [self.pattern]

    def __repr__(self):
        return "TopK(%s, limit=%s, offset=%s)" % (self.keys, self.limit,
                                                  self.offset)


class InlineData(AlgebraNode):
    """VALUES: an inline table of bindings joined into the pattern.

    ``rows`` contain RDF terms or ``None`` for UNDEF.
    """

    def __init__(self, variables: Sequence[str], rows):
        self.variables = [v.lstrip("?$") for v in variables]
        self.rows = [tuple(row) for row in rows]

    def in_scope(self):
        return list(self.variables)

    def __repr__(self):
        return "InlineData(%s, %d rows)" % (self.variables, len(self.rows))


class Minus(AlgebraNode):
    """MINUS: remove left solutions with a compatible, domain-overlapping
    solution on the right."""

    def __init__(self, left: AlgebraNode, right: AlgebraNode):
        self.left, self.right = left, right

    def in_scope(self):
        return self.left.in_scope()

    def children(self):
        return [self.left, self.right]

    def __repr__(self):
        return "Minus(%r, %r)" % (self.left, self.right)


class FilterExists(AlgebraNode):
    """FILTER EXISTS { ... } / FILTER NOT EXISTS { ... }."""

    def __init__(self, pattern: AlgebraNode, group: AlgebraNode,
                 negated: bool = False):
        self.pattern = pattern
        self.group = group
        self.negated = negated

    def in_scope(self):
        return self.pattern.in_scope()

    def children(self):
        return [self.pattern, self.group]

    def __repr__(self):
        return "FilterExists(negated=%s)" % self.negated


class GraphPattern(AlgebraNode):
    """GRAPH <uri> { pattern } — scope matching to a named graph."""

    def __init__(self, graph_uri: str, pattern: AlgebraNode):
        self.graph_uri = graph_uri
        self.pattern = pattern

    def in_scope(self):
        return self.pattern.in_scope()

    def children(self):
        return [self.pattern]

    def __repr__(self):
        return "GraphPattern(%r, %r)" % (self.graph_uri, self.pattern)


class Query:
    """A complete parsed SELECT query."""

    def __init__(self, pattern: AlgebraNode,
                 from_graphs: Optional[List[str]] = None,
                 prefixes: Optional[dict] = None):
        self.pattern = pattern
        self.from_graphs = from_graphs or []
        self.prefixes = prefixes or {}

    def in_scope(self):
        return self.pattern.in_scope()

    def __repr__(self):
        return "Query(from=%s, %r)" % (self.from_graphs, self.pattern)


def _union(a: Sequence[str], b: Sequence[str]) -> List[str]:
    out = list(a)
    seen = set(a)
    for name in b:
        if name not in seen:
            seen.add(name)
            out.append(name)
    return out


def count_nested_selects(node: AlgebraNode) -> int:
    """Number of nested Project nodes (subqueries) below ``node``."""
    total = 0
    for child in node.children():
        if isinstance(child, Project):
            total += 1
        total += count_nested_selects(child)
    return total


def collect_bgps(node: AlgebraNode) -> List[BGP]:
    """All BGP nodes in the tree, in preorder."""
    out = []
    if isinstance(node, BGP):
        out.append(node)
    for child in node.children():
        out.extend(collect_bgps(child))
    return out
