"""Error taxonomy, cancellation, and circuit breaking for the serving tier.

Section 4.3 of the paper treats endpoints as unreliable partners: they cap
responses, impose time budgets, and fail mid-pagination.  A client (or a
server admitting queries on behalf of many clients) can only react sanely
if failures are *classified* — retrying a malformed query burns the retry
budget on an error that can never succeed, while failing fast on a
momentary connection blip throws away recoverable work.

Every protocol-level failure in this repo is an :class:`EndpointError`
subtype carrying a class-level ``retryable`` flag:

====================  =========  ==============================================
class                 retryable  meaning
====================  =========  ==============================================
``TransientError``    yes        momentary failure (blip, endpoint time
                                 budget, corrupted page) — a retry may succeed
``QueryRejected``     no         admission control refused to run the query
``ServerOverloaded``  no         load shedding: queue full or tenant over its
                                 in-flight cap; fail fast, re-submit later
``MalformedQuery``    no         the query text can never parse/evaluate
``ResourceExhausted`` no         the query tripped a row/memory budget —
                                 deterministic, a retry trips it again
``QueryCancelled``    no         the client gave up; cooperative cancellation
``CircuitOpenError``  no         the client's breaker is open; fail fast
``StorageError``      no         the durable store failed (I/O error,
                                 fail-stopped WAL); retrying re-hits the disk
====================  =========  ==============================================

:class:`StorageError` has two recovery-time subtypes:
:class:`CorruptSnapshotError` (a snapshot failed its checksums — the
store falls back to an older generation, so surfacing one means *no*
generation was loadable) and :class:`WalTruncatedError` (committed WAL
records were provably lost mid-log; carries ``recovered_seqno``, the last
sequence number recovery could still vouch for).  All three are
``retryable=False``: storage failures are deterministic with respect to
the bytes on disk.

:func:`classify_error` maps raw engine exceptions (parse errors, timeouts,
row-budget trips) onto the taxonomy at the endpoint boundary, and
:func:`is_retryable` is the single retry-policy predicate the HTTP client
consults.  :class:`CancelToken` and :class:`CircuitBreaker` are the two
small mechanisms the serving tier builds on: cooperative mid-query
cancellation and fail-fast suppression of a persistently failing endpoint.
"""

from __future__ import annotations

import threading
from typing import Optional

__all__ = [
    "EndpointError", "TransientError", "QueryRejected", "ServerOverloaded",
    "MalformedQuery", "ResourceExhausted", "QueryCancelled",
    "CircuitOpenError", "StorageError", "CorruptSnapshotError",
    "WalTruncatedError", "classify_error", "is_retryable",
    "CancelToken", "CircuitBreaker",
]


class EndpointError(RuntimeError):
    """A protocol-level endpoint failure (base of the taxonomy).

    The bare class is an *unclassified internal error* — not retryable,
    because a deterministic server bug fails identically on every attempt.
    """

    retryable = False


class TransientError(EndpointError):
    """A momentary failure — connection blip, endpoint time budget,
    truncated page.  Retrying (with backoff) may succeed."""

    retryable = True


class QueryRejected(EndpointError):
    """The server refused to run the query (admission control)."""

    retryable = False


class ServerOverloaded(QueryRejected):
    """Load shedding: the request queue is full or the tenant is over its
    in-flight cap.  Fails fast by design — the caller decides whether to
    re-submit later; blind immediate retries would amplify the overload."""


class MalformedQuery(EndpointError):
    """The query text can never succeed (parse error, unknown graph)."""

    retryable = False


class ResourceExhausted(EndpointError):
    """The query tripped a server-side row/memory budget.  Deterministic:
    a retry runs the same query into the same wall."""

    retryable = False


class QueryCancelled(EndpointError):
    """The query was cooperatively cancelled mid-evaluation."""

    retryable = False


class CircuitOpenError(EndpointError):
    """The client's circuit breaker is open: the endpoint failed too many
    consecutive times and calls fail fast until the cooldown elapses."""

    retryable = False


class StorageError(EndpointError):
    """The durable store failed: an I/O error while logging a mutation,
    a fail-stopped write-ahead log, an unreadable storage directory.
    Not retryable — the same bytes are still on (or missing from) the
    disk on the next attempt; the serving tier sheds the request with a
    classified error instead of a raw :class:`OSError`."""

    retryable = False


class CorruptSnapshotError(StorageError):
    """A snapshot file failed its magic/version/checksum validation.
    Recovery retries older generations on its own; *surfacing* this
    error means no snapshot generation was loadable."""


class WalTruncatedError(StorageError):
    """Committed write-ahead-log records were lost *mid-log* — a later
    valid record proves data existed past the damage, so replaying
    around the hole would produce a silently-wrong graph.  A torn tail
    (the log simply stops) is NOT this error; that is recovered
    silently.  ``recovered_seqno`` is the last sequence number recovery
    could still vouch for."""

    def __init__(self, message: str, recovered_seqno: int = 0):
        super().__init__(message)
        self.recovered_seqno = recovered_seqno


def classify_error(exc: BaseException) -> EndpointError:
    """Map a raw engine/endpoint exception onto the taxonomy.

    Already-classified :class:`EndpointError` instances pass through
    unchanged; everything else is wrapped (callers chain the original with
    ``raise classified from exc``).

    >>> from repro.sparql.errors import classify_error
    >>> from repro.sparql.evaluator import QueryTimeout
    >>> classify_error(QueryTimeout("page too slow")).retryable
    True
    """
    if isinstance(exc, EndpointError):
        return exc
    # Imported here: errors.py sits below evaluator/parser in the layer
    # order, and they import nothing from it at module load time anyway —
    # but keeping the taxonomy import-free makes that order unbreakable.
    from .evaluator import EvaluationError, QueryTimeout, RowBudgetExceeded
    from .expressions import ExpressionError
    from .parser import ParseError
    from .tokenizer import TokenizeError
    if isinstance(exc, QueryTimeout):
        return TransientError("endpoint time budget exceeded: %s" % exc)
    if isinstance(exc, (ParseError, TokenizeError, ExpressionError)):
        return MalformedQuery("query cannot be evaluated: %s" % exc)
    if isinstance(exc, RowBudgetExceeded):
        return ResourceExhausted("server row budget exceeded: %s" % exc)
    if isinstance(exc, EvaluationError):
        return MalformedQuery("query cannot be evaluated: %s" % exc)
    if isinstance(exc, OSError):
        return StorageError("storage I/O failure: %s" % exc)
    return EndpointError("internal endpoint error: %s" % exc)


def is_retryable(exc: BaseException) -> bool:
    """The retry-policy predicate: should a client try this page again?"""
    return bool(getattr(exc, "retryable", False))


class CancelToken:
    """Cooperative cancellation handle for one in-flight query.

    The evaluator checks the token at its existing deadline checkpoints
    (between operators, every ~1k rows of pattern production, per streamed
    batch), so a cancelled query stops consuming evaluator time
    mid-operator and surfaces as :class:`QueryCancelled`.

    >>> token = CancelToken()
    >>> token.cancelled
    False
    >>> token.cancel()
    >>> token.cancelled
    True
    """

    __slots__ = ("_event", "reason")

    def __init__(self):
        self._event = threading.Event()
        self.reason: Optional[str] = None

    def cancel(self, reason: Optional[str] = None) -> None:
        """Request cancellation (idempotent; safe from any thread)."""
        if reason is not None and self.reason is None:
            self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def raise_if_cancelled(self) -> None:
        if self._event.is_set():
            raise QueryCancelled("query cancelled%s"
                                 % (": %s" % self.reason if self.reason
                                    else ""))

    def __repr__(self):
        return "CancelToken(cancelled=%s)" % self.cancelled


class CircuitBreaker:
    """A classic three-state circuit breaker.

    *Closed* (healthy): calls pass through; ``failure_threshold``
    consecutive failures trip it *open*.  *Open*: calls fail fast with
    :class:`CircuitOpenError` until ``cooldown`` seconds elapse.
    *Half-open*: one probe call is allowed through — success closes the
    circuit, failure re-opens it for another cooldown.

    Thread-safe; the clock is injectable so tests never sleep.

    >>> t = [0.0]
    >>> breaker = CircuitBreaker(failure_threshold=2, cooldown=10.0,
    ...                          clock=lambda: t[0])
    >>> breaker.record_failure(); breaker.record_failure()
    >>> breaker.allows_request()
    False
    >>> t[0] = 11.0           # cooldown elapsed -> half-open probe
    >>> breaker.allows_request()
    True
    >>> breaker.record_success()
    >>> breaker.state
    'closed'
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(self, failure_threshold: int = 5, cooldown: float = 30.0,
                 clock=None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        import time
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.trips = 0  # times the breaker went closed/half-open -> open

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._state == self.OPEN \
                and self._clock() - self._opened_at >= self.cooldown:
            self._state = self.HALF_OPEN
        return self._state

    def allows_request(self) -> bool:
        """May a request be attempted right now?  (Half-open: yes — the
        caller's next record_success/record_failure decides the state.)"""
        with self._lock:
            return self._state_locked() != self.OPEN

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` when the circuit is open."""
        if not self.allows_request():
            raise CircuitOpenError(
                "circuit breaker open after %d consecutive failures "
                "(cooldown %.3gs)" % (self._consecutive_failures,
                                      self.cooldown))

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._state = self.CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            state = self._state_locked()
            if state == self.HALF_OPEN \
                    or (state == self.CLOSED
                        and self._consecutive_failures
                        >= self.failure_threshold):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self.trips += 1

    def __repr__(self):
        return "CircuitBreaker(state=%r, consecutive_failures=%d)" % (
            self.state, self._consecutive_failures)
