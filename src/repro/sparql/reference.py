"""The original dict-based evaluator, kept as the executable reference.

This is the seed engine's data plane: solution multisets are lists of
``{variable name: Term}`` dicts and every operator pays a dict allocation
plus term-object hashing per row.  The production evaluator
(:class:`~.evaluator.Evaluator`) replaced it with dictionary-encoded
columnar tables; this copy is retained for two jobs:

* **Differential testing** — the columnar operators are asserted equal to
  these semantics on the same fixtures (``tests/sparql/test_solution_table``
  and the engine-level equivalence corpus).
* **Perf trajectory** — ``benchmarks/perf_report.py`` times both engines so
  every future PR can show its speedup over the seed representation
  (``Engine(..., columnar=False)`` selects this evaluator).

Behavior must not drift: change the columnar evaluator, not this file,
unless a *semantic* bug is found (then fix both and add a fixture).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..rdf.terms import Node, Variable
from . import algebra as alg
from .evaluator import (EvaluationError, EvaluationStats, _apply_aggregate,
                        _common_vars, _sort_key)
from .expressions import ExpressionError, ebv
from .optimizer import GraphStatistics, order_patterns
from .solution import (Mapping, Multiset, distinct, hash_join, left_join,
                       minus, project)


class ReferenceEvaluator:
    """Evaluates an algebra tree against a dataset (dict-based multisets)."""

    def __init__(self, dataset, optimize: bool = True,
                 max_rows: Optional[int] = None, cache_bgps: bool = True):
        self.dataset = dataset
        self.optimize = optimize
        self.max_rows = max_rows  # safety valve for runaway queries
        self.cache_bgps = cache_bgps
        self.stats = EvaluationStats()
        self._stats_cache: Dict[int, GraphStatistics] = {}
        # Common-subexpression cache: identical BGPs (e.g. the repeated
        # pattern inside a full-outer-join's UNION branches) are evaluated
        # once per query.  Cached mappings are never mutated downstream
        # (every operator builds fresh dicts), so sharing is safe.
        self._bgp_cache: Dict[Tuple, Multiset] = {}

    # ------------------------------------------------------------------
    def evaluate_query(self, query: alg.Query,
                       default_graph_uri: Optional[str] = None) -> Multiset:
        graph = self._resolve_graphs(query.from_graphs, default_graph_uri)
        return self.evaluate(query.pattern, graph, top=True)

    def _resolve_graphs(self, from_graphs: List[str],
                        default_graph_uri: Optional[str]):
        if from_graphs:
            missing = [u for u in from_graphs if u not in self.dataset]
            if missing:
                raise EvaluationError("unknown graph(s): %s" % ", ".join(missing))
            if len(from_graphs) == 1:
                return self.dataset.graph(from_graphs[0])
            return self.dataset.union_view(from_graphs)
        if default_graph_uri is not None:
            return self.dataset.graph(default_graph_uri)
        graphs = list(self.dataset)
        if len(graphs) == 1:
            return graphs[0]
        return self.dataset.union_view()

    # ------------------------------------------------------------------
    def evaluate(self, node: alg.AlgebraNode, graph, top: bool = False) -> Multiset:
        method = getattr(self, "_eval_%s" % type(node).__name__.lower(), None)
        if method is None:
            raise EvaluationError("cannot evaluate %r" % node)
        if isinstance(node, alg.Project) and not top:
            self.stats.materialized_subqueries += 1
        result = method(node, graph)
        self.stats.intermediate_rows += len(result)
        if self.max_rows is not None and len(result) > self.max_rows:
            raise EvaluationError("intermediate result exceeds max_rows=%d"
                                  % self.max_rows)
        return result

    # ------------------------------------------------------------------
    # Pattern evaluation
    # ------------------------------------------------------------------
    def _graph_stats(self, graph) -> GraphStatistics:
        key = id(graph)
        stats = self._stats_cache.get(key)
        if stats is None:
            stats = GraphStatistics(graph)
            self._stats_cache[key] = stats
        return stats

    def _eval_bgp(self, node: alg.BGP, graph) -> Multiset:
        self.stats.bgp_count += 1
        patterns = node.triples
        if not patterns:
            return [{}]
        cache_key = None
        if self.cache_bgps:
            cache_key = (id(graph),
                         tuple(sorted(patterns, key=lambda t: repr(t))))
            cached = self._bgp_cache.get(cache_key)
            if cached is not None:
                self.stats.bgp_cache_hits += 1
                return cached
        if self.optimize and len(patterns) > 1:
            patterns = order_patterns(patterns, self._graph_stats(graph))
        solutions: Multiset = [{}]
        for pattern in patterns:
            solutions = self._match_pattern(pattern, solutions, graph)
            if not solutions:
                break
        if cache_key is not None:
            self._bgp_cache[cache_key] = solutions
        return solutions

    def _match_pattern(self, pattern, solutions: Multiset, graph) -> Multiset:
        """Extend each solution with matches of one triple pattern."""
        s_term, p_term, o_term = pattern
        out: Multiset = []
        for mu in solutions:
            s = self._ground(s_term, mu)
            p = self._ground(p_term, mu)
            o = self._ground(o_term, mu)
            for ts, tp, to in graph.triples(s, p, o):
                self.stats.pattern_matches += 1
                new = dict(mu)
                ok = True
                for term, value in ((s_term, ts), (p_term, tp), (o_term, to)):
                    if isinstance(term, Variable):
                        existing = new.get(term.name)
                        if existing is None:
                            new[term.name] = value
                        elif existing != value:
                            # Repeated variable in the pattern must agree.
                            ok = False
                            break
                if ok:
                    out.append(new)
        return out

    @staticmethod
    def _ground(term, mu: Mapping) -> Optional[Node]:
        if isinstance(term, Variable):
            return mu.get(term.name)
        return term

    # ------------------------------------------------------------------
    def _eval_join(self, node: alg.Join, graph) -> Multiset:
        left = self.evaluate(node.left, graph)
        if not left:
            return []
        right = self.evaluate(node.right, graph)
        if not right:
            return []
        self.stats.joins += 1
        common = _common_vars(node.left, node.right)
        return hash_join(left, right, common)

    def _eval_leftjoin(self, node: alg.LeftJoin, graph) -> Multiset:
        left = self.evaluate(node.left, graph)
        if not left:
            return []
        right = self.evaluate(node.right, graph)
        self.stats.joins += 1
        common = _common_vars(node.left, node.right)
        if node.condition is None:
            return left_join(left, right, common)
        # LeftJoin with condition: extend when compatible AND condition holds.
        out: Multiset = []
        for mu in left:
            matched = False
            for other in right:
                if _compatible(mu, other):
                    merged = dict(mu)
                    merged.update(other)
                    try:
                        if ebv(node.condition.evaluate(merged)):
                            out.append(merged)
                            matched = True
                    except ExpressionError:
                        pass
            if not matched:
                out.append(mu)
        return out

    def _eval_union(self, node: alg.Union, graph) -> Multiset:
        return self.evaluate(node.left, graph) + self.evaluate(node.right, graph)

    def _eval_filter(self, node: alg.Filter, graph) -> Multiset:
        solutions = self.evaluate(node.pattern, graph)
        out = []
        condition = node.condition
        for mu in solutions:
            try:
                if ebv(condition.evaluate(mu)):
                    out.append(mu)
            except ExpressionError:
                continue  # errors eliminate the solution
        return out

    def _eval_extend(self, node: alg.Extend, graph) -> Multiset:
        solutions = self.evaluate(node.pattern, graph)
        out = []
        for mu in solutions:
            new = dict(mu)
            try:
                value = node.expression.evaluate(mu)
                new[node.var] = value
            except ExpressionError:
                pass  # leave unbound (SPARQL Extend error semantics)
            out.append(new)
        return out

    def _eval_group(self, node: alg.Group, graph) -> Multiset:
        solutions = self.evaluate(node.pattern, graph)
        group_vars = node.group_vars
        groups: Dict[Tuple, Multiset] = {}
        if group_vars:
            for mu in solutions:
                key = tuple(mu.get(v) for v in group_vars)
                groups.setdefault(key, []).append(mu)
        else:
            # Implicit single group; COUNT over an empty pattern is 0.
            groups[()] = solutions

        out: Multiset = []
        for key, members in groups.items():
            if not members and not group_vars:
                members = []
            row: Mapping = {}
            for var, value in zip(group_vars, key):
                if value is not None:
                    row[var] = value
            for aggregate in node.aggregates:
                value = _apply_aggregate(aggregate, members)
                if value is not None:
                    row[aggregate.alias] = value
            if node.having is not None:
                try:
                    if not ebv(node.having.evaluate(row)):
                        continue
                except ExpressionError:
                    continue
            out.append(row)
        return out

    def _eval_project(self, node: alg.Project, graph) -> Multiset:
        solutions = self.evaluate(node.pattern, graph)
        if node.variables is None:
            # SELECT *: drop synthetic aggregate helper variables.
            return [
                {k: v for k, v in mu.items() if not k.startswith("__agg_")}
                for mu in solutions
            ]
        return project(solutions, node.variables)

    def _eval_distinct(self, node: alg.Distinct, graph) -> Multiset:
        return distinct(self.evaluate(node.pattern, graph))

    def _eval_orderby(self, node: alg.OrderBy, graph) -> Multiset:
        solutions = self.evaluate(node.pattern, graph)
        for var, direction in reversed(node.keys):
            solutions = sorted(solutions, key=lambda mu: _sort_key(mu.get(var)),
                               reverse=(direction == "desc"))
        return list(solutions)

    def _eval_slice(self, node: alg.Slice, graph) -> Multiset:
        solutions = self.evaluate(node.pattern, graph)
        start = node.offset
        end = None if node.limit is None else start + node.limit
        return solutions[start:end]

    def _eval_graphpattern(self, node: alg.GraphPattern, graph) -> Multiset:
        target = self.dataset.graph(node.graph_uri)
        return self.evaluate(node.pattern, target)

    def _eval_inlinedata(self, node: alg.InlineData, graph) -> Multiset:
        out: Multiset = []
        for row in node.rows:
            mapping = {var: value
                       for var, value in zip(node.variables, row)
                       if value is not None}
            out.append(mapping)
        return out

    def _eval_minus(self, node: alg.Minus, graph) -> Multiset:
        left = self.evaluate(node.left, graph)
        if not left:
            return []
        right = self.evaluate(node.right, graph)
        common = _common_vars(node.left, node.right)
        return minus(left, right, common)

    def _eval_filterexists(self, node: alg.FilterExists, graph) -> Multiset:
        solutions = self.evaluate(node.pattern, graph)
        if not solutions:
            return []
        inner = self.evaluate(node.group, graph)
        common = _common_vars(node.pattern, node.group)
        out: Multiset = []
        for mu in solutions:
            exists = any(_compatible_on(mu, other, common) for other in inner)
            if exists != node.negated:
                out.append(mu)
        return out


def _compatible_on(mu1: Mapping, mu2: Mapping, variables) -> bool:
    for var in variables:
        v1 = mu1.get(var)
        if v1 is None:
            continue
        v2 = mu2.get(var)
        if v2 is not None and v1 != v2:
            return False
    return True


def _compatible(mu1: Mapping, mu2: Mapping) -> bool:
    for var, value in mu1.items():
        other = mu2.get(var)
        if other is not None and other != value:
            return False
    return True
