"""Query result sets and conversion to dataframes.

A :class:`ResultSet` is the engine's output: an ordered list of variable
names and a list of rows of RDF terms (``None`` for unbound).  Conversion to
the repo's :class:`~repro.dataframe.DataFrame` maps RDF terms to natural
Python values (URIs to strings, typed literals to int/float/bool/str).
"""

from __future__ import annotations

import threading
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from ..dataframe import DataFrame
from ..rdf.terms import BlankNode, Literal, Node, URIRef


def term_to_python(term: Optional[Node]) -> Any:
    """Convert an RDF term to a natural Python value."""
    if term is None:
        return None
    if isinstance(term, URIRef):
        return str(term)
    if isinstance(term, Literal):
        return term.value
    if isinstance(term, BlankNode):
        return "_:" + term.label
    raise TypeError("not an RDF term: %r" % (term,))


class ResultSet:
    """An ordered bag of solution rows."""

    def __init__(self, variables: Sequence[str],
                 rows: List[Tuple[Optional[Node], ...]]):
        self.variables = list(variables)
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[Optional[Node], ...]]:
        return iter(self.rows)

    def __repr__(self):
        return "ResultSet(%d rows, vars=%s)" % (len(self.rows), self.variables)

    @classmethod
    def from_mappings(cls, solutions, variables: Optional[Sequence[str]] = None
                      ) -> "ResultSet":
        """Build from the reference evaluator's list-of-dicts multiset."""
        if variables is None:
            seen: List[str] = []
            seen_set = set()
            for mu in solutions:
                for var in mu:
                    if var not in seen_set:
                        seen_set.add(var)
                        seen.append(var)
            variables = seen
        rows = [tuple(mu.get(v) for v in variables) for mu in solutions]
        return cls(variables, rows)

    @classmethod
    def from_table(cls, table, dictionary,
                   variables: Optional[Sequence[str]] = None) -> "ResultSet":
        """Build from a columnar :class:`~.solution.SolutionTable`.

        This is the engine's decode boundary: integer term ids become RDF
        term objects here, once per output cell, and nowhere earlier in the
        pipeline."""
        if variables is None:
            variables = list(table.variables)
        positions = [table.index.get(v) for v in variables]
        decode = dictionary.decode
        if positions == list(range(len(table.variables))):
            # Identity projection: decode cells positionally.
            rows = [tuple([None if tid is None else decode(tid)
                           for tid in row])
                    for row in table.rows]
        else:
            rows = [tuple([None if p is None or row[p] is None
                           else decode(row[p]) for p in positions])
                    for row in table.rows]
        return cls(variables, rows)

    def to_dataframe(self) -> DataFrame:
        """Convert to a DataFrame of Python values (the paper's final step)."""
        columns = {var: [] for var in self.variables}
        for row in self.rows:
            for var, term in zip(self.variables, row):
                columns[var].append(term_to_python(term))
        return DataFrame(columns, columns=self.variables)

    def to_term_dataframe(self) -> DataFrame:
        """Convert to a DataFrame of raw RDF terms (``None`` for unbound).

        Used by baselines that must distinguish URIs from literals after
        extraction (e.g. the KG-embedding ``isURI`` filter done client-side).
        """
        columns = {var: [] for var in self.variables}
        for row in self.rows:
            for var, term in zip(self.variables, row):
                columns[var].append(term)
        return DataFrame(columns, columns=self.variables)

    def slice(self, offset: int, limit: int) -> "ResultSet":
        """A page of the result (used by the simulated endpoint)."""
        return ResultSet(self.variables, self.rows[offset:offset + limit])

    def distinct(self) -> "ResultSet":
        """Collapse duplicate rows to multiplicity one (first occurrence
        wins), via the same streaming dedup the engine's executor uses."""
        from .solution import stream_distinct
        rows: List[Tuple[Optional[Node], ...]] = []
        for batch in stream_distinct(iter((self.rows,))):
            rows.extend(batch)
        return ResultSet(self.variables, rows)


class ResultStream:
    """A lazily-pulled query result — the engine's streaming cursor.

    Wraps the decoded row iterator of a streaming evaluation.  Rows are
    materialized incrementally into :attr:`rows` as they are pulled, so a
    page fetch of ``offset + n`` rows costs O(offset + n) local work and
    re-reading an already-fetched page costs nothing.  This is what the
    simulated endpoint keeps per query instead of a fully-materialized
    :class:`ResultSet`.
    """

    def __init__(self, variables: Sequence[str], row_iter,
                 arm_deadline=None):
        self.variables = list(variables)
        self.rows: List[Tuple[Optional[Node], ...]] = []
        self.exhausted = False
        self._iter = row_iter
        self._arm_deadline = arm_deadline
        # Concurrent pulls (the endpoint shares one cursor per query
        # across server threads) must not re-enter the generator — a
        # Python generator raises "already executing" — or interleave
        # buffer appends.  All pulling serializes on this lock; reads of
        # already-materialized rows stay lock-free.
        self._pull_lock = threading.Lock()

    def arm_deadline(self, seconds) -> None:
        """Restart the evaluation-time budget covering subsequent pulls.

        A long-lived cursor (the endpoint keeps one per query) serves many
        requests; each caller's timeout should budget *its own* pull, not
        the wall-clock lifetime of the cursor.  No-op when the underlying
        stream has no deadline support (the reference-plane fallback)."""
        if self._arm_deadline is not None:
            self._arm_deadline(seconds)

    def fetch_until(self, count: int) -> None:
        """Pull from the underlying iterator until ``count`` rows are
        materialized (or the stream ends).  Safe under concurrent pulls:
        one thread advances the iterator at a time."""
        rows = self.rows
        if len(rows) >= count or self.exhausted:
            return
        it = self._iter
        with self._pull_lock:
            append = rows.append
            while len(rows) < count and not self.exhausted:
                try:
                    append(next(it))
                except StopIteration:
                    self.exhausted = True

    def page(self, offset: int, limit: int) -> ResultSet:
        """Materialize and return one page of the result."""
        self.fetch_until(offset + limit)
        return ResultSet(self.variables, self.rows[offset:offset + limit])

    def has_more(self, offset: int) -> bool:
        """True when at least one row exists at or beyond ``offset``."""
        self.fetch_until(offset + 1)
        return len(self.rows) > offset

    def result(self) -> ResultSet:
        """Drain the stream into a complete :class:`ResultSet`."""
        while not self.exhausted:
            self.fetch_until(len(self.rows) + 4096)
        return ResultSet(self.variables, self.rows)

    def __repr__(self):
        return "ResultStream(%d rows fetched%s, vars=%s)" % (
            len(self.rows), " (exhausted)" if self.exhausted else "",
            self.variables)
