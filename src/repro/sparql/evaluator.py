"""Bottom-up evaluation of SPARQL algebra with bag semantics — columnar.

Implements the semantics summarized in Section 5.2 of the paper.  The
evaluator is deliberately structured the way the paper's cost model assumes:

* A :class:`~.algebra.BGP` is evaluated as an index-nested-loop join over
  the graph's SPO/POS/OSP indexes, with join order chosen by the optimizer
  and bindings propagated pattern-to-pattern.  Flat queries are cheap.
* A nested SELECT (:class:`~.algebra.Project` below the root) is always
  *materialized independently* — no bindings flow into it — and then
  hash-joined with its siblings.  This is exactly why the paper's naive
  one-subquery-per-operator queries are slow, and it makes the engine
  reproduce the naive-vs-optimized gap of Figures 3 and 5.

The data plane is *dictionary-encoded and columnar*: solutions are
:class:`~.solution.SolutionTable` objects (schema header + rows of dense
integer term ids), pattern matching runs on :meth:`Graph.triples_ids`,
joins hash ints, and RDF term objects are materialized only at the result
boundary or lazily inside expression evaluation (:class:`~.solution.RowView`).
The original dict-based evaluator survives as
:class:`~.reference.ReferenceEvaluator` for differential tests and the
perf-report baseline.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..rdf.dataset import Dataset
from ..rdf.terms import Literal, Variable
from . import algebra as alg
from .expressions import ExpressionError, VarExpr, ebv
from .optimizer import GraphStatistics, order_patterns
from .solution import (RowView, SolutionTable, _rows_compatible,
                       table_distinct, table_join, table_left_join,
                       table_minus, table_project, table_union)


class EvaluationError(RuntimeError):
    """Raised when a query cannot be evaluated (e.g. missing graph)."""


class QueryTimeout(RuntimeError):
    """Raised when a query exceeds the engine's time budget.

    With a ``deadline`` set on the evaluator this trips *mid-query* — the
    pattern matcher checks the clock while rows are being produced — so a
    runaway cross product is abandoned instead of run to completion.
    """


class EvaluationStats:
    """Counters exposed for tests and the ablation benchmarks."""

    def __init__(self):
        self.bgp_count = 0
        self.bgp_cache_hits = 0
        self.pattern_matches = 0
        self.intermediate_rows = 0
        self.materialized_subqueries = 0
        self.joins = 0

    def __repr__(self):
        return ("EvaluationStats(bgps=%d, cache_hits=%d, matches=%d, "
                "rows=%d, subqueries=%d, joins=%d)" % (
                    self.bgp_count, self.bgp_cache_hits,
                    self.pattern_matches, self.intermediate_rows,
                    self.materialized_subqueries, self.joins))

    def as_dict(self) -> Dict[str, int]:
        return {"bgp_count": self.bgp_count,
                "bgp_cache_hits": self.bgp_cache_hits,
                "pattern_matches": self.pattern_matches,
                "intermediate_rows": self.intermediate_rows,
                "materialized_subqueries": self.materialized_subqueries,
                "joins": self.joins}


class Evaluator:
    """Evaluates an algebra tree against a dataset on the columnar plane."""

    def __init__(self, dataset: Dataset, optimize: bool = True,
                 max_rows: Optional[int] = None, cache_bgps: bool = True,
                 deadline: Optional[float] = None):
        self.dataset = dataset
        self.optimize = optimize
        self.max_rows = max_rows  # safety valve for runaway queries
        # Absolute time.perf_counter() deadline; checked between operators
        # and inside the pattern matcher's row production.
        self.deadline = deadline
        self.cache_bgps = cache_bgps
        self.stats = EvaluationStats()
        self.dictionary = None  # set when the query's graphs are resolved
        self._stats_cache: Dict[int, GraphStatistics] = {}
        # Common-subexpression cache: identical BGPs (e.g. the repeated
        # pattern inside a full-outer-join's UNION branches) are evaluated
        # once per query.  Cached tables are never mutated downstream
        # (every operator builds fresh row lists), so sharing is safe.
        self._bgp_cache: Dict[Tuple, SolutionTable] = {}

    # ------------------------------------------------------------------
    def evaluate_query(self, query: alg.Query,
                       default_graph_uri: Optional[str] = None
                       ) -> SolutionTable:
        graph = self._resolve_graphs(query.from_graphs, default_graph_uri)
        self.dictionary = graph.dictionary
        return self.evaluate(query.pattern, graph, top=True)

    def _resolve_graphs(self, from_graphs: List[str],
                        default_graph_uri: Optional[str]):
        if from_graphs:
            missing = [u for u in from_graphs if u not in self.dataset]
            if missing:
                raise EvaluationError("unknown graph(s): %s" % ", ".join(missing))
            if len(from_graphs) == 1:
                return self.dataset.graph(from_graphs[0])
            return self.dataset.union_view(from_graphs)
        if default_graph_uri is not None:
            return self.dataset.graph(default_graph_uri)
        graphs = list(self.dataset)
        if len(graphs) == 1:
            return graphs[0]
        return self.dataset.union_view()

    # ------------------------------------------------------------------
    def evaluate(self, node: alg.AlgebraNode, graph,
                 top: bool = False) -> SolutionTable:
        if self.deadline is not None \
                and time.perf_counter() > self.deadline:
            raise QueryTimeout("query exceeded its time budget at %r" % node)
        method = getattr(self, "_eval_%s" % type(node).__name__.lower(), None)
        if method is None:
            raise EvaluationError("cannot evaluate %r" % node)
        if isinstance(node, alg.Project) and not top:
            self.stats.materialized_subqueries += 1
        result = method(node, graph)
        self.stats.intermediate_rows += len(result.rows)
        if self.max_rows is not None and len(result.rows) > self.max_rows:
            raise EvaluationError("intermediate result exceeds max_rows=%d"
                                  % self.max_rows)
        return result

    # ------------------------------------------------------------------
    # Pattern evaluation
    # ------------------------------------------------------------------
    def _graph_stats(self, graph) -> GraphStatistics:
        key = id(graph)
        stats = self._stats_cache.get(key)
        if stats is None:
            stats = GraphStatistics(graph)
            self._stats_cache[key] = stats
        return stats

    def _eval_bgp(self, node: alg.BGP, graph) -> SolutionTable:
        self.stats.bgp_count += 1
        patterns = node.triples
        if not patterns:
            return SolutionTable.unit()
        cache_key = None
        if self.cache_bgps:
            cache_key = (id(graph),
                         tuple(sorted(patterns, key=lambda t: repr(t))))
            cached = self._bgp_cache.get(cache_key)
            if cached is not None:
                self.stats.bgp_cache_hits += 1
                return cached
        if self.optimize and len(patterns) > 1:
            patterns = order_patterns(patterns, self._graph_stats(graph))
        schema: List[str] = []
        rows: List[tuple] = [()]
        for i, pattern in enumerate(patterns):
            schema, rows = self._match_pattern(pattern, schema, rows, graph)
            if not rows:
                # Complete the schema so downstream schema-driven operators
                # (UNION padding, projection) see every BGP variable.
                for later in patterns[i + 1:]:
                    for term in later:
                        if isinstance(term, Variable) \
                                and term.name not in schema:
                            schema.append(term.name)
                break
        table = SolutionTable(schema, rows)
        if cache_key is not None:
            self._bgp_cache[cache_key] = table
        return table

    def _match_pattern(self, pattern, schema: List[str], rows, graph):
        """Extend each row with id-level matches of one triple pattern."""
        lookup = self.dictionary.lookup
        index = {v: i for i, v in enumerate(schema)}
        schema = list(schema)
        # A slot per position: ('c', id) constant, ('b', col) bound var,
        # ('n', k) k-th newly-introduced var (repeats share one k).
        slots = []
        new_pos: Dict[str, int] = {}
        missing_constant = False
        for term in pattern:
            if isinstance(term, Variable):
                name = term.name
                col = index.get(name)
                if col is not None:
                    slots.append(("b", col))
                elif name in new_pos:
                    slots.append(("n", new_pos[name]))
                else:
                    k = len(new_pos)
                    new_pos[name] = k
                    schema.append(name)
                    slots.append(("n", k))
            else:
                tid = lookup(term)
                if tid is None:
                    missing_constant = True
                    slots.append(("c", None))
                else:
                    slots.append(("c", tid))
        if missing_constant:
            return schema, []

        (s_kind, s_val), (p_kind, p_val), (o_kind, o_val) = slots
        n_new = len(new_pos)
        stats = self.stats
        out: List[tuple] = []
        append = self._guarded_append(out)
        matches = 0

        # The bound/free shape of the pattern is fixed across rows ('b'
        # columns are always bound inside a BGP), so dispatch to a
        # specialized index probe once per *pattern*, not once per row.
        s_free = s_kind == "n"
        p_free = p_kind == "n"
        o_free = o_kind == "n"

        def val_of(kind, val):
            if kind == "c":
                return lambda row, v=val: v
            return lambda row, c=val: row[c]

        if not p_free and not s_free and not o_free:
            # Fully bound: a containment probe per row.
            s_of, p_of, o_of = (val_of(s_kind, s_val), val_of(p_kind, p_val),
                                val_of(o_kind, o_val))
            contains = graph.contains_ids
            for row in rows:
                if contains(s_of(row), p_of(row), o_of(row)):
                    matches += 1
                    append(row)
        elif not p_free and not s_free and o_free:
            # Forward expansion: (s, p) -> objects.  The classic
            # index-nested-loop step of the paper's flat queries.
            s_of, p_of = val_of(s_kind, s_val), val_of(p_kind, p_val)
            objects_for = graph.objects_for
            for row in rows:
                objs = objects_for(s_of(row), p_of(row))
                if objs:
                    matches += len(objs)
                    for o in objs:
                        append(row + (o,))
        elif not p_free and s_free and not o_free:
            # Backward expansion: (p, o) -> subjects.
            p_of, o_of = val_of(p_kind, p_val), val_of(o_kind, o_val)
            subjects_for = graph.subjects_for
            for row in rows:
                subs = subjects_for(p_of(row), o_of(row))
                if subs:
                    matches += len(subs)
                    for s in subs:
                        append(row + (s,))
        elif not p_free and s_free and o_free and p_kind == "c":
            # Predicate scan with a constant predicate: materialize the
            # (s, o) pairs once and reuse them for every input row.
            pairs = list(graph.so_pairs(p_val))
            if slots[0][1] == slots[2][1]:  # ?x p ?x — one new column
                hits = [(s,) for s, o in pairs if s == o]
            else:
                hits = pairs
            for row in rows:
                matches += len(pairs)
                for extra in hits:
                    append(row + extra)
        else:
            # General shape (variable predicate, or repeated fresh
            # variables across positions): slot-interpreting loop.
            triples_ids = graph.triples_ids
            for row in rows:
                s = None if s_free else (s_val if s_kind == "c"
                                         else row[s_val])
                p = None if p_free else (p_val if p_kind == "c"
                                         else row[p_val])
                o = None if o_free else (o_val if o_kind == "c"
                                         else row[o_val])
                for matched in triples_ids(s, p, o):
                    matches += 1
                    extras = [None] * n_new
                    ok = True
                    for (kind, val), tid in zip(slots, matched):
                        if kind == "n":
                            prev = extras[val]
                            if prev is None:
                                extras[val] = tid
                            elif prev != tid:
                                # Repeated variable must agree.
                                ok = False
                                break
                    if ok:
                        append(row + tuple(extras))
        stats.pattern_matches += matches
        return schema, out

    def _guarded_append(self, out: List[tuple]):
        """The row sink for pattern matching.

        The plain ``list.append`` on the hot path; when a row budget or a
        deadline is armed, a wrapper that trips the safety valve *while*
        rows are being produced — an exploding cross product is abandoned
        mid-pattern instead of materialized and then rejected.
        """
        limit = self.max_rows
        deadline = self.deadline
        if limit is None and deadline is None:
            return out.append
        raw_append = out.append

        def append(row):
            raw_append(row)
            n = len(out)
            if limit is not None and n > limit:
                raise EvaluationError(
                    "intermediate result exceeds max_rows=%d "
                    "(tripped mid-pattern)" % limit)
            if deadline is not None and not (n & 1023) \
                    and time.perf_counter() > deadline:
                raise QueryTimeout(
                    "query exceeded its time budget after %d rows "
                    "of a pattern match" % n)

        return append

    # ------------------------------------------------------------------
    def _eval_join(self, node: alg.Join, graph) -> SolutionTable:
        left = self.evaluate(node.left, graph)
        if not left.rows:
            return SolutionTable(left.variables)
        right = self.evaluate(node.right, graph)
        if not right.rows:
            return SolutionTable(left.variables + tuple(
                v for v in right.variables if v not in left.index))
        self.stats.joins += 1
        return table_join(left, right)

    def _eval_leftjoin(self, node: alg.LeftJoin, graph) -> SolutionTable:
        left = self.evaluate(node.left, graph)
        if not left.rows:
            return SolutionTable(left.variables)
        right = self.evaluate(node.right, graph)
        self.stats.joins += 1
        if node.condition is None:
            return table_left_join(left, right)
        # LeftJoin with a condition: candidates are found by the same
        # hash-partitioning as the unconditional join; the condition is
        # evaluated lazily (terms decoded on access) within buckets only.
        out_vars = left.variables + tuple(
            v for v in right.variables if v not in left.index)
        out_index = {v: i for i, v in enumerate(out_vars)}
        decode = self.dictionary.decode
        condition = node.condition

        def accept(merged_row) -> bool:
            try:
                return ebv(condition.evaluate(
                    RowView(out_index, merged_row, decode)))
            except ExpressionError:
                return False

        return table_left_join(left, right, accept=accept)

    def _eval_union(self, node: alg.Union, graph) -> SolutionTable:
        return table_union(self.evaluate(node.left, graph),
                           self.evaluate(node.right, graph))

    def _eval_filter(self, node: alg.Filter, graph) -> SolutionTable:
        table = self.evaluate(node.pattern, graph)
        condition = node.condition
        index = table.index
        decode = self.dictionary.decode
        rows = []
        for row in table.rows:
            try:
                if ebv(condition.evaluate(RowView(index, row, decode))):
                    rows.append(row)
            except ExpressionError:
                continue  # errors eliminate the solution
        return SolutionTable(table.variables, rows)

    def _eval_extend(self, node: alg.Extend, graph) -> SolutionTable:
        table = self.evaluate(node.pattern, graph)
        index = table.index
        decode = self.dictionary.decode
        encode = self.dictionary.encode
        target = index.get(node.var)
        rows = []
        for row in table.rows:
            try:
                value = node.expression.evaluate(RowView(index, row, decode))
                tid = encode(value)
            except ExpressionError:
                # SPARQL Extend error semantics: leave the variable as it
                # was — unbound if fresh, the existing binding otherwise.
                rows.append(row + (None,) if target is None else row)
                continue
            if target is None:
                rows.append(row + (tid,))
            else:
                patched = list(row)
                patched[target] = tid
                rows.append(tuple(patched))
        variables = table.variables if target is not None \
            else table.variables + (node.var,)
        return SolutionTable(variables, rows)

    def _eval_group(self, node: alg.Group, graph) -> SolutionTable:
        table = self.evaluate(node.pattern, graph)
        group_vars = node.group_vars
        index = table.index
        decode = self.dictionary.decode
        encode = self.dictionary.encode
        groups: Dict[Tuple, list] = {}
        if group_vars:
            positions = [index.get(v) for v in group_vars]
            if len(positions) == 1 and positions[0] is not None:
                # Scalar keys: no per-row tuple construction.
                p0 = positions[0]
                scalar_groups: Dict = {}
                for row in table.rows:
                    scalar_groups.setdefault(row[p0], []).append(row)
                groups = {(k,): v for k, v in scalar_groups.items()}
            else:
                for row in table.rows:
                    key = tuple(None if p is None else row[p]
                                for p in positions)
                    groups.setdefault(key, []).append(row)
        else:
            # Implicit single group; COUNT over an empty pattern is 0.
            groups[()] = table.rows

        out_vars = tuple(group_vars) + tuple(a.alias
                                             for a in node.aggregates)
        out_index = {v: i for i, v in enumerate(out_vars)}
        out_rows = []
        for key, members in groups.items():
            views = None  # RowViews built lazily: only complex expressions
            cells: List[Optional[int]] = list(key)
            for aggregate in node.aggregates:
                value = _aggregate_columnar(aggregate, members, index, decode)
                if value is _SLOW:
                    if views is None:
                        views = [RowView(index, row, decode)
                                 for row in members]
                    value = _apply_aggregate(aggregate, views)
                cells.append(None if value is None else encode(value))
            out_row = tuple(cells)
            if node.having is not None:
                try:
                    if not ebv(node.having.evaluate(
                            RowView(out_index, out_row, decode))):
                        continue
                except ExpressionError:
                    continue
            out_rows.append(out_row)
        return SolutionTable(out_vars, out_rows)

    def _eval_project(self, node: alg.Project, graph) -> SolutionTable:
        table = self.evaluate(node.pattern, graph)
        if node.variables is None:
            # SELECT *: drop synthetic aggregate helper variables.
            keep = [v for v in table.variables if not v.startswith("__agg_")]
            if len(keep) == len(table.variables):
                return table
            return table_project(table, keep)
        return table_project(table, node.variables)

    def _eval_distinct(self, node: alg.Distinct, graph) -> SolutionTable:
        return table_distinct(self.evaluate(node.pattern, graph))

    def _eval_orderby(self, node: alg.OrderBy, graph) -> SolutionTable:
        table = self.evaluate(node.pattern, graph)
        rows = table.rows
        decode = self.dictionary.decode
        for var, direction in reversed(node.keys):
            pos = table.index.get(var)
            if pos is None:
                continue  # unbound everywhere: stable no-op
            rows = sorted(rows,
                          key=lambda row: _sort_key(
                              None if row[pos] is None else decode(row[pos])),
                          reverse=(direction == "desc"))
        return SolutionTable(table.variables, list(rows))

    def _eval_slice(self, node: alg.Slice, graph) -> SolutionTable:
        table = self.evaluate(node.pattern, graph)
        start = node.offset
        end = None if node.limit is None else start + node.limit
        return SolutionTable(table.variables, table.rows[start:end])

    def _eval_graphpattern(self, node: alg.GraphPattern, graph
                           ) -> SolutionTable:
        target = self.dataset.graph(node.graph_uri)
        return self.evaluate(node.pattern, target)

    def _eval_inlinedata(self, node: alg.InlineData, graph) -> SolutionTable:
        encode = self.dictionary.encode
        rows = [tuple(None if value is None else encode(value)
                      for value in row)
                for row in node.rows]
        return SolutionTable(node.variables, rows)

    def _eval_minus(self, node: alg.Minus, graph) -> SolutionTable:
        left = self.evaluate(node.left, graph)
        if not left.rows:
            return SolutionTable(left.variables)
        right = self.evaluate(node.right, graph)
        return table_minus(left, right)

    def _eval_filterexists(self, node: alg.FilterExists, graph
                           ) -> SolutionTable:
        table = self.evaluate(node.pattern, graph)
        if not table.rows:
            return table
        inner = self.evaluate(node.group, graph)
        shared = [(table.index[v], inner.index[v])
                  for v in inner.variables if v in table.index]
        rows = []
        inner_rows = inner.rows
        negated = node.negated
        for row in table.rows:
            exists = any(_rows_compatible(row, other, shared)
                         for other in inner_rows)
            if exists != negated:
                rows.append(row)
        return SolutionTable(table.variables, rows)


# ----------------------------------------------------------------------
# Helpers (shared with the reference evaluator)
# ----------------------------------------------------------------------

def _common_vars(left: alg.AlgebraNode, right: alg.AlgebraNode) -> List[str]:
    left_vars = set(left.in_scope())
    return [v for v in right.in_scope() if v in left_vars]


#: Sentinel: the columnar aggregate fast path does not apply.
_SLOW = object()


def _aggregate_columnar(aggregate: alg.Aggregate, rows, index, decode):
    """Aggregate directly over id columns when the aggregate expression is
    a bare variable (the dominant case: COUNT(?m), SUM(?y), ...).

    COUNT needs no decoding at all — id equality is term equality, so
    DISTINCT deduplicates on ids; the numeric aggregates decode only the
    (possibly deduplicated) column.  Returns ``_SLOW`` when the expression
    is complex and the caller must fall back to per-row views."""
    expr = aggregate.expression
    if expr is None:  # COUNT(*)
        if aggregate.function != "count":
            raise EvaluationError("only COUNT supports *")
        return Literal(len(rows))
    if type(expr) is not VarExpr:
        return _SLOW
    pos = index.get(expr.name)
    if pos is None:
        ids = []
    else:
        ids = [row[pos] for row in rows if row[pos] is not None]
    if aggregate.distinct:
        seen = set()
        unique = []
        for tid in ids:
            if tid not in seen:
                seen.add(tid)
                unique.append(tid)
        ids = unique
    if aggregate.function == "count":
        return Literal(len(ids))
    return _finish_aggregate(aggregate.function,
                             [decode(tid) for tid in ids])


def _apply_aggregate(aggregate: alg.Aggregate, members):
    """Apply one aggregate over a group's members (dicts or RowViews)."""
    values = []
    if aggregate.expression is None:  # COUNT(*)
        if aggregate.function != "count":
            raise EvaluationError("only COUNT supports *")
        return Literal(len(members))
    for mu in members:
        try:
            values.append(aggregate.expression.evaluate(mu))
        except ExpressionError:
            continue
    if aggregate.distinct:
        seen = set()
        unique = []
        for value in values:
            if value not in seen:
                seen.add(value)
                unique.append(value)
        values = unique
    return _finish_aggregate(aggregate.function, values)


def _finish_aggregate(function: str, values):
    if function == "count":
        return Literal(len(values))
    if function == "sample":
        return values[0] if values else None
    if function == "group_concat":
        parts = [v.lexical if isinstance(v, Literal) else str(v) for v in values]
        return Literal(" ".join(parts))
    numbers = []
    for value in values:
        if isinstance(value, Literal) and value.is_numeric:
            numbers.append(value.value)
        else:
            return None  # type error -> aggregate is an error -> unbound
    if function == "sum":
        return Literal(sum(numbers) if numbers else 0)
    if not numbers:
        return None
    if function == "min":
        return Literal(min(numbers))
    if function == "max":
        return Literal(max(numbers))
    if function == "avg":
        return Literal(sum(numbers) / len(numbers))
    raise EvaluationError("unknown aggregate %r" % function)


def _sort_key(value):
    """Total order for ORDER BY: unbound < numbers < strings/URIs."""
    if value is None:
        return (0, 0, "")
    if isinstance(value, Literal):
        if value.is_numeric:
            return (1, value.value, "")
        return (2, 0, str(value.lexical))
    return (2, 0, str(value))
