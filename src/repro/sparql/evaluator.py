"""Bottom-up evaluation of SPARQL algebra with bag semantics — columnar.

Implements the semantics summarized in Section 5.2 of the paper.  The
evaluator is deliberately structured the way the paper's cost model assumes:

* A :class:`~.algebra.BGP` is evaluated as an index-nested-loop join over
  the graph's SPO/POS/OSP indexes, with join order chosen by the optimizer
  and bindings propagated pattern-to-pattern.  Flat queries are cheap.
* A nested SELECT (:class:`~.algebra.Project` below the root) is always
  *materialized independently* — no bindings flow into it — and then
  hash-joined with its siblings.  This is exactly why the paper's naive
  one-subquery-per-operator queries are slow, and it makes the engine
  reproduce the naive-vs-optimized gap of Figures 3 and 5.

The data plane is *dictionary-encoded and columnar*: solutions are
:class:`~.solution.SolutionTable` objects (schema header + rows of dense
integer term ids), pattern matching runs on :meth:`Graph.triples_ids`,
joins hash ints, and RDF term objects are materialized only at the result
boundary or lazily inside expression evaluation (:class:`~.solution.RowView`).
The original dict-based evaluator survives as
:class:`~.reference.ReferenceEvaluator` for differential tests and the
perf-report baseline.

The data plane has two execution modes over the same operators:

* the *materialized* mode (``evaluate``/``evaluate_query``): every operator
  returns a fully-built :class:`SolutionTable` — the differential oracle
  and the default for unbounded queries;
* the *streaming* mode (``stream``/``evaluate_query_stream``): operators
  produce/consume :class:`~.solution.TableStream` iterators of row
  batches, materializing only at pipeline breakers (hash-join build sides,
  ``Minus``, full ``OrderBy``).  A bounded consumer — ``Slice`` with a
  limit, or the fused bounded-sort ``TopK`` — stops upstream row
  production by not pulling, so ``LIMIT``-topped queries exit early
  instead of materializing the full intermediate result.  ``Group`` is a
  *streaming hash aggregation*: it consumes its child stream batch by
  batch into per-group accumulator states (no input table exists) and the
  single-pattern COUNT shape is answered straight from the graph indexes
  without producing rows at all (:meth:`Evaluator._fast_group_count`).
  The ``rows_pulled``/``early_exits``/``peak_batch_rows``/``groups_built``
  counters on :class:`EvaluationStats` make the short-circuiting
  observable.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import Counter
from itertools import chain, repeat
from decimal import Decimal
from typing import Dict, List, Optional, Tuple, Union

from ..rdf.dataset import Dataset
from ..rdf.terms import (XSD_DECIMAL, XSD_DOUBLE, XSD_INTEGER, Literal,
                         Variable)
from . import algebra as alg
from .expressions import ExpressionError, VarExpr, ebv
from .optimizer import (GraphStatistics, generic_join_order,
                        intersection_worthwhile, order_patterns,
                        run_signature, run_width)
from .solution import (ColumnBatch, RowView, SolutionTable, TableStream,
                       _merge_plan, _merge_rows, _rows_compatible, batched,
                       stream_distinct, table_distinct, table_join,
                       table_left_join, table_minus, table_project,
                       table_union)
from .vector import compile_predicate, expand_columns, replicate

#: Target rows per streamed batch.  Bounded consumers shrink it (a
#: ``LIMIT 10`` pulls batches of ~10), so early exit is row-accurate.
STREAM_BATCH_ROWS = 512


class EvaluationError(RuntimeError):
    """Raised when a query cannot be evaluated (e.g. missing graph)."""


class RowBudgetExceeded(EvaluationError):
    """The ``max_rows`` safety valve tripped.

    Distinguished from plain :class:`EvaluationError` so the serving tier
    can classify it as ``ResourceExhausted`` (deterministic — a retry runs
    the same query into the same wall) instead of a malformed query.
    """


class QueryTimeout(RuntimeError):
    """Raised when a query exceeds the engine's time budget.

    With a ``deadline`` set on the evaluator this trips *mid-query* — the
    pattern matcher checks the clock while rows are being produced — so a
    runaway cross product is abandoned instead of run to completion.
    """


def _synopses_built(graph) -> int:
    """Total statistics synopses built on a graph, union views included
    (a union's member builds land on the member counters)."""
    total = getattr(graph, "synopses_built", 0)
    for member in getattr(graph, "graphs", ()):
        total += member.synopses_built
    return total


class EvaluationStats:
    """Counters exposed for tests and the ablation benchmarks."""

    def __init__(self):
        self.bgp_count = 0
        self.bgp_cache_hits = 0
        self.pattern_matches = 0
        self.intermediate_rows = 0
        self.materialized_subqueries = 0
        self.joins = 0
        # Streaming-executor counters.  ``rows_pulled`` counts every row
        # crossing an operator's stream boundary (a row passing through k
        # streaming operators counts k times); on an early-exiting query it
        # stays near k * LIMIT instead of the intermediate cardinality.
        # ``early_exits`` counts operators that stopped pulling from their
        # child because a row bound was satisfied; ``peak_batch_rows`` is
        # the largest single batch seen (breakers emit one table-sized
        # batch, pipelined operators stay at the configured batch size).
        self.rows_pulled = 0
        self.early_exits = 0
        self.peak_batch_rows = 0
        # Aggregation counters.  ``groups_built`` counts distinct groups
        # materialized by Group operators (hash entries or index-backed
        # groups); ``accumulator_rows`` counts input rows folded into
        # streaming per-group accumulator states — the streaming Group's
        # working-set proxy (the index-backed fast path folds zero).
        self.groups_built = 0
        self.accumulator_rows = 0
        # Join-subsystem counters.  ``sip_filtered_rows`` counts candidate
        # bindings a sideways-information-passing filter dropped at a BGP
        # leaf (rows that never existed thanks to a join build side's
        # exported key set); ``intersect_steps`` counts k-way sorted-run
        # intersections executed by multiway BGP steps (one per input row
        # per intersection step); ``sorted_runs_built`` counts sorted runs
        # lazily built on the graphs this query touched (cached runs
        # reused by later queries count zero).
        self.sip_filtered_rows = 0
        self.intersect_steps = 0
        self.sorted_runs_built = 0
        # Generic-join (WCOJ) counters.  ``wcoj_steps`` counts input rows
        # processed by generic-join variable-binding levels (each level is
        # a k-way sorted-run intersection; its internal probes also bump
        # ``intersect_steps``); ``synopsis_builds`` counts statistics
        # synopses (characteristic sets, per-predicate synopses) lazily
        # built on the graphs this query touched during evaluation —
        # synopses already built (at plan time or by earlier queries)
        # count zero, like the sorted runs.
        self.wcoj_steps = 0
        self.synopsis_builds = 0
        # Vectorized-plane counters.  ``vector_batches`` counts
        # ColumnBatch objects crossing the root stream boundary;
        # ``selection_vector_hits`` counts batches filtered by a compiled
        # id-predicate (no row view, no term decode);  ``row_fallbacks``
        # counts transpositions back to row form forced by a cold
        # operator — zero on a pure-id plan, where every batch stays
        # columnar from the BGP to the stream boundary.
        self.vector_batches = 0
        self.selection_vector_hits = 0
        self.row_fallbacks = 0

    def __repr__(self):
        return ("EvaluationStats(bgps=%d, cache_hits=%d, matches=%d, "
                "rows=%d, subqueries=%d, joins=%d, pulled=%d, "
                "early_exits=%d, peak_batch=%d, groups=%d, acc_rows=%d, "
                "sip_filtered=%d, intersects=%d, runs_built=%d, "
                "wcoj=%d, synopses=%d, "
                "vector_batches=%d, sel_hits=%d, fallbacks=%d)" % (
                    self.bgp_count, self.bgp_cache_hits,
                    self.pattern_matches, self.intermediate_rows,
                    self.materialized_subqueries, self.joins,
                    self.rows_pulled, self.early_exits,
                    self.peak_batch_rows, self.groups_built,
                    self.accumulator_rows, self.sip_filtered_rows,
                    self.intersect_steps, self.sorted_runs_built,
                    self.wcoj_steps, self.synopsis_builds,
                    self.vector_batches, self.selection_vector_hits,
                    self.row_fallbacks))

    def as_dict(self) -> Dict[str, int]:
        return {"bgp_count": self.bgp_count,
                "bgp_cache_hits": self.bgp_cache_hits,
                "pattern_matches": self.pattern_matches,
                "intermediate_rows": self.intermediate_rows,
                "materialized_subqueries": self.materialized_subqueries,
                "joins": self.joins,
                "rows_pulled": self.rows_pulled,
                "early_exits": self.early_exits,
                "peak_batch_rows": self.peak_batch_rows,
                "groups_built": self.groups_built,
                "accumulator_rows": self.accumulator_rows,
                "sip_filtered_rows": self.sip_filtered_rows,
                "intersect_steps": self.intersect_steps,
                "sorted_runs_built": self.sorted_runs_built,
                "wcoj_steps": self.wcoj_steps,
                "synopsis_builds": self.synopsis_builds,
                "vector_batches": self.vector_batches,
                "selection_vector_hits": self.selection_vector_hits,
                "row_fallbacks": self.row_fallbacks}


class Evaluator:
    """Evaluates an algebra tree against a dataset on the columnar plane."""

    def __init__(self, dataset: Dataset, optimize: bool = True,
                 max_rows: Optional[int] = None, cache_bgps: bool = True,
                 deadline: Optional[float] = None,
                 sip: Union[bool, str] = "auto",
                 multiway: Union[bool, str] = "auto",
                 wcoj: Union[bool, str] = "auto",
                 cancel=None, vectorize: bool = False):
        self.dataset = dataset
        self.optimize = optimize
        self.max_rows = max_rows  # safety valve for runaway queries
        # Absolute time.perf_counter() deadline; checked between operators
        # and inside the pattern matcher's row production.
        self.deadline = deadline
        # Cooperative cancellation: a CancelToken checked at the same
        # checkpoints as the deadline, so a disconnecting client kills its
        # query mid-operator instead of running it to completion.
        self.cancel = cancel
        self.cache_bgps = cache_bgps
        # Sideways information passing and multiway intersection knobs.
        # ``'auto'`` follows the planner's JoinStrategy annotations
        # (``sip_eligible`` on join nodes, ``strategy`` on BGPs); True
        # forces the technique wherever structurally possible; False
        # disables it — the PR-4 behaviour the joins benchmark measures
        # against.
        self.sip = sip
        self.multiway = multiway
        # Generic-join (WCOJ) knob, same contract: ``'auto'`` runs a BGP
        # the planner annotated ``strategy='wcoj'`` as a generic join
        # (unless ``multiway=False`` — the all-intersections-off baseline
        # keeps every run-intersection counter at zero); True forces
        # generic join on any structurally eligible BGP; False falls back
        # to the annotated intersect/nested-loop plan.
        self.wcoj = wcoj
        # Columnar data plane: when True the streaming executor exchanges
        # ColumnBatch objects between the operators that have a
        # column-at-a-time form, transposing back to row tuples only where
        # a cold operator (complex expression, OrderBy, Minus, joins'
        # probe) needs row view.  Routing is the engine's job
        # (``vectorize='auto'`` consults the plan annotation); the
        # evaluator just obeys the flag.
        self.vectorize = vectorize
        # Active sideways filters: variable name -> set of admissible term
        # ids, installed by join operators around their probe side and
        # consulted by the BGP pattern steps.  Always {} at quiescence.
        self._sip: Dict[str, set] = {}
        self.stats = EvaluationStats()
        self.dictionary = None  # set when the query's graphs are resolved
        self._stats_cache: Dict[int, GraphStatistics] = {}
        # Common-subexpression cache: identical BGPs (e.g. the repeated
        # pattern inside a full-outer-join's UNION branches) are evaluated
        # once per query.  Cached tables are never mutated downstream
        # (every operator builds fresh row lists), so sharing is safe.
        self._bgp_cache: Dict[Tuple, SolutionTable] = {}

    # ------------------------------------------------------------------
    def evaluate_query(self, query: alg.Query,
                       default_graph_uri: Optional[str] = None
                       ) -> SolutionTable:
        graph = self._resolve_graphs(query.from_graphs, default_graph_uri)
        self.dictionary = graph.dictionary
        before = _synopses_built(graph)
        try:
            return self.evaluate(query.pattern, graph, top=True)
        finally:
            self.stats.synopsis_builds += _synopses_built(graph) - before

    def _resolve_graphs(self, from_graphs: List[str],
                        default_graph_uri: Optional[str]):
        if from_graphs:
            missing = [u for u in from_graphs if u not in self.dataset]
            if missing:
                raise EvaluationError("unknown graph(s): %s" % ", ".join(missing))
            if len(from_graphs) == 1:
                return self.dataset.graph(from_graphs[0])
            return self.dataset.union_view(from_graphs)
        if default_graph_uri is not None:
            return self.dataset.graph(default_graph_uri)
        graphs = list(self.dataset)
        if len(graphs) == 1:
            return graphs[0]
        return self.dataset.union_view()

    # ------------------------------------------------------------------
    def evaluate(self, node: alg.AlgebraNode, graph,
                 top: bool = False) -> SolutionTable:
        if self.cancel is not None:
            self.cancel.raise_if_cancelled()
        if self.deadline is not None \
                and time.perf_counter() > self.deadline:
            raise QueryTimeout("query exceeded its time budget at %r" % node)
        method = getattr(self, "_eval_%s" % type(node).__name__.lower(), None)
        if method is None:
            raise EvaluationError("cannot evaluate %r" % node)
        if isinstance(node, alg.Project) and not top:
            self.stats.materialized_subqueries += 1
        result = method(node, graph)
        self.stats.intermediate_rows += len(result.rows)
        if self.max_rows is not None and len(result.rows) > self.max_rows:
            raise RowBudgetExceeded("intermediate result exceeds max_rows=%d"
                                  % self.max_rows)
        return result

    # ------------------------------------------------------------------
    # Pattern evaluation
    # ------------------------------------------------------------------
    def _graph_stats(self, graph) -> GraphStatistics:
        key = id(graph)
        stats = self._stats_cache.get(key)
        if stats is None or not stats.fresh():
            stats = GraphStatistics(graph)
            self._stats_cache[key] = stats
        return stats

    # -- strategy / SIP routing ----------------------------------------

    def _bgp_intersect(self, node: alg.BGP) -> bool:
        """Should this BGP compile with multiway intersection steps?

        A BGP the planner routed to generic join (``strategy='wcoj'``)
        falls back to intersection when the ``wcoj`` knob is off *and*
        the planner recorded that the multiway gate would also have
        fired (``intersect_ok``) — so a ``wcoj=False`` engine keeps the
        pre-WCOJ intersection plan rather than dropping to nested-loop.
        """
        mode = self.multiway
        if mode is True:
            return True
        if mode != "auto":
            return False
        strategy = getattr(node, "strategy", None)
        if strategy == "intersect":
            return True
        return strategy == "wcoj" and getattr(node, "intersect_ok", False)

    def _wcoj_order(self, node: alg.BGP, graph):
        """The elimination order generic join should use for this BGP,
        or ``None`` when the BGP runs on another strategy.

        ``wcoj='auto'`` follows the planner's annotation (suppressed
        under ``multiway=False``, the run-intersections-off baseline);
        ``wcoj=True`` forces generic join on any structurally eligible
        BGP, computing an order on the spot when the plan carries none.
        """
        if self.wcoj is False:
            return None
        if not hasattr(graph, "objects_run"):
            return None
        order = getattr(node, "eliminate", None)
        if self.wcoj is True:
            if order is None and len(node.triples) > 1:
                order = generic_join_order(node.triples,
                                           self._graph_stats(graph))
            return tuple(order) if order else None
        if self.multiway is False:
            return None
        if getattr(node, "strategy", None) == "wcoj" and order:
            return tuple(order)
        return None

    def _use_sip(self, node) -> bool:
        """Should this join export sideways filters to its probe side?"""
        mode = self.sip
        if mode is True:
            return True
        return mode == "auto" and getattr(node, "sip_eligible", False)

    def _sip_touches(self, patterns) -> bool:
        """True when an active sideways filter names a pattern variable
        (such BGPs bypass the BGP cache: their result depends on the
        filter, not just the pattern set)."""
        sip = self._sip
        if not sip:
            return False
        for triple in patterns:
            for term in triple:
                if isinstance(term, Variable) and term.name in sip:
                    return True
        return False

    def _sip_exports(self, table: SolutionTable, probe) -> Optional[Dict]:
        """The join-key id-sets a build side exports toward a probe.

        One set per variable that (a) the probe has in scope and (b) is
        bound in *every* build row — an unbound build cell joins with any
        probe value, so such variables export nothing.  A probe candidate
        whose id is outside the set cannot join any build row, which is
        what lets the BGP leaves drop it before a row exists.
        """
        if not table.rows:
            return None
        probe_vars = set(probe.in_scope())
        exports: Dict[str, set] = {}
        for pos, var in enumerate(table.variables):
            if var not in probe_vars:
                continue
            values = set()
            add = values.add
            bound_everywhere = True
            for row in table.rows:
                tid = row[pos]
                if tid is None:
                    bound_everywhere = False
                    break
                add(tid)
            if bound_everywhere:
                exports[var] = values
        return exports or None

    def _sip_merge(self, exports: Dict) -> Dict:
        """Merge fresh exports into the active scope.  A variable filtered
        by two enclosing joins keeps the intersection of both sets."""
        if not self._sip:
            return exports
        merged = dict(self._sip)
        for var, values in exports.items():
            prev = merged.get(var)
            merged[var] = values if prev is None else (prev & values)
        return merged

    def _order_for_sip(self, patterns, graph):
        """Re-order a sideways-filtered BGP so the filtered leaves lead.

        The plan-time join order was chosen without knowing the build
        side's key sets; with them in hand, a pattern binding a filtered
        variable is far more selective than its base estimate (the filter
        keeps ``|set|`` of the variable's distinct values).  Re-running
        the greedy ordering with discounted estimates starts the probe at
        the semi-join filter instead of dragging the full scan first —
        the classic magic-sets effect, per execution and only for BGPs a
        filter actually touches."""
        return order_patterns(patterns,
                              _SipAwareStats(self._graph_stats(graph),
                                             self._sip, graph))

    # -- BGP evaluation ------------------------------------------------

    def _eval_bgp(self, node: alg.BGP, graph) -> SolutionTable:
        self.stats.bgp_count += 1
        patterns = node.triples
        if not patterns:
            return SolutionTable.unit()
        intersect = self._bgp_intersect(node)
        eliminate = self._wcoj_order(node, graph)
        sip_active = self._sip_touches(patterns)
        cache_key = None
        if self.cache_bgps and not sip_active:
            cache_key = (id(graph), intersect, eliminate,
                         tuple(sorted(patterns, key=lambda t: repr(t))))
            cached = self._bgp_cache.get(cache_key)
            if cached is not None:
                self.stats.bgp_cache_hits += 1
                return cached
        if len(patterns) > 1 and not eliminate:
            if sip_active:
                patterns = self._order_for_sip(patterns, graph)
            elif self.optimize:
                patterns = order_patterns(patterns, self._graph_stats(graph))
        schema, _schemas, steps = self._bgp_steps(patterns, graph, intersect,
                                                  eliminate)
        rows: List[tuple] = []
        if steps is not None:
            rows = [()]
            for step in steps:
                out: List[tuple] = []
                step(rows, self._guarded_append(out))
                rows = out
                if not rows:
                    break
        table = SolutionTable(schema, rows)
        if cache_key is not None:
            self._bgp_cache[cache_key] = table
        return table

    def _pattern_plan(self, pattern, schema: List[str], graph):
        """Compile one triple pattern into ``(new_schema, step)``.

        ``step(rows, append)`` extends each input row (positionally aligned
        with the *old* schema) with the pattern's id-level matches, calling
        ``append`` per output row.  The bound/free shape is analyzed here,
        once per pattern, so the specialized index probe it returns is
        reusable for any number of row batches — this is what lets the
        streaming executor drive the same matcher one input row at a time.
        ``step`` is ``None`` when a constant term is unknown to the
        dictionary (no triple can match); the returned schema still
        includes the pattern's fresh variables.

        When a sideways-information-passing scope is active
        (``self._sip``), the step additionally drops candidate bindings
        for filtered fresh variables at the index probe itself — the
        pruned combination never becomes a row — and counts them in
        ``stats.sip_filtered_rows``.
        """
        lookup = self.dictionary.lookup
        sip = self._sip
        index = {v: i for i, v in enumerate(schema)}
        schema = list(schema)
        # A slot per position: ('c', id) constant, ('b', col) bound var,
        # ('n', k) k-th newly-introduced var (repeats share one k).
        slots = []
        new_pos: Dict[str, int] = {}
        missing_constant = False
        for term in pattern:
            if isinstance(term, Variable):
                name = term.name
                col = index.get(name)
                if col is not None:
                    slots.append(("b", col))
                elif name in new_pos:
                    slots.append(("n", new_pos[name]))
                else:
                    k = len(new_pos)
                    new_pos[name] = k
                    schema.append(name)
                    slots.append(("n", k))
            else:
                tid = lookup(term)
                if tid is None:
                    missing_constant = True
                    slots.append(("c", None))
                else:
                    slots.append(("c", tid))
        if missing_constant:
            return schema, None

        (s_kind, s_val), (p_kind, p_val), (o_kind, o_val) = slots
        n_new = len(new_pos)
        stats = self.stats

        # The bound/free shape of the pattern is fixed across rows ('b'
        # columns are always bound inside a BGP), so dispatch to a
        # specialized index probe once per *pattern*, not once per row.
        s_free = s_kind == "n"
        p_free = p_kind == "n"
        o_free = o_kind == "n"

        def val_of(kind, val):
            if kind == "c":
                return lambda row, v=val: v
            return lambda row, c=val: row[c]

        def col_of(kind, val, cb, n):
            # Columnar face of ``val_of``: an n-element iterable of the
            # slot's per-row values (a shared column or a repeated const).
            if kind == "c":
                return repeat(val, n)
            return cb.columns[val]

        # Raw per-predicate maps for the hot columnar shapes (constant
        # predicate, bound var in the probe slot): the per-row probe then
        # runs inside a list comprehension with nothing but a single
        # dict get — no method dispatch, no per-row extend.  ``None``
        # (multi-graph union) keeps those shapes on the generic per-row
        # csteps.  The maps are memoized on the graph, so compiling the
        # same predicate twice is free.
        pos_fn = getattr(graph, "pos_index", None)
        pos = pos_fn() if pos_fn is not None else None
        fwd = None
        if p_kind == "c" and s_kind == "b":
            fwd_fn = getattr(graph, "forward_map", None)
            if fwd_fn is not None:
                fwd = fwd_fn(p_val)

        if not p_free and not s_free and not o_free:
            # Fully bound: a containment probe per row.
            s_of, p_of, o_of = (val_of(s_kind, s_val), val_of(p_kind, p_val),
                                val_of(o_kind, o_val))
            contains = graph.contains_ids

            def step(rows, append):
                matches = 0
                for row in rows:
                    if contains(s_of(row), p_of(row), o_of(row)):
                        matches += 1
                        append(row)
                stats.pattern_matches += matches

            if fwd is not None and o_kind == "b":
                def cstep(cb, _get=fwd.get, _e=()):
                    flags = bytearray(
                        o in _get(s, _e)
                        for s, o in zip(cb.columns[s_val],
                                        cb.columns[o_val]))
                    kept = sum(flags)
                    stats.pattern_matches += kept
                    return cb.take_flags(flags, kept)
            elif fwd is not None and o_kind == "c":
                # Constant object (``?s rdf:type :Class`` shape): a
                # membership scan of the subject column.
                def cstep(cb, _get=fwd.get, _o=o_val, _e=()):
                    flags = bytearray(
                        _o in _get(s, _e)
                        for s in cb.columns[s_val])
                    kept = sum(flags)
                    stats.pattern_matches += kept
                    return cb.take_flags(flags, kept)
            else:
                def cstep(cb):
                    n = len(cb)
                    flags = bytearray(n)
                    kept = 0
                    i = 0
                    for s, p, o in zip(col_of(s_kind, s_val, cb, n),
                                       col_of(p_kind, p_val, cb, n),
                                       col_of(o_kind, o_val, cb, n)):
                        if contains(s, p, o):
                            flags[i] = 1
                            kept += 1
                        i += 1
                    stats.pattern_matches += kept
                    return cb.take_flags(flags, kept)

            step.columnar = cstep
        elif not p_free and not s_free and o_free:
            # Forward expansion: (s, p) -> objects.  The classic
            # index-nested-loop step of the paper's flat queries.
            s_of, p_of = val_of(s_kind, s_val), val_of(p_kind, p_val)
            objects_for = graph.objects_for
            o_filter = sip.get(pattern[2].name) if sip else None

            if o_filter is None:
                def step(rows, append):
                    matches = 0
                    for row in rows:
                        objs = objects_for(s_of(row), p_of(row))
                        if objs:
                            matches += len(objs)
                            for o in objs:
                                append(row + (o,))
                    stats.pattern_matches += matches

                if fwd is not None:
                    # Hot shape: probe is one dict get per row inside a
                    # list comprehension; flatten and count in C.
                    def cstep(cb, _get=fwd.get, _e=()):
                        sets_ = [_get(s, _e)
                                 for s in cb.columns[s_val]]
                        new = []
                        new.extend(chain.from_iterable(sets_))
                        stats.pattern_matches += len(new)
                        return expand_columns(cb, list(map(len, sets_)),
                                              new)
                else:
                    def cstep(cb):
                        n = len(cb)
                        new = []
                        counts = []
                        add = counts.append
                        matches = 0
                        for s, p in zip(col_of(s_kind, s_val, cb, n),
                                        col_of(p_kind, p_val, cb, n)):
                            objs = objects_for(s, p)
                            k = len(objs)
                            add(k)
                            if k:
                                matches += k
                                new.extend(objs)
                        stats.pattern_matches += matches
                        return expand_columns(cb, counts, new)
            else:
                def step(rows, append):
                    matches = 0
                    dropped = 0
                    for row in rows:
                        objs = objects_for(s_of(row), p_of(row))
                        if objs:
                            matches += len(objs)
                            for o in objs:
                                if o in o_filter:
                                    append(row + (o,))
                                else:
                                    dropped += 1
                    stats.pattern_matches += matches
                    stats.sip_filtered_rows += dropped

                def cstep(cb):
                    n = len(cb)
                    new = []
                    counts = []
                    add = counts.append
                    matches = 0
                    for s, p in zip(col_of(s_kind, s_val, cb, n),
                                    col_of(p_kind, p_val, cb, n)):
                        objs = objects_for(s, p)
                        if objs:
                            matches += len(objs)
                            before = len(new)
                            new.extend(o for o in objs if o in o_filter)
                            add(len(new) - before)
                        else:
                            add(0)
                    stats.pattern_matches += matches
                    stats.sip_filtered_rows += matches - len(new)
                    return expand_columns(cb, counts, new)

            step.columnar = cstep
        elif not p_free and s_free and not o_free:
            # Backward expansion: (p, o) -> subjects.
            p_of, o_of = val_of(p_kind, p_val), val_of(o_kind, o_val)
            subjects_for = graph.subjects_for
            s_filter = sip.get(pattern[0].name) if sip else None

            if s_filter is None:
                def step(rows, append):
                    matches = 0
                    for row in rows:
                        subs = subjects_for(p_of(row), o_of(row))
                        if subs:
                            matches += len(subs)
                            for s in subs:
                                append(row + (s,))
                    stats.pattern_matches += matches

                if pos is not None and p_kind == "c" and o_kind == "b":
                    # The predicate is fixed, so its whole {o: subjects}
                    # map hoists out: one dict get per row.
                    def cstep(cb, _by_obj_get=(pos.get(p_val) or {}).get):
                        sets_ = [_by_obj_get(o, ())
                                 for o in cb.columns[o_val]]
                        new = []
                        new.extend(chain.from_iterable(sets_))
                        stats.pattern_matches += len(new)
                        return expand_columns(cb, list(map(len, sets_)),
                                              new)
                else:
                    def cstep(cb):
                        n = len(cb)
                        new = []
                        counts = []
                        add = counts.append
                        matches = 0
                        for p, o in zip(col_of(p_kind, p_val, cb, n),
                                        col_of(o_kind, o_val, cb, n)):
                            subs = subjects_for(p, o)
                            k = len(subs)
                            add(k)
                            if k:
                                matches += k
                                new.extend(subs)
                        stats.pattern_matches += matches
                        return expand_columns(cb, counts, new)
            else:
                def step(rows, append):
                    matches = 0
                    dropped = 0
                    for row in rows:
                        subs = subjects_for(p_of(row), o_of(row))
                        if subs:
                            matches += len(subs)
                            for s in subs:
                                if s in s_filter:
                                    append(row + (s,))
                                else:
                                    dropped += 1
                    stats.pattern_matches += matches
                    stats.sip_filtered_rows += dropped

                def cstep(cb):
                    n = len(cb)
                    new = []
                    counts = []
                    add = counts.append
                    matches = 0
                    for p, o in zip(col_of(p_kind, p_val, cb, n),
                                    col_of(o_kind, o_val, cb, n)):
                        subs = subjects_for(p, o)
                        if subs:
                            matches += len(subs)
                            before = len(new)
                            new.extend(s for s in subs if s in s_filter)
                            add(len(new) - before)
                        else:
                            add(0)
                    stats.pattern_matches += matches
                    stats.sip_filtered_rows += matches - len(new)
                    return expand_columns(cb, counts, new)

            step.columnar = cstep
        elif not p_free and s_free and o_free and p_kind == "c":
            # Predicate scan with a constant predicate: materialize the
            # (s, o) pairs once and reuse them for every input row (the
            # graph memoizes the materialization across queries).
            so_list = getattr(graph, "so_pairs_list", None)
            pairs = (so_list(p_val) if so_list is not None
                     else list(graph.so_pairs(p_val)))
            if slots[0][1] == slots[2][1]:  # ?x p ?x — one new column
                hits = [(s,) for s, o in pairs if s == o]
            else:
                hits = pairs
            dropped_per_row = 0
            if sip:
                # Filter the materialized pairs once at compile time; the
                # per-input-row drop count keeps the counter's meaning
                # (candidate bindings pruned) identical to the row-driven
                # shapes.
                s_filter = sip.get(pattern[0].name)
                o_filter = sip.get(pattern[2].name)
                if s_filter is not None or o_filter is not None:
                    kept = [extra for extra in hits
                            if (s_filter is None or extra[0] in s_filter)
                            and (o_filter is None or extra[-1] in o_filter)]
                    dropped_per_row = len(hits) - len(kept)
                    hits = kept

            def step(rows, append):
                matches = 0
                n_rows = 0
                for row in rows:
                    n_rows += 1
                    matches += len(pairs)
                    for extra in hits:
                        append(row + extra)
                stats.pattern_matches += matches
                if dropped_per_row:
                    stats.sip_filtered_rows += dropped_per_row * n_rows

            # Constant fan-out: every input row gains the same ``hits``
            # block, so the columnar step is pure replication — parents
            # repeated k times each, hit columns tiled n times.  The hit
            # columns are built only when this evaluator actually runs
            # the columnar plane; the row plane uses ``hits`` as-is.
            k_hits = len(hits)
            if self.vectorize:
                so_cols_fn = getattr(graph, "so_pair_columns", None)
                cached = (so_cols_fn(p_val)
                          if so_cols_fn is not None and hits is pairs
                          else None)
                if cached is not None:
                    hit_cols = list(cached)
                else:
                    hit_cols = [[h[j] for h in hits]
                                for j in range(len(hits[0]) if hits
                                               else n_new)]

                def cstep(cb):
                    n = len(cb)
                    stats.pattern_matches += len(pairs) * n
                    if dropped_per_row:
                        stats.sip_filtered_rows += dropped_per_row * n
                    out = [replicate(col, repeat(k_hits, n))
                           for col in cb.columns]
                    out.extend(col * n for col in hit_cols)
                    return ColumnBatch(out, None, k_hits * n)

                step.columnar = cstep
        else:
            # General shape (variable predicate, or repeated fresh
            # variables across positions): slot-interpreting loop.
            triples_ids = graph.triples_ids
            filters_by_slot = {}
            if sip:
                for name, k in new_pos.items():
                    flt = sip.get(name)
                    if flt is not None:
                        filters_by_slot[k] = flt

            def step(rows, append):
                matches = 0
                dropped = 0
                for row in rows:
                    s = None if s_free else (s_val if s_kind == "c"
                                             else row[s_val])
                    p = None if p_free else (p_val if p_kind == "c"
                                             else row[p_val])
                    o = None if o_free else (o_val if o_kind == "c"
                                             else row[o_val])
                    for matched in triples_ids(s, p, o):
                        matches += 1
                        extras = [None] * n_new
                        ok = True
                        for (kind, val), tid in zip(slots, matched):
                            if kind == "n":
                                prev = extras[val]
                                if prev is None:
                                    flt = filters_by_slot.get(val)
                                    if flt is not None and tid not in flt:
                                        dropped += 1
                                        ok = False
                                        break
                                    extras[val] = tid
                                elif prev != tid:
                                    # Repeated variable must agree.
                                    ok = False
                                    break
                        if ok:
                            append(row + tuple(extras))
                stats.pattern_matches += matches
                if dropped:
                    stats.sip_filtered_rows += dropped

        return schema, step

    def _guarded_append(self, out: List[tuple]):
        """The row sink for pattern matching.

        The plain ``list.append`` on the hot path; when a row budget or a
        deadline is armed, a wrapper that trips the safety valve *while*
        rows are being produced — an exploding cross product is abandoned
        mid-pattern instead of materialized and then rejected.
        """
        limit = self.max_rows
        deadline = self.deadline
        cancel = self.cancel
        if limit is None and deadline is None and cancel is None:
            return out.append
        raw_append = out.append

        def append(row):
            raw_append(row)
            n = len(out)
            if limit is not None and n > limit:
                raise RowBudgetExceeded(
                    "intermediate result exceeds max_rows=%d "
                    "(tripped mid-pattern)" % limit)
            if not (n & 1023):
                if cancel is not None:
                    cancel.raise_if_cancelled()
                if deadline is not None \
                        and time.perf_counter() > deadline:
                    raise QueryTimeout(
                        "query exceeded its time budget after %d rows "
                        "of a pattern match" % n)

        return append

    def _check_valves(self, produced: int):
        """Batch-granular safety valves for the columnar plane.

        Where the row plane guards every ``append`` (amortizing the clock
        behind a 1024-row counter), a vectorized step produces a whole
        ColumnBatch in C-level bulk operations with no per-row hook — so
        the valves are checked once per batch instead, between steps.
        ``self.deadline`` is read here (not captured at compile time) so
        an armed/re-armed deadline takes effect at the next batch
        boundary.
        """
        if self.max_rows is not None and produced > self.max_rows:
            raise RowBudgetExceeded(
                "intermediate result exceeds max_rows=%d "
                "(tripped at a batch boundary)" % self.max_rows)
        if self.cancel is not None:
            self.cancel.raise_if_cancelled()
        if self.deadline is not None \
                and time.perf_counter() > self.deadline:
            raise QueryTimeout(
                "query exceeded its time budget after %d rows "
                "of a vectorized pattern match" % produced)

    # ------------------------------------------------------------------
    # Joins.  The build side (evaluated first) exports its join-key
    # id-sets sideways into the probe side's BGP leaves (semi-join
    # filters).  The probe of an inner Join inherits the enclosing scope
    # too; the auxiliary side of LeftJoin/Minus/FilterExists sees *only*
    # the operator's own exports — an enclosing join's filter is sound
    # for rows that must ultimately join it, but pruning inside an
    # OPTIONAL/MINUS/EXISTS auxiliary would flip match decisions (a
    # pruned optional row turns into a null-padded one) rather than
    # remove dead rows.
    def _eval_join(self, node: alg.Join, graph) -> SolutionTable:
        left = self.evaluate(node.left, graph)
        if not left.rows:
            return SolutionTable(left.variables)
        exports = self._sip_exports(left, node.right) \
            if self._use_sip(node) else None
        if exports:
            outer = self._sip
            self._sip = self._sip_merge(exports)
            try:
                right = self.evaluate(node.right, graph)
            finally:
                self._sip = outer
        else:
            right = self.evaluate(node.right, graph)
        if not right.rows:
            return SolutionTable(left.variables + tuple(
                v for v in right.variables if v not in left.index))
        self.stats.joins += 1
        return table_join(left, right)

    def _eval_leftjoin(self, node: alg.LeftJoin, graph) -> SolutionTable:
        left = self.evaluate(node.left, graph)
        if not left.rows:
            return SolutionTable(left.variables)
        exports = self._sip_exports(left, node.right) \
            if self._use_sip(node) else None
        outer = self._sip
        self._sip = exports or {}
        try:
            right = self.evaluate(node.right, graph)
        finally:
            self._sip = outer
        self.stats.joins += 1
        if node.condition is None:
            return table_left_join(left, right)
        # LeftJoin with a condition: candidates are found by the same
        # hash-partitioning as the unconditional join; the condition is
        # evaluated lazily (terms decoded on access) within buckets only.
        out_vars = left.variables + tuple(
            v for v in right.variables if v not in left.index)
        out_index = {v: i for i, v in enumerate(out_vars)}
        decode = self.dictionary.decode
        condition = node.condition

        def accept(merged_row) -> bool:
            try:
                return ebv(condition.evaluate(
                    RowView(out_index, merged_row, decode)))
            except ExpressionError:
                return False

        return table_left_join(left, right, accept=accept)

    def _eval_union(self, node: alg.Union, graph) -> SolutionTable:
        return table_union(self.evaluate(node.left, graph),
                           self.evaluate(node.right, graph))

    def _eval_filter(self, node: alg.Filter, graph) -> SolutionTable:
        table = self.evaluate(node.pattern, graph)
        condition = node.condition
        index = table.index
        decode = self.dictionary.decode
        rows = []
        for row in table.rows:
            try:
                if ebv(condition.evaluate(RowView(index, row, decode))):
                    rows.append(row)
            except ExpressionError:
                continue  # errors eliminate the solution
        return SolutionTable(table.variables, rows)

    def _sip_without(self, var: str) -> Dict:
        """The active scope minus one variable (Extend overwrites it, so a
        leaf filter below would act on the wrong value)."""
        return {v: s for v, s in self._sip.items() if v != var}

    def _eval_extend(self, node: alg.Extend, graph) -> SolutionTable:
        if self._sip and node.var in self._sip:
            outer = self._sip
            self._sip = self._sip_without(node.var)
            try:
                return self._eval_extend(node, graph)
            finally:
                self._sip = outer
        table = self.evaluate(node.pattern, graph)
        index = table.index
        decode = self.dictionary.decode
        encode = self.dictionary.encode
        target = index.get(node.var)
        rows = []
        for row in table.rows:
            try:
                value = node.expression.evaluate(RowView(index, row, decode))
                tid = encode(value)
            except ExpressionError:
                # SPARQL Extend error semantics: leave the variable as it
                # was — unbound if fresh, the existing binding otherwise.
                rows.append(row + (None,) if target is None else row)
                continue
            if target is None:
                rows.append(row + (tid,))
            else:
                patched = list(row)
                patched[target] = tid
                rows.append(tuple(patched))
        variables = table.variables if target is not None \
            else table.variables + (node.var,)
        return SolutionTable(variables, rows)

    def _fast_group_count(self, node: alg.Group,
                          graph) -> Optional[SolutionTable]:
        """Index-backed ``GROUP BY`` counting — no rows are produced.

        Applies to ``Group(BGP)`` over a *single* triple pattern with a
        constant predicate and distinct subject/object variables, grouped
        by one of them, where every aggregate is a COUNT over the
        pattern's variables (or ``COUNT(*)``).  On a set-semantics triple
        store each such count equals the group's row count, which the
        SPO/POS indexes answer directly (:meth:`Graph.count_objects_for` /
        :meth:`Graph.count_subjects_for`): the whole aggregation runs in
        one index sweep with zero solution rows, zero hashing, and zero
        term decoding.  Group order matches the row-producing path (the
        first-seen order of the ``so_pairs`` scan), so the result is
        identical — not merely bag-equal — to the general path's.

        This is a *streaming-plane* rewrite (used by :meth:`_stream_group`
        only): the materialized ``Group`` deliberately keeps producing the
        full input table so it remains the differential oracle and the
        perf baseline the ``aggregation`` benchmark section measures
        against.

        Returns ``None`` when the shape does not apply.
        """
        pattern = node.pattern
        if not isinstance(pattern, alg.BGP) or len(pattern.triples) != 1:
            return None
        if len(node.group_vars) != 1:
            return None
        s_term, p_term, o_term = pattern.triples[0]
        if isinstance(p_term, Variable) or not isinstance(s_term, Variable) \
                or not isinstance(o_term, Variable):
            return None
        s_name, o_name = s_term.name, o_term.name
        if s_name == o_name:
            return None
        gvar = node.group_vars[0]
        if gvar not in (s_name, o_name):
            return None
        for aggregate in node.aggregates:
            if aggregate.function != "count":
                return None
            expr = aggregate.expression
            if expr is None:  # COUNT(*): counts the group's rows
                if aggregate.distinct:
                    return None
                continue
            if type(expr) is not VarExpr or expr.name not in (s_name, o_name):
                return None
            if aggregate.distinct and expr.name == gvar:
                # COUNT(DISTINCT ?g) GROUP BY ?g is 1, not the row count.
                return None
        if not hasattr(graph, "count_objects_for") \
                or not hasattr(graph, "count_subjects_for"):
            return None

        self.stats.bgp_count += 1
        out_vars = tuple(node.group_vars) + tuple(a.alias
                                                  for a in node.aggregates)
        pid = self.dictionary.lookup(p_term)
        out_rows: List[tuple] = []
        if pid is not None:
            encode = self.dictionary.encode
            decode = self.dictionary.decode
            n_aggs = len(node.aggregates)
            having = node.having
            out_index = {v: i for i, v in enumerate(out_vars)}
            group_on_subject = gvar == s_name
            if group_on_subject and hasattr(graph, "subject_group_counts"):
                # Subject-keyed groups: one allocation-free index sweep
                # (a set-membership test per triple, an O(1) SPO count
                # per group).
                group_counts = graph.subject_group_counts(pid)
            elif not group_on_subject \
                    and hasattr(graph, "object_group_counts"):
                # Object-keyed groups read straight off the POS index:
                # O(groups), no per-triple work at all.
                group_counts = graph.object_group_counts(pid)
            else:
                # Union views: one sweep over the deduplicated (s, o)
                # pairs, counting per first-seen group — still no
                # solution rows, hashing, or decoding.
                count_objects = graph.count_objects_for
                count_subjects = graph.count_subjects_for

                def sweep():
                    seen = set()
                    for s, o in graph.so_pairs(pid):
                        gid = s if group_on_subject else o
                        if gid in seen:
                            continue
                        seen.add(gid)
                        yield gid, (count_objects(gid, pid)
                                    if group_on_subject
                                    else count_subjects(pid, gid))

                group_counts = sweep()
            built = 0
            count_ids: Dict[int, int] = {}  # count value -> term id
            max_rows = self.max_rows
            deadline = self.deadline
            cancel = self.cancel
            for gid, count in group_counts:
                built += 1
                # Same safety valves as row production elsewhere: a graph
                # with an enormous group count is abandoned mid-sweep, not
                # after the result is built.
                if not (built & 1023):
                    if cancel is not None:
                        cancel.raise_if_cancelled()
                    if deadline is not None \
                            and time.perf_counter() > deadline:
                        raise QueryTimeout(
                            "query exceeded its time budget after %d "
                            "groups of an index-backed aggregation" % built)
                tid = count_ids.get(count)
                if tid is None:
                    tid = encode(Literal(count))
                    count_ids[count] = tid
                out_row = (gid,) + (tid,) * n_aggs
                if having is not None \
                        and not _passes_having(having, out_index,
                                               out_row, decode):
                    continue
                out_rows.append(out_row)
                if max_rows is not None and len(out_rows) > max_rows:
                    raise RowBudgetExceeded(
                        "intermediate result exceeds max_rows=%d "
                        "(tripped mid-aggregation)" % max_rows)
            self.stats.groups_built += built
        return SolutionTable(out_vars, out_rows)

    def _wcoj_group_aggregate(self, node: alg.Group,
                              graph) -> Optional[SolutionTable]:
        """Aggregate pushdown through the generic-join decomposition.

        ``Group`` over a wcoj-planned cyclic BGP folds aggregate states
        *inside* the join's last elimination level: the compiled wcoj
        steps run depth-first exactly as in :meth:`_eval_bgp`, but the
        final step's ``append`` routes each completed binding straight
        into its group's accumulator (the same compiled folds the
        streaming hash aggregation uses, so every finished cell is
        bit-identical) — no batch of join rows is ever built, and
        ``accumulator_rows`` stays at zero.  Group order is the
        first-seen order of the depth-first enumeration, which is the
        row order every executor produces from the same steps, so the
        emitted rows match the general path exactly.

        Applies when no sideways-information-passing scope is active and
        the (possibly ``Project``-wrapped) input is a BGP the engine's
        wcoj gate accepts; returns ``None`` otherwise.
        """
        if self._sip:
            return None
        pattern = node.pattern
        while isinstance(pattern, alg.Project):
            pattern = pattern.pattern
        if not isinstance(pattern, alg.BGP) or not pattern.triples:
            return None
        order = self._wcoj_order(pattern, graph)
        if not order:
            return None
        schema, _schemas, steps = self._bgp_steps(
            pattern.triples, graph, self._bgp_intersect(pattern), order)
        index = {v: i for i, v in enumerate(schema)}
        positions = []
        for v in node.group_vars:
            p = index.get(v)
            if p is None:
                return None  # key unbound by the BGP: general path
            positions.append(p)
        self.stats.bgp_count += 1
        decode = self.dictionary.decode
        encode = self.dictionary.encode
        specs = [_compile_aggregate(a, index, decode)
                 for a in node.aggregates]
        groups: Dict = {}
        if steps is not None:
            get = groups.get
            scalar = positions[0] if len(positions) == 1 else None
            cancel = self.cancel
            deadline = self.deadline
            folded = [0]

            def fold_leaf(row):
                if scalar is not None:
                    key = row[scalar]
                else:
                    key = tuple(row[p] for p in positions)
                states = get(key)
                if states is None:
                    groups[key] = states = [new() for new, _, _ in specs]
                for (_, fold, _), state in zip(specs, states):
                    fold(state, row)
                n = folded[0] = folded[0] + 1
                if not (n & 1023):
                    if cancel is not None:
                        cancel.raise_if_cancelled()
                    if deadline is not None \
                            and time.perf_counter() > deadline:
                        raise QueryTimeout(
                            "query exceeded its time budget after %d "
                            "bindings of an aggregated generic join" % n)

            rows: List[tuple] = [()]
            for step in steps[:-1]:
                out: List[tuple] = []
                step(rows, self._guarded_append(out))
                rows = out
                if not rows:
                    break
            if rows:
                steps[-1](rows, fold_leaf)
        if not node.group_vars and not groups:
            # Implicit single group over empty input: COUNT is 0.
            groups[()] = [new() for new, _, _ in specs]
        self.stats.groups_built += len(groups)
        out_vars = tuple(node.group_vars) + tuple(a.alias
                                                  for a in node.aggregates)
        out_index = {v: i for i, v in enumerate(out_vars)}
        having = node.having
        out_rows: List[tuple] = []
        for key, states in groups.items():
            cells = [key] if len(positions) == 1 else list(key)
            for (_, _, finish), state in zip(specs, states):
                value = finish(state)
                cells.append(None if value is None else encode(value))
            out_row = tuple(cells)
            if having is not None \
                    and not _passes_having(having, out_index,
                                           out_row, decode):
                continue
            out_rows.append(out_row)
        return SolutionTable(out_vars, out_rows)

    def _sip_for_group(self, node: alg.Group) -> Dict:
        """Restrict the active scope to the Group's grouping variables.

        Pruning a grouping key removes whole groups that could not join
        anyway; pruning anything else would corrupt surviving groups'
        aggregates, so other filters are suspended below a Group."""
        return {v: s for v, s in self._sip.items() if v in node.group_vars}

    def _eval_group(self, node: alg.Group, graph) -> SolutionTable:
        if self._sip:
            allowed = self._sip_for_group(node)
            if len(allowed) != len(self._sip):
                outer = self._sip
                self._sip = allowed
                try:
                    return self._eval_group(node, graph)
                finally:
                    self._sip = outer
        table = self.evaluate(node.pattern, graph)
        group_vars = node.group_vars
        index = table.index
        decode = self.dictionary.decode
        encode = self.dictionary.encode
        groups: Dict[Tuple, list] = {}
        if group_vars:
            positions = [index.get(v) for v in group_vars]
            if len(positions) == 1 and positions[0] is not None:
                # Scalar keys: no per-row tuple construction.
                p0 = positions[0]
                scalar_groups: Dict = {}
                for row in table.rows:
                    scalar_groups.setdefault(row[p0], []).append(row)
                groups = {(k,): v for k, v in scalar_groups.items()}
            else:
                for row in table.rows:
                    key = tuple(None if p is None else row[p]
                                for p in positions)
                    groups.setdefault(key, []).append(row)
        else:
            # Implicit single group; COUNT over an empty pattern is 0.
            groups[()] = table.rows
        self.stats.groups_built += len(groups)

        out_vars = tuple(group_vars) + tuple(a.alias
                                             for a in node.aggregates)
        out_index = {v: i for i, v in enumerate(out_vars)}
        out_rows = []
        for key, members in groups.items():
            views = None  # RowViews built lazily: only complex expressions
            cells: List[Optional[int]] = list(key)
            for aggregate in node.aggregates:
                value = _aggregate_columnar(aggregate, members, index, decode)
                if value is _SLOW:
                    if views is None:
                        views = [RowView(index, row, decode)
                                 for row in members]
                    value = _apply_aggregate(aggregate, views)
                cells.append(None if value is None else encode(value))
            out_row = tuple(cells)
            if node.having is not None \
                    and not _passes_having(node.having, out_index,
                                           out_row, decode):
                continue
            out_rows.append(out_row)
        return SolutionTable(out_vars, out_rows)

    def _eval_project(self, node: alg.Project, graph) -> SolutionTable:
        table = self.evaluate(node.pattern, graph)
        if node.variables is None:
            # SELECT *: drop synthetic aggregate helper variables.
            keep = [v for v in table.variables if not v.startswith("__agg_")]
            if len(keep) == len(table.variables):
                return table
            return table_project(table, keep)
        return table_project(table, node.variables)

    def _eval_distinct(self, node: alg.Distinct, graph) -> SolutionTable:
        return table_distinct(self.evaluate(node.pattern, graph))

    def _order_key(self, index: Dict[str, int], keys):
        """One composite, direction-aware sort key for ``ORDER BY``.

        Builds a single ``row -> tuple`` function covering every sort key
        (descending components wrapped in :class:`_Desc`), so a multi-key
        ORDER BY is one stable sort instead of one full re-sort per key.
        Keys naming variables absent from the schema are skipped (unbound
        everywhere — a stable no-op, as before).  Decoded key values are
        memoized per term id: a column with many repeated terms pays one
        decode per distinct term, not one per row.
        """
        decode = self.dictionary.decode
        # One memo per key: maps term id -> finished key component
        # (direction wrapper included, so ids repeat their component
        # without re-decoding or re-wrapping).
        specs = [(index[var], direction == "desc", {})
                 for var, direction in keys if var in index]

        def key(row):
            parts = []
            for pos, desc, cache in specs:
                tid = row[pos]
                part = cache.get(tid)
                if part is None:
                    part = _sort_key(None if tid is None else decode(tid))
                    if desc:
                        part = _Desc(part)
                    cache[tid] = part
                parts.append(part)
            return tuple(parts)

        return key

    def _eval_orderby(self, node: alg.OrderBy, graph) -> SolutionTable:
        table = self.evaluate(node.pattern, graph)
        rows = sorted(table.rows, key=self._order_key(table.index, node.keys))
        return SolutionTable(table.variables, rows)

    def _eval_topk(self, node: alg.TopK, graph) -> SolutionTable:
        """Bounded sort, materialized mode: one heap pass instead of a
        full sort + slice.  ``heapq.nsmallest`` is documented equivalent to
        ``sorted(rows, key=key)[:n]``, so stability (ties keep input
        order) matches :meth:`_eval_orderby` exactly.

        Sideways filters are suspended below any row-bound operator: a
        window selects *which* rows survive, so pruning its input would
        change the selection, not just skip dead rows."""
        outer = self._sip
        self._sip = {}
        try:
            table = self.evaluate(node.pattern, graph)
        finally:
            self._sip = outer
        keep = node.offset + node.limit
        rows = heapq.nsmallest(keep, table.rows,
                               key=self._order_key(table.index, node.keys))
        return SolutionTable(table.variables, rows[node.offset:])

    def _eval_slice(self, node: alg.Slice, graph) -> SolutionTable:
        outer = self._sip
        self._sip = {}  # same suspension rationale as _eval_topk
        try:
            table = self.evaluate(node.pattern, graph)
        finally:
            self._sip = outer
        start = node.offset
        end = None if node.limit is None else start + node.limit
        return SolutionTable(table.variables, table.rows[start:end])

    def _eval_graphpattern(self, node: alg.GraphPattern, graph
                           ) -> SolutionTable:
        target = self.dataset.graph(node.graph_uri)
        return self.evaluate(node.pattern, target)

    def _eval_inlinedata(self, node: alg.InlineData, graph) -> SolutionTable:
        encode = self.dictionary.encode
        rows = [tuple(None if value is None else encode(value)
                      for value in row)
                for row in node.rows]
        return SolutionTable(node.variables, rows)

    def _eval_minus(self, node: alg.Minus, graph) -> SolutionTable:
        left = self.evaluate(node.left, graph)
        if not left.rows:
            return SolutionTable(left.variables)
        # SIP into the right side: a right row whose key misses every left
        # row's value for an everywhere-bound shared variable is
        # incompatible with all of them, so it can exclude nothing.
        exports = self._sip_exports(left, node.right) \
            if self._use_sip(node) else None
        outer = self._sip
        self._sip = exports or {}
        try:
            right = self.evaluate(node.right, graph)
        finally:
            self._sip = outer
        return table_minus(left, right)

    def _eval_filterexists(self, node: alg.FilterExists, graph
                           ) -> SolutionTable:
        table = self.evaluate(node.pattern, graph)
        if not table.rows:
            return table
        # SIP into the existence group: a group row incompatible with
        # every pattern row flips no exists-flag (sound for EXISTS and
        # NOT EXISTS alike, because the exports reflect the actual
        # pattern rows).
        exports = self._sip_exports(table, node.group) \
            if self._use_sip(node) else None
        outer = self._sip
        self._sip = exports or {}
        try:
            inner = self.evaluate(node.group, graph)
        finally:
            self._sip = outer
        shared = [(table.index[v], inner.index[v])
                  for v in inner.variables if v in table.index]
        rows = []
        inner_rows = inner.rows
        negated = node.negated
        for row in table.rows:
            exists = any(_rows_compatible(row, other, shared)
                         for other in inner_rows)
            if exists != negated:
                rows.append(row)
        return SolutionTable(table.variables, rows)

    # ==================================================================
    # Streaming execution — the pipelined batch-iterator plane
    # ==================================================================
    #
    # ``stream`` mirrors ``evaluate`` but returns a lazily-pulled
    # :class:`TableStream`.  Operators with a ``_stream_`` form pipeline
    # their input; anything else (Minus, full OrderBy) is a pipeline
    # breaker: its subtree is materialized via ``evaluate`` and emitted
    # as a single batch.  ``Group`` streams too — a hash aggregation that
    # folds its child's batches into per-group accumulators and emits one
    # final batch.  Schemas are computed statically, so constructing a
    # stream never pulls a row; breakers embedded in a subtree do their
    # work when the subtree's stream is *constructed* (the build side of
    # a join must exist before the first probe).

    def evaluate_query_stream(self, query: alg.Query,
                              default_graph_uri: Optional[str] = None,
                              hint: Optional[int] = None) -> TableStream:
        """Streaming counterpart of :meth:`evaluate_query`.

        ``hint`` caps the root batch size — cursors pulling small pages
        pass a small one so each pull stays proportional to the page.
        """
        graph = self._resolve_graphs(query.from_graphs, default_graph_uri)
        self.dictionary = graph.dictionary
        # Stream operators compile eagerly (only row production defers),
        # so synopsis builds they trigger are visible once the stream is
        # constructed.
        before = _synopses_built(graph)
        try:
            return self.stream(query.pattern, graph, hint)
        finally:
            self.stats.synopsis_builds += _synopses_built(graph) - before

    def stream(self, node: alg.AlgebraNode, graph,
               hint: Optional[int] = None) -> TableStream:
        """Evaluate ``node`` to a stream of row batches.

        ``hint`` is a *batch-size* hint from a bounded consumer (``Slice``
        passes ``offset + limit`` down): producers emit batches no larger
        than it so early exit is row-accurate.  It never changes results —
        only how much is in flight per pull.
        """
        if self.cancel is not None:
            self.cancel.raise_if_cancelled()
        if self.deadline is not None \
                and time.perf_counter() > self.deadline:
            raise QueryTimeout("query exceeded its time budget at %r" % node)
        method = getattr(self, "_stream_%s" % type(node).__name__.lower(),
                         None)
        if method is not None:
            return method(node, graph, hint)
        # Pipeline breaker: materialize the subtree, emit one batch.
        table = self.evaluate(node, graph)
        batches = iter((table.rows,)) if table.rows else iter(())
        return TableStream(table.variables, self._meter(batches))

    def _cap(self, hint: Optional[int]) -> int:
        if hint is None or hint <= 0:
            return STREAM_BATCH_ROWS
        return min(STREAM_BATCH_ROWS, hint)

    def _meter(self, batches):
        """Instrument one operator's output stream.

        Counts rows crossing the boundary (``rows_pulled``), tracks the
        largest batch (``peak_batch_rows``), and arms the safety valves:
        the per-operator row budget and the wall-clock deadline are
        checked on every batch, so runaway production is abandoned while
        streaming, not after.
        """
        stats = self.stats
        max_rows = self.max_rows
        produced = 0
        for batch in batches:
            n = len(batch)
            if not n:
                continue
            produced += n
            stats.rows_pulled += n
            if type(batch) is ColumnBatch:
                stats.vector_batches += 1
            if n > stats.peak_batch_rows:
                stats.peak_batch_rows = n
            if max_rows is not None and produced > max_rows:
                raise RowBudgetExceeded(
                    "intermediate result exceeds max_rows=%d "
                    "(tripped while streaming)" % max_rows)
            if self.cancel is not None:
                self.cancel.raise_if_cancelled()
            if self.deadline is not None \
                    and time.perf_counter() > self.deadline:
                raise QueryTimeout(
                    "query exceeded its time budget after %d streamed rows"
                    % produced)
            yield batch

    def _rows(self, batch):
        """Row view of a batch — the columnar plane's escape hatch.

        A cold operator (complex expression, OrderBy, a join probe) calls
        this on whatever its child produced: row batches pass through
        untouched; a ColumnBatch is transposed back to row tuples, counted
        as a ``row_fallback`` so the pure-id acceptance gate
        (``row_fallbacks == 0``) can prove no hidden transpositions.
        """
        if type(batch) is ColumnBatch:
            self.stats.row_fallbacks += 1
            return batch.to_rows()
        return batch

    # -- producers -----------------------------------------------------

    def _bgp_steps(self, patterns, graph, intersect: bool = False,
                   eliminate=None):
        """Compile an ordered pattern list into per-level match steps.

        Returns ``(final_schema, per_level_schemas, steps)``; ``steps`` is
        ``None`` when some constant term is unknown (the BGP is empty, but
        the schema still names every variable, exactly like the
        materialized path's schema completion).

        With ``intersect=True`` (the planner's ``'intersect'`` strategy,
        or ``multiway=True``), the compiler binds a variable that occurs
        in two or more remaining patterns through a k-way galloping
        intersection of the graph's sorted runs instead of
        expand-then-filter: patterns whose only free position is that
        variable are satisfied by the intersection itself and drop out of
        the plan.  Both executors drive the same steps, so the two
        columnar planes keep one row order per strategy.

        With ``eliminate`` (a variable elimination order from the
        cost-based planner or a forced ``wcoj=True`` engine), the
        generic-join compiler takes over entirely — one intersection
        level per variable (:meth:`_wcoj_steps`); if it cannot cover the
        BGP the normal compilers below apply.
        """
        if eliminate:
            planned = self._wcoj_steps(patterns, graph, eliminate)
            if planned is not None:
                return planned
        schema: List[str] = []
        schemas: List[List[str]] = []
        steps = []
        alive = True
        remaining = list(patterns)
        runs_ok = intersect and hasattr(graph, "objects_run")
        while remaining:
            if alive and runs_ok and len(remaining) > 1:
                planned = self._intersection_plan(remaining, schema, graph)
                if planned is not None:
                    var, step, remaining = planned
                    schema = schema + [var]
                    steps.append(step)
                    schemas.append(list(schema))
                    continue
            pattern = remaining.pop(0)
            schema, step = self._pattern_plan(pattern, schema, graph)
            if step is None:
                alive = False
            elif alive:
                steps.append(step)
            schemas.append(list(schema))
        return schema, schemas, steps if alive else None

    def _intersection_plan(self, remaining, schema: List[str], graph):
        """Try to bind the head pattern's next variable by intersection.

        Examines each new variable of ``remaining[0]`` (subject position
        first) and collects, per remaining pattern, the sorted run that
        constrains it (:func:`~.optimizer.run_signature`): ``(s, p)``
        object runs, ``(p, o)`` subject runs, and ``p`` subject-presence
        runs.  With two or more *distinct* runs the variable's candidates
        are their galloping intersection — the leapfrog step of
        worst-case-optimal join evaluation — and every pattern the
        intersection fully satisfies is dropped from the plan.  Returns
        ``(var, step, remaining_patterns)`` or ``None`` when no variable
        qualifies (the caller falls back to a nested-loop step).
        """
        pattern = remaining[0]
        bound = set(schema)
        candidates: List[str] = []
        for term in (pattern[0], pattern[2]):
            if isinstance(term, Variable) and term.name not in bound \
                    and term.name not in candidates:
                candidates.append(term.name)
        if not candidates:
            return None
        index = {v: i for i, v in enumerate(schema)}
        # Under 'auto', each step must also pass the planner's statistics
        # gate — a BGP annotated for one worthwhile step should not pay
        # for covering intersections elsewhere.  ``multiway=True`` forces
        # every structural opportunity (the differential suites use it).
        gate_stats = self._graph_stats(graph) if self.multiway == "auto" \
            else None
        for var in candidates:
            signatures = []
            seen = set()
            consumed = set()
            any_consumed = False
            for pos, q in enumerate(remaining):
                sig, consumes = run_signature(q, var, bound)
                if sig is None:
                    continue
                if sig not in seen:
                    seen.add(sig)
                    signatures.append(sig)
                if consumes:
                    consumed.add(pos)
                    any_consumed = True
            if len(signatures) < 2:
                continue
            if gate_stats is not None and not intersection_worthwhile(
                    {sig: run_width(sig, gate_stats) for sig in signatures},
                    any_consumed):
                continue
            # Resolve signatures into run sources; an unknown constant
            # means the whole BGP is empty — let the nested-loop path
            # discover that (schema completion included).
            resolved = self._resolve_run_signatures(signatures, index)
            if resolved is None:
                return None
            static_specs, row_specs = resolved
            step = self._intersection_step(var, static_specs, row_specs,
                                           graph)
            keep = [q for pos, q in enumerate(remaining)
                    if pos not in consumed]
            return var, step, keep
        return None

    def _resolve_run_signatures(self, signatures, index):
        """Resolve :func:`~.optimizer.run_signature` tuples into operand
        specs for :meth:`_intersection_step`: ``static_specs`` are
        ``(kind, pid, oid|None)`` constant-keyed runs, ``row_specs`` are
        ``(kind, pid, column)`` runs re-seeded from a bound row column.
        Returns ``None`` when a constant term is unknown to the
        dictionary — the caller falls back to the nested-loop compiler,
        which discovers the empty result with schema completion.
        """
        lookup = self.dictionary.lookup
        static_specs = []
        row_specs = []
        for sig in signatures:
            kind, predicate = sig[0], sig[1]
            pid = lookup(predicate)
            if pid is None:
                return None
            if kind == "psubjects":
                static_specs.append((kind, pid, None))
                continue
            other = sig[2]
            if isinstance(other, tuple):  # ("?", name): bound column
                row_specs.append((kind, pid, index[other[1]]))
            else:
                oid = lookup(other)
                if oid is None:
                    return None
                static_specs.append((kind, pid, oid))
        return static_specs, row_specs

    def _wcoj_steps(self, patterns, graph, eliminate):
        """Compile a generic-join (worst-case-optimal) plan.

        One step per variable of the elimination order: the step binds
        that variable for every input row through a k-way intersection of
        all the sorted runs that constrain it across the *whole*
        remaining BGP (:meth:`_intersection_step` — the leapfrog level),
        instead of the pattern-at-a-time expand-then-filter of the
        nested-loop plan.  On cyclic BGPs this caps each level's fan-out
        at the narrowest constraining run, which is what yields the
        AGM-style worst-case bound.  Patterns no level consumed become
        fully-bound containment filters at the end.  Returns the usual
        ``(schema, schemas, steps)`` triple, or ``None`` when the order
        does not cover the BGP (a variable outside it, an unconstrained
        level, an unknown constant) — the caller falls back to the
        nested-loop compiler.

        Candidates emerge from each level in ascending id order (see
        :meth:`_intersection_step`), so row order is deterministic and
        both executors produce identical batches from one compile.
        """
        stats = self.stats
        schema: List[str] = []
        schemas: List[List[str]] = []
        steps = []
        remaining = list(patterns)
        bound: set = set()
        for var in eliminate:
            index = {v: i for i, v in enumerate(schema)}
            signatures = []
            seen = set()
            consumed = set()
            sig_source: Dict[tuple, int] = {}
            for pos, q in enumerate(remaining):
                sig, consumes = run_signature(q, var, bound)
                if sig is None:
                    continue
                if sig not in seen:
                    seen.add(sig)
                    signatures.append(sig)
                if consumes:
                    consumed.add(pos)
                    sig_source.setdefault(sig, pos)
            if not signatures:
                return None
            if len(signatures) == 1 and signatures[0] in sig_source:
                # Degenerate level: a single constraining run from a
                # pattern whose only free position is the variable.
                # An index probe on that pattern is the same candidate
                # set without building (and memoizing) a sorted run per
                # input row.
                source = remaining[sig_source[signatures[0]]]
                new_schema, inner = self._pattern_plan(source, schema,
                                                       graph)
                if inner is None:
                    return None  # unknown constant: nested-loop reports
            else:
                resolved = self._resolve_run_signatures(signatures, index)
                if resolved is None:
                    return None
                static_specs, row_specs = resolved
                inner = self._intersection_step(var, static_specs,
                                                row_specs, graph)
                new_schema = schema + [var]

            def step(rows, append, _inner=inner):
                # One wcoj step per input row per level; the inner
                # intersection probes keep bumping intersect_steps.
                stats.wcoj_steps += len(rows)
                _inner(rows, append)

            steps.append(step)
            schema = new_schema
            schemas.append(list(schema))
            bound.add(var)
            remaining = [q for pos, q in enumerate(remaining)
                         if pos not in consumed]
        for q in remaining:
            for term in q:
                if isinstance(term, Variable) and term.name not in bound:
                    return None  # partial order: fall back
        for q in remaining:
            schema, check = self._pattern_plan(q, schema, graph)
            if check is None:
                return None  # unknown constant: nested-loop path reports
            steps.append(check)
            schemas.append(list(schema))
        return schema, schemas, steps

    def _intersection_step(self, var: str, static_specs, row_specs, graph):
        """Build the executable step for one intersection binding.

        Operand handling is leapfrog-style but asymmetric, which is what
        makes it fast in CPython: the narrowest operand becomes the
        sorted-run iteration seed and every other operand an O(1)
        membership probe (the graph's native index sets), so the work is
        ``O(min operand)`` with constant-time elimination — the same
        candidates the galloping :func:`~repro.rdf.graph.intersect_runs`
        would produce, at hash-probe instead of binary-search constants.
        *Static* operands (constant-keyed and predicate-subject runs) are
        merged once at compile time; *row-keyed* operands are re-seeded
        per input row.  Because every seed is sorted, candidates always
        emerge in ascending id order no matter which operand was
        smallest, keeping row order deterministic across executors and
        strategies.
        """
        stats = self.stats
        objects_for = graph.objects_for
        subjects_for = graph.subjects_for
        objects_run = graph.objects_run
        subjects_run = graph.subjects_run
        psubjects_run = graph.predicate_subjects_run

        def track(fetch, *args):
            before = graph.sorted_runs_built
            run = fetch(*args)
            built = graph.sorted_runs_built - before
            if built:
                stats.sorted_runs_built += built
            return run

        def dead_step(rows, append):
            # Some operand is statically empty: the step matches nothing,
            # ever, but the schema still gains the variable.
            return

        static_runs: List[tuple] = []
        static_members: List = []
        for kind, pid, other in static_specs:
            if kind == "psubjects":
                run = track(psubjects_run, pid)
                members = graph.predicate_subjects_set(pid)
            elif kind == "subjects":
                run = track(subjects_run, pid, other)
                members = subjects_for(pid, other)
            else:  # objects: constant subject `other`, predicate pid
                run = track(objects_run, other, pid)
                members = objects_for(other, pid)
            if not run:
                return dead_step
            static_runs.append(run)
            static_members.append(members)
        static_candidates = None
        static_set = None
        if static_runs:
            if len(static_runs) > 1:
                # Merge the static operands once at compile time: iterate
                # the narrowest sorted run, eliminate against the others'
                # membership sets.  Every per-input-row execution then
                # starts from the merged candidate list.
                stats.intersect_steps += 1
                seed_at = min(range(len(static_runs)),
                              key=lambda i: len(static_runs[i]))
                merged = static_runs[seed_at]
                for i, members in enumerate(static_members):
                    if i != seed_at:
                        merged = [tid for tid in merged if tid in members]
                if not merged:
                    return dead_step
                static_candidates = merged
            else:
                static_candidates = static_runs[0]

        sip_filter = self._sip.get(var) if self._sip else None

        if not row_specs:
            # Every operand is static: the intersection is already done.
            matched = static_candidates
            dropped = 0
            if sip_filter is not None:
                kept = [tid for tid in matched if tid in sip_filter]
                dropped = len(matched) - len(kept)
                matched = kept

            def static_step(rows, append):
                n_rows = 0
                for row in rows:
                    n_rows += 1
                    for tid in matched:
                        append(row + (tid,))
                # Count candidates before the SIP drop, exactly like the
                # nested-loop shapes, so pattern_matches means the same
                # thing under every strategy.
                stats.pattern_matches += (len(matched) + dropped) * n_rows
                stats.sip_filtered_rows += dropped * n_rows

            return static_step

        set_fetchers = []
        run_fetchers = []
        for kind, pid, col in row_specs:
            if kind == "subjects":
                set_fetchers.append(lambda row, _p=pid, _c=col:
                                    subjects_for(_p, row[_c]))
                run_fetchers.append(lambda row, _p=pid, _c=col:
                                    track(subjects_run, _p, row[_c]))
            else:  # objects keyed by a bound subject column
                set_fetchers.append(lambda row, _p=pid, _c=col:
                                    objects_for(row[_c], _p))
                run_fetchers.append(lambda row, _p=pid, _c=col:
                                    track(objects_run, row[_c], _p))
        n_row = len(set_fetchers)

        def finish(row, matched, append):
            # pattern_matches counts pre-filter candidates (same meaning
            # as the nested-loop shapes); SIP drops are tracked apart.
            # The specialized shapes below inline this and batch the
            # counter updates per step call — keep their accounting in
            # sync with any change here.
            stats.pattern_matches += len(matched)
            if sip_filter is not None:
                kept = [tid for tid in matched if tid in sip_filter]
                stats.sip_filtered_rows += len(matched) - len(kept)
                matched = kept
            for tid in matched:
                append(row + (tid,))

        if n_row == 1 and static_candidates is not None:
            # One static operand list, one row-keyed operand: the
            # dominant anchored shape (e.g. candidates ∩ (p, o_row)).
            get0, run0 = set_fetchers[0], run_fetchers[0]
            static_len = len(static_candidates)
            if static_set is None:
                static_set = frozenset(static_candidates)

            def step(rows, append):
                steps = 0
                candidates = 0
                for row in rows:
                    members = get0(row)
                    if not members:
                        continue
                    steps += 1
                    if static_len <= len(members):
                        matched = [tid for tid in static_candidates
                                   if tid in members]
                    else:
                        matched = [tid for tid in run0(row)
                                   if tid in static_set]
                    candidates += len(matched)
                    if sip_filter is not None:
                        kept = [tid for tid in matched if tid in sip_filter]
                        stats.sip_filtered_rows += len(matched) - len(kept)
                        matched = kept
                    for tid in matched:
                        append(row + (tid,))
                stats.intersect_steps += steps
                stats.pattern_matches += candidates

            return step

        if n_row == 2 and static_candidates is None:
            # Two row-keyed operands: the cyclic-join shape.
            get0, run0 = set_fetchers[0], run_fetchers[0]
            get1, run1 = set_fetchers[1], run_fetchers[1]

            def step(rows, append):
                steps = 0
                candidates = 0
                for row in rows:
                    first = get0(row)
                    if not first:
                        continue
                    second = get1(row)
                    if not second:
                        continue
                    steps += 1
                    if len(first) <= len(second):
                        matched = [tid for tid in run0(row)
                                   if tid in second]
                    else:
                        matched = [tid for tid in run1(row)
                                   if tid in first]
                    candidates += len(matched)
                    if sip_filter is not None:
                        kept = [tid for tid in matched if tid in sip_filter]
                        stats.sip_filtered_rows += len(matched) - len(kept)
                        matched = kept
                    for tid in matched:
                        append(row + (tid,))
                stats.intersect_steps += steps
                stats.pattern_matches += candidates

            return step

        if static_candidates is not None and static_set is None:
            static_set = frozenset(static_candidates)

        def step(rows, append):
            steps = 0
            for row in rows:
                row_sets = []
                dead = False
                for get_set in set_fetchers:
                    candidates = get_set(row)
                    if not candidates:
                        dead = True
                        break
                    row_sets.append(candidates)
                if dead:
                    continue
                steps += 1
                if static_candidates is not None and len(static_candidates) \
                        <= min(len(s) for s in row_sets):
                    seed = static_candidates
                    probes = row_sets
                else:
                    best = 0
                    best_len = len(row_sets[0])
                    for k in range(1, n_row):
                        if len(row_sets[k]) < best_len:
                            best = k
                            best_len = len(row_sets[k])
                    seed = run_fetchers[best](row)
                    probes = row_sets[:best] + row_sets[best + 1:]
                    if static_set is not None:
                        probes.append(static_set)
                if len(probes) == 1:
                    p0 = probes[0]
                    matched = [tid for tid in seed if tid in p0]
                elif len(probes) == 2:
                    p0, p1 = probes
                    matched = [tid for tid in seed
                               if tid in p0 and tid in p1]
                else:
                    matched = [tid for tid in seed
                               if all(tid in p for p in probes)]
                finish(row, matched, append)
            stats.intersect_steps += steps

        return step

    def _stream_bgp(self, node: alg.BGP, graph,
                    hint: Optional[int]) -> TableStream:
        self.stats.bgp_count += 1
        patterns = node.triples
        if not patterns:
            return TableStream((), self._meter(iter(([()],))))
        cap = self._cap(hint)
        intersect = self._bgp_intersect(node)
        eliminate = self._wcoj_order(node, graph)
        sip_active = self._sip_touches(patterns)
        if self.cache_bgps and not sip_active:
            cache_key = (id(graph), intersect, eliminate,
                         tuple(sorted(patterns, key=lambda t: repr(t))))
            cached = self._bgp_cache.get(cache_key)
            if cached is not None:
                # A fully-materialized table from an earlier (materialized)
                # evaluation of the same BGP: re-chunk it.  Streamed
                # results are never cached — they may be pulled partially.
                self.stats.bgp_cache_hits += 1
                return TableStream(cached.variables,
                                   self._meter(batched(cached.rows, cap)))
        if len(patterns) > 1 and not eliminate:
            if sip_active:
                patterns = self._order_for_sip(patterns, graph)
            elif self.optimize:
                patterns = order_patterns(patterns, self._graph_stats(graph))
        schema, _schemas, steps = self._bgp_steps(patterns, graph, intersect,
                                                  eliminate)
        if steps is None:
            return TableStream(schema, self._meter(iter(())))
        if self.vectorize and hint is None:
            # Columnar breadth-first expansion: same chunking discipline
            # and lexicographic row order as the row-mode branch below,
            # but each level's fan-out happens column-at-a-time (index
            # probes feeding ``list.extend`` plus parent-column
            # compression or replication) instead of building a tuple
            # per row.  A step
            # without a columnar form (an intersection step) detours
            # through row view for that level and transposes back.
            cap = STREAM_BATCH_ROWS
            first, rest = steps[0], steps[1:]
            n_rest = len(rest)
            check = self._check_valves
            widths = [len(s) for s in _schemas]
            stats = self.stats

            def run_step(index, step, cb):
                cstep = getattr(step, "columnar", None)
                if cstep is not None:
                    return cstep(cb)
                out: List[tuple] = []
                step(cb.to_rows(), out.append)
                stats.row_fallbacks += 1
                return ColumnBatch.from_rows(out, widths[index])

            def cexpand(cb, level):
                if level == n_rest:
                    n = len(cb)
                    if n <= cap:
                        yield cb
                    else:
                        for start in range(0, n, cap):
                            yield cb[start:start + cap]
                    return
                step = rest[level]
                for start in range(0, len(cb), cap):
                    out = run_step(level + 1, step, cb[start:start + cap])
                    check(len(out))
                    if len(out):
                        yield from cexpand(out, level + 1)

            def cbatches():
                seed = run_step(0, first, ColumnBatch([], None, 1))
                check(len(seed))
                if len(seed):
                    yield from cexpand(seed, 0)

            return TableStream(schema, self._meter(cbatches()))
        if hint is None:
            # No bound above: the consumer (a streaming Group, a join
            # build, a full drain) will pull everything, so per-row
            # depth-first granularity buys nothing and costs a generator
            # resume per row.  Expand breadth-first instead — the first
            # pattern materializes once, then each chunk of its rows runs
            # through the remaining patterns with the same tight
            # per-level loops as the materialized matcher.  The output
            # row order is identical either way (both enumerate leaves in
            # lexicographic probe order).
            cap = STREAM_BATCH_ROWS
            first, rest = steps[0], steps[1:]
            n_rest = len(rest)

            def expand(rows, level):
                # Chunk at *every* level, not just the seed: a <= cap
                # chunk with high fan-out would otherwise expand through
                # all remaining patterns into one table-sized batch.
                # Working set stays at one chunk's single-level fan-out;
                # depth-first recursion over chunks preserves the
                # lexicographic row order.
                if level == n_rest:
                    if len(rows) <= cap:
                        yield rows
                    else:
                        for start in range(0, len(rows), cap):
                            yield rows[start:start + cap]
                    return
                step = rest[level]
                for start in range(0, len(rows), cap):
                    out: List[tuple] = []
                    step(rows[start:start + cap],
                         self._guarded_append(out))
                    if out:
                        yield from expand(out, level + 1)

            def batches():
                seed: List[tuple] = []
                first(((),), self._guarded_append(seed))
                if seed:
                    yield from expand(seed, 0)

            return TableStream(schema, self._meter(batches()))
        last = len(steps) - 1

        def leaves(level, rows):
            # Depth-first index-nested-loop with per-row granularity: a
            # complete output row surfaces after touching only its own
            # chain of index probes, which is what lets LIMIT-bounded
            # consumers leave the remaining fan-out unexpanded.
            step = steps[level]
            if level == last:
                for row in rows:
                    out: List[tuple] = []
                    step((row,), out.append)
                    if out:
                        yield out
                return
            for row in rows:
                out = []
                step((row,), out.append)
                if out:
                    yield from leaves(level + 1, out)

        def batches():
            # Re-chunk leaf bursts to ``cap`` with a start pointer +
            # one compaction per burst (amortized O(1) per row — slicing
            # the buffer head off per yield would go quadratic).
            buf: List[tuple] = []
            start = 0
            for leaf in leaves(0, [()]):
                buf.extend(leaf)
                if len(buf) - start >= cap:
                    while len(buf) - start >= cap:
                        yield buf[start:start + cap]
                        start += cap
                    buf = buf[start:]
                    start = 0
            if buf:
                yield buf

        return TableStream(schema, self._meter(batches()))

    def _stream_inlinedata(self, node: alg.InlineData, graph,
                           hint: Optional[int]) -> TableStream:
        encode = self.dictionary.encode
        rows = [tuple(None if value is None else encode(value)
                      for value in row)
                for row in node.rows]
        return TableStream(node.variables,
                           self._meter(batched(rows, self._cap(hint))))

    # -- row-wise operators (fully pipelined) --------------------------

    def _stream_filter(self, node: alg.Filter, graph,
                       hint: Optional[int]) -> TableStream:
        # The hint survives only as a batch-size bound: a filter may need
        # many input rows per surviving row, so it caps nothing.
        inner = self.stream(node.pattern, graph, hint)
        condition = node.condition
        index = inner.index
        decode = self.dictionary.decode
        # On the vectorized plane, try compiling the condition into a
        # selection-vector scan (id comparisons, IN over IRIs, BOUND —
        # see :mod:`.vector`); conditions outside that subset keep
        # ``compiled is None`` and columnar input falls back to row view.
        compiled = compile_predicate(condition, index, self.dictionary) \
            if self.vectorize else None
        stats = self.stats
        to_rows = self._rows

        def batches():
            for batch in inner.batches:
                if type(batch) is ColumnBatch:
                    if compiled is not None:
                        flags, kept = compiled(batch)
                        stats.selection_vector_hits += 1
                        if kept:
                            yield batch.take_flags(flags, kept)
                        continue
                    batch = to_rows(batch)
                keep = []
                append = keep.append
                for row in batch:
                    try:
                        if ebv(condition.evaluate(RowView(index, row,
                                                          decode))):
                            append(row)
                    except ExpressionError:
                        continue  # errors eliminate the solution
                if keep:
                    yield keep

        return TableStream(inner.variables, self._meter(batches()))

    def _stream_extend(self, node: alg.Extend, graph,
                       hint: Optional[int]) -> TableStream:
        if self._sip and node.var in self._sip:
            scope = self._sip
            self._sip = self._sip_without(node.var)
            try:
                return self._stream_extend(node, graph, hint)
            finally:
                self._sip = scope
        inner = self.stream(node.pattern, graph, hint)
        index = inner.index
        decode = self.dictionary.decode
        encode = self.dictionary.encode
        target = index.get(node.var)
        expression = node.expression
        variables = inner.variables if target is not None \
            else inner.variables + (node.var,)

        def extend_row(row):
            try:
                value = expression.evaluate(RowView(index, row, decode))
                tid = encode(value)
            except ExpressionError:
                return row + (None,) if target is None else row
            if target is None:
                return row + (tid,)
            patched = list(row)
            patched[target] = tid
            return tuple(patched)

        def patch_column(cb, col, mask):
            cols = list(cb.columns)
            cols[target] = col
            masks = cb.masks
            if masks is not None or mask is not None:
                masks = [None] * len(cols) if masks is None else list(masks)
                masks[target] = mask
                if not any(m is not None for m in masks):
                    masks = None
            return ColumnBatch(cols, masks, len(cb))

        # Columnar forms for the two trivial expression shapes — a
        # variable copy (ids are stable under decode/encode, so the column
        # is shared outright) and a constant (one encode, tiled).  Any
        # other expression transposes to row view per batch.
        columnar = None
        expr_t = type(expression)
        if self.vectorize and expr_t is VarExpr:
            src = index.get(expression.name)

            def columnar(cb):
                n = len(cb)
                if src is None:
                    if target is not None:
                        return cb  # every row errors; rows keep old value
                    return cb.append_column([-1] * n,
                                            bytearray(b"\x01" * n))
                col, mask = cb.columns[src], cb.mask(src)
                if target is None:
                    return cb.append_column(col, mask)
                if mask is not None:
                    # Null source rows keep the *old* target value on the
                    # row plane — a per-row merge; use row view for it.
                    return None
                return patch_column(cb, col, None)
        elif self.vectorize and expr_t is ConstExpr:
            const_tid = encode(expression.term)

            def columnar(cb):
                col = [const_tid] * len(cb)
                if target is None:
                    return cb.append_column(col, None)
                return patch_column(cb, col, None)

        to_rows = self._rows

        def batches():
            for batch in inner.batches:
                if type(batch) is ColumnBatch:
                    if columnar is not None:
                        out = columnar(batch)
                        if out is not None:
                            yield out
                            continue
                    batch = to_rows(batch)
                yield [extend_row(row) for row in batch]

        return TableStream(variables, self._meter(batches()))

    def _stream_project(self, node: alg.Project, graph,
                        hint: Optional[int]) -> TableStream:
        inner = self.stream(node.pattern, graph, hint)
        if node.variables is None:
            # SELECT *: drop synthetic aggregate helper variables.
            keep = [v for v in inner.variables if not v.startswith("__agg_")]
            if len(keep) == len(inner.variables):
                return inner
            variables = keep
        else:
            variables = list(node.variables)
        positions = [inner.index.get(v) for v in variables]

        def batches():
            # Columnar projection is a column *selection* — no per-row
            # work at all, storage shared with the child batch.
            if None in positions:
                for batch in inner.batches:
                    if type(batch) is ColumnBatch:
                        yield batch.take(positions)
                        continue
                    yield [tuple([None if p is None else row[p]
                                  for p in positions]) for row in batch]
            elif len(positions) == 1:
                p0 = positions[0]
                for batch in inner.batches:
                    if type(batch) is ColumnBatch:
                        yield batch.take(positions)
                        continue
                    yield [(row[p0],) for row in batch]
            else:
                for batch in inner.batches:
                    if type(batch) is ColumnBatch:
                        yield batch.take(positions)
                        continue
                    yield [tuple([row[p] for p in positions])
                           for row in batch]

        return TableStream(variables, self._meter(batches()))

    def _stream_union(self, node: alg.Union, graph,
                      hint: Optional[int]) -> TableStream:
        left = self.stream(node.left, graph, hint)
        right = self.stream(node.right, graph, hint)
        out_vars = left.variables + tuple(v for v in right.variables
                                          if v not in left.index)
        pad = (None,) * (len(out_vars) - len(left.variables))
        rmap = [right.index.get(v) for v in out_vars]
        lmap = [left.index.get(v) for v in out_vars]

        def batches():
            # Columnar branch alignment reuses ``take``: identity plus
            # all-null pad columns on the left, a position remap (with
            # null columns for left-only variables) on the right.
            for batch in left.batches:
                if type(batch) is ColumnBatch:
                    yield batch.take(lmap) if pad else batch
                    continue
                yield [row + pad for row in batch] if pad else batch
            for batch in right.batches:
                if type(batch) is ColumnBatch:
                    yield batch.take(rmap)
                    continue
                yield [tuple(None if p is None else row[p] for p in rmap)
                       for row in batch]

        return TableStream(out_vars, self._meter(batches()))

    def _stream_distinct(self, node: alg.Distinct, graph,
                         hint: Optional[int]) -> TableStream:
        # A dedup typically consumes many duplicate rows per distinct row
        # it emits: inflate the child batch size so a bounded consumer
        # above (DISTINCT ... LIMIT k) doesn't drive the producer in
        # k-row micro-batches.
        child_hint = None if hint is None else max(hint * 16, 64)
        inner = self.stream(node.pattern, graph, child_hint)
        return TableStream(inner.variables,
                           self._meter(stream_distinct(inner.batches)))

    def _stream_graphpattern(self, node: alg.GraphPattern, graph,
                             hint: Optional[int]) -> TableStream:
        target = self.dataset.graph(node.graph_uri)
        return self.stream(node.pattern, target, hint)

    def _stream_slice(self, node: alg.Slice, graph,
                      hint: Optional[int]) -> TableStream:
        start = node.offset
        limit = node.limit
        need = None if limit is None else start + limit
        child_hint = hint if need is None \
            else (need if hint is None else min(hint, need))
        scope = self._sip
        self._sip = {}  # a window selects rows; pruning its input is unsound
        try:
            inner = self.stream(node.pattern, graph, child_hint)
        finally:
            self._sip = scope
        stats = self.stats

        def batches():
            if limit == 0:
                stats.early_exits += 1
                return
            seen = 0
            for batch in inner.batches:
                end = seen + len(batch)
                if end > start:
                    lo = max(0, start - seen)
                    hi = len(batch) if need is None \
                        else min(len(batch), need - seen)
                    piece = batch if lo == 0 and hi == len(batch) \
                        else batch[lo:hi]
                    if piece:
                        yield piece
                seen = end
                if need is not None and end >= need:
                    # The bound is satisfied: stop pulling.  Upstream
                    # producers past this point never run.
                    stats.early_exits += 1
                    close = getattr(inner.batches, "close", None)
                    if close is not None:
                        close()
                    return

        return TableStream(inner.variables, self._meter(batches()))

    # -- aggregation: streaming hash groups ----------------------------

    def _stream_group(self, node: alg.Group, graph,
                      hint: Optional[int]) -> TableStream:
        """Streaming hash aggregation: fold input batches into per-group
        accumulator states as they arrive, emit one final batch.

        ``Group`` is no longer a pipeline breaker: its input is *consumed*
        incrementally (the child BGP/join pipeline runs batch by batch and
        no input table is ever materialized); only the per-group states —
        one small accumulator per aggregate per group — are held.  For
        COUNT that state is an integer (or an id seen-set for DISTINCT);
        SUM/MIN/MAX/AVG fold decoded numeric values as they stream by;
        SAMPLE keeps the first value; GROUP_CONCAT appends lexical parts.
        The single-pattern COUNT shape short-circuits to the index-backed
        :meth:`_fast_group_count` and touches no rows at all.

        Group keys hash dense int-id tuples (scalar ids for the common
        one-variable GROUP BY), exactly like the materialized operator, so
        group order is the first-seen order of the input stream and every
        finished cell is bit-identical to :meth:`_eval_group`'s.
        """
        if self._sip:
            allowed = self._sip_for_group(node)
            if len(allowed) != len(self._sip):
                scope = self._sip
                self._sip = allowed
                try:
                    return self._stream_group(node, graph, hint)
                finally:
                    self._sip = scope
        pushed = self._wcoj_group_aggregate(node, graph)
        if pushed is not None:
            batches = iter((pushed.rows,)) if pushed.rows else iter(())
            return TableStream(pushed.variables, self._meter(batches))
        fast = self._fast_group_count(node, graph)
        if fast is not None:
            batches = iter((fast.rows,)) if fast.rows else iter(())
            return TableStream(fast.variables, self._meter(batches))
        inner = self.stream(node.pattern, graph, None)
        out_vars = tuple(node.group_vars) + tuple(a.alias
                                                  for a in node.aggregates)
        index = inner.index
        decode = self.dictionary.decode
        encode = self.dictionary.encode
        if len(node.aggregates) >= 2 and all(
                (a.expression is None and not a.distinct)
                or type(a.expression) is VarExpr
                for a in node.aggregates):
            # Several column aggregates over one group: appending one
            # member tuple — only the columns the aggregates read — and
            # batch-aggregating each column at emit (the materialized
            # operator's own :func:`_aggregate_columnar`) beats driving
            # N accumulators per row.  COUNT(DISTINCT *) is excluded: it
            # needs full solutions, so it stays on the accumulator path.
            return self._stream_group_members(node, inner, out_vars)
        specs = [_compile_aggregate(a, index, decode)
                 for a in node.aggregates]
        group_vars = node.group_vars
        positions = [index.get(v) for v in group_vars]
        having = node.having
        out_index = {v: i for i, v in enumerate(out_vars)}
        stats = self.stats

        # Scalar keys (the common one-variable GROUP BY) skip per-row
        # tuple construction; the single-aggregate shape skips the
        # state-list indirection.  Both mirror the materialized operator's
        # own fast paths, so the same queries stay fast on both planes.
        scalar = positions[0] if (len(positions) == 1
                                  and positions[0] is not None) else None
        if group_vars and scalar is None:
            def key_of(row):
                return tuple(None if p is None else row[p]
                             for p in positions)
        else:
            def key_of(row):  # implicit single group
                return ()

        # Columnar fold for the scalar-key single-COUNT shapes: the
        # accumulator loop walks the key column (and the counted column's
        # null mask) directly — no row tuple is ever built.  State shapes
        # are identical to the row folds', so mixed columnar/row input
        # streams share one ``groups`` dict.
        cfold = None
        if self.vectorize and scalar is not None and len(specs) == 1 \
                and node.aggregates[0].function == "count":
            agg0 = node.aggregates[0]
            expr0 = agg0.expression
            new0_c = specs[0][0]
            if expr0 is None and not agg0.distinct:
                # Counting needs no per-row state transition: Counter
                # tallies the key column in C and the Python loop runs
                # once per *distinct* key.
                def cfold(groups, get, cb):
                    for key, k in Counter(cb.columns[scalar]).items():
                        state = get(key)
                        if state is None:
                            groups[key] = state = new0_c()
                        state[0] += k
            elif type(expr0) is VarExpr and not agg0.distinct:
                vpos = index.get(expr0.name)

                def cfold(groups, get, cb):
                    vmask = None if vpos is None else cb.mask(vpos)
                    if vpos is not None and vmask is None:
                        for key, k in Counter(cb.columns[scalar]).items():
                            state = get(key)
                            if state is None:
                                groups[key] = state = new0_c()
                            state[0] += k
                        return
                    for key, null in zip(cb.columns[scalar],
                                         vmask if vmask is not None
                                         else repeat(1, len(cb))):
                        state = get(key)
                        if state is None:
                            groups[key] = state = new0_c()
                        if not null:
                            state[0] += 1
            elif type(expr0) is VarExpr and agg0.distinct:
                vpos = index.get(expr0.name)
                if vpos is not None:
                    def cfold(groups, get, cb):
                        vmask = cb.mask(vpos)
                        if vmask is None:
                            for key, tid in zip(cb.columns[scalar],
                                                cb.columns[vpos]):
                                state = get(key)
                                if state is None:
                                    groups[key] = state = set()
                                state.add(tid)
                            return
                        for key, tid, null in zip(cb.columns[scalar],
                                                  cb.columns[vpos], vmask):
                            state = get(key)
                            if state is None:
                                groups[key] = state = set()
                            if not null:
                                state.add(tid)
        to_rows_fb = self._rows

        def batches():
            groups: Dict = {}  # key -> aggregate state(s)
            get = groups.get
            folded = 0
            if len(specs) == 1:
                new0, fold0, _ = specs[0]
                for batch in inner.batches:
                    folded += len(batch)
                    if type(batch) is ColumnBatch:
                        if cfold is not None \
                                and batch.mask(scalar) is None:
                            cfold(groups, get, batch)
                            continue
                        batch = to_rows_fb(batch)
                    if scalar is not None:
                        for row in batch:
                            key = row[scalar]
                            state = get(key)
                            if state is None:
                                groups[key] = state = new0()
                            fold0(state, row)
                    else:
                        for row in batch:
                            key = key_of(row)
                            state = get(key)
                            if state is None:
                                groups[key] = state = new0()
                            fold0(state, row)
                finished = ((key, (state,))
                            for key, state in groups.items())
            else:
                folds = [fold for _, fold, _ in specs]
                if len(folds) == 2:
                    f0, f1 = folds

                    def fold_all(states, row):
                        f0(states[0], row)
                        f1(states[1], row)
                elif len(folds) == 3:
                    f0, f1, f2 = folds

                    def fold_all(states, row):
                        f0(states[0], row)
                        f1(states[1], row)
                        f2(states[2], row)
                else:
                    def fold_all(states, row):
                        i = 0
                        for fold in folds:
                            fold(states[i], row)
                            i += 1
                for batch in inner.batches:
                    folded += len(batch)
                    if type(batch) is ColumnBatch:
                        batch = to_rows_fb(batch)
                    for row in batch:
                        key = row[scalar] if scalar is not None \
                            else key_of(row)
                        states = get(key)
                        if states is None:
                            states = [new() for new, _, _ in specs]
                            groups[key] = states
                        fold_all(states, row)
                finished = groups.items()
            if not group_vars and not groups:
                # Implicit single group over empty input: COUNT is 0.
                groups[()] = [new() for new, _, _ in specs]
                finished = groups.items()
            stats.accumulator_rows += folded
            stats.groups_built += len(groups)
            out_rows: List[tuple] = []
            for key, states in finished:
                cells = [key] if scalar is not None else list(key)
                for (_, _, finish), state in zip(specs, states):
                    value = finish(state)
                    cells.append(None if value is None else encode(value))
                out_row = tuple(cells)
                if having is not None \
                        and not _passes_having(having, out_index,
                                               out_row, decode):
                    continue
                out_rows.append(out_row)
            if out_rows:
                yield out_rows

        return TableStream(out_vars, self._meter(batches()))

    def _stream_group_members(self, node: alg.Group, inner: TableStream,
                              out_vars) -> TableStream:
        """Member grouping for multi-aggregate column-only Groups.

        One ``list.append`` per input row while the child stream drains —
        of a *projected* member tuple holding only the columns the
        aggregates read, so wide input rows are never retained.  Each
        group's columns are then aggregated in one batch pass per
        aggregate — the same :func:`_aggregate_columnar` math the
        materialized operator runs, so cells are bit-identical.
        """
        index = inner.index
        decode = self.dictionary.decode
        encode = self.dictionary.encode
        group_vars = node.group_vars
        positions = [index.get(v) for v in group_vars]
        having = node.having
        out_index = {v: i for i, v in enumerate(out_vars)}
        stats = self.stats
        scalar = positions[0] if (len(positions) == 1
                                  and positions[0] is not None) else None
        # Project members down to the aggregated columns.  COUNT(*)
        # needs only multiplicity, so an all-COUNT(*) Group keeps empty
        # tuples; _aggregate_columnar reads the members through the
        # narrowed schema below.
        needed: List[str] = []
        for aggregate in node.aggregates:
            expr = aggregate.expression
            if expr is not None and expr.name in index \
                    and expr.name not in needed:
                needed.append(expr.name)
        member_pos = [index[v] for v in needed]
        member_index = {v: i for i, v in enumerate(needed)}
        if len(member_pos) == 1:
            mp0 = member_pos[0]

            def member_of(row):
                return (row[mp0],)
        else:
            def member_of(row):
                return tuple(row[p] for p in member_pos)

        to_rows_fb = self._rows

        def batches():
            groups: Dict = {}  # key -> projected member tuples
            get = groups.get
            folded = 0
            for batch in inner.batches:
                folded += len(batch)
                if type(batch) is ColumnBatch:
                    batch = to_rows_fb(batch)
                if scalar is not None:
                    for row in batch:
                        key = row[scalar]
                        members = get(key)
                        if members is None:
                            groups[key] = members = []
                        members.append(member_of(row))
                elif group_vars:
                    for row in batch:
                        key = tuple(None if p is None else row[p]
                                    for p in positions)
                        members = get(key)
                        if members is None:
                            groups[key] = members = []
                        members.append(member_of(row))
                else:
                    for row in batch:
                        members = get(())
                        if members is None:
                            groups[()] = members = []
                        members.append(member_of(row))
            if not group_vars and not groups:
                groups[()] = []  # implicit single group: COUNT is 0
            stats.accumulator_rows += folded
            stats.groups_built += len(groups)
            out_rows: List[tuple] = []
            for key, members in groups.items():
                cells = [key] if scalar is not None else list(key)
                for aggregate in node.aggregates:
                    value = _aggregate_columnar(aggregate, members,
                                                member_index, decode)
                    cells.append(None if value is None else encode(value))
                out_row = tuple(cells)
                if having is not None \
                        and not _passes_having(having, out_index,
                                               out_row, decode):
                    continue
                out_rows.append(out_row)
            if out_rows:
                yield out_rows

        return TableStream(out_vars, self._meter(batches()))

    # -- joins: build side materialized, probe side streamed -----------

    def _build_side(self, node: alg.AlgebraNode, graph) -> SolutionTable:
        """Materialize a join build side.

        Aggregate-bearing builds (the RDFFrames group-then-join shape)
        run through the *streaming* operators and drain into a table, so
        the build benefits from streaming hash aggregation and the
        index-backed COUNT fast path — the grouped subquery no longer
        materializes its pre-aggregation input just because it sits under
        a join.  Anything else stays on the materialized evaluator, whose
        row order for non-aggregate operators is the established oracle.
        """
        if _has_aggregate(node):
            return self.stream(node, graph, None).to_table()
        return self.evaluate(node, graph)

    def _stream_join(self, node: alg.Join, graph,
                     hint: Optional[int]) -> TableStream:
        left = self._build_side(node.left, graph)  # build side: breaker
        if not left.rows:
            return TableStream(left.variables, self._meter(iter(())))
        # SIP: the materialized build side exports its key sets into the
        # probe pipeline.  Stream *construction* compiles the BGP steps,
        # so the scope only needs to cover this call.
        exports = self._sip_exports(left, node.right) \
            if self._use_sip(node) else None
        if exports:
            outer = self._sip
            self._sip = self._sip_merge(exports)
            try:
                right = self.stream(node.right, graph, None)
            finally:
                self._sip = outer
        else:
            right = self.stream(node.right, graph, None)
        self.stats.joins += 1
        out_vars, shared, right_only = _merge_plan(left, right)
        lkey = [lp for lp, _ in shared]
        rkey = [rp for _, rp in shared]
        index: Dict[Tuple, List[tuple]] = {}
        loose: List[tuple] = []
        for lrow in left.rows:
            key = tuple(lrow[p] for p in lkey)
            if None in key:
                loose.append(lrow)
            else:
                index.setdefault(key, []).append(lrow)
        left_rows = left.rows

        to_rows_fb = self._rows

        def batches():
            for batch in right.batches:
                if type(batch) is ColumnBatch:
                    batch = to_rows_fb(batch)
                out: List[tuple] = []
                append = out.append
                for rrow in batch:
                    if not shared:
                        extra = tuple(rrow[rp] for rp in right_only)
                        for lrow in left_rows:
                            append(lrow + extra)
                        continue
                    key = tuple(rrow[p] for p in rkey)
                    if None in key:
                        for lrow in left_rows:
                            if _rows_compatible(lrow, rrow, shared):
                                append(_merge_rows(lrow, rrow, shared,
                                                   right_only))
                        continue
                    for lrow in index.get(key, ()):
                        append(_merge_rows(lrow, rrow, shared, right_only))
                    for lrow in loose:
                        if _rows_compatible(lrow, rrow, shared):
                            append(_merge_rows(lrow, rrow, shared,
                                               right_only))
                if out:
                    yield out

        return TableStream(out_vars, self._meter(batches()))

    def _stream_leftjoin(self, node: alg.LeftJoin, graph,
                         hint: Optional[int]) -> TableStream:
        left = self.stream(node.left, graph, hint)
        # The optional side is built before any preserved-side row exists,
        # so this plane has no exports to thread into it; the enclosing
        # scope is suspended (an outer join's filter inside an OPTIONAL
        # would turn pruned extensions into null padding — wrong rows,
        # not fewer rows).
        outer = self._sip
        self._sip = {}
        try:
            right = self._build_side(node.right, graph)  # build: breaker
        finally:
            self._sip = outer
        self.stats.joins += 1
        out_vars, shared, right_only = _merge_plan(left, right)
        condition = node.condition
        accept = None
        if condition is not None:
            out_index = {v: i for i, v in enumerate(out_vars)}
            decode = self.dictionary.decode

            def accept(merged_row) -> bool:
                try:
                    return ebv(condition.evaluate(
                        RowView(out_index, merged_row, decode)))
                except ExpressionError:
                    return False

        pad = (None,) * len(right_only)
        lkey = [lp for lp, _ in shared]
        rkey = [rp for _, rp in shared]
        index: Dict[Tuple, List[tuple]] = {}
        loose: List[tuple] = []
        for rrow in right.rows:
            key = tuple(rrow[p] for p in rkey)
            if None in key:
                loose.append(rrow)
            else:
                index.setdefault(key, []).append(rrow)
        right_rows = right.rows

        to_rows_fb = self._rows

        def batches():
            for batch in left.batches:
                if type(batch) is ColumnBatch:
                    batch = to_rows_fb(batch)
                out: List[tuple] = []
                append = out.append
                for lrow in batch:
                    matched = False
                    if not shared:
                        candidates = right_rows
                    else:
                        key = tuple(lrow[p] for p in lkey)
                        if None in key:
                            candidates = right_rows
                        else:
                            bucket = index.get(key)
                            candidates = bucket + loose if bucket else loose
                    for rrow in candidates:
                        if shared and not _rows_compatible(lrow, rrow,
                                                           shared):
                            continue
                        merged = _merge_rows(lrow, rrow, shared, right_only)
                        if accept is None or accept(merged):
                            append(merged)
                            matched = True
                    if not matched:
                        append(lrow + pad)
                if out:
                    yield out

        return TableStream(out_vars, self._meter(batches()))

    def _stream_filterexists(self, node: alg.FilterExists, graph,
                             hint: Optional[int]) -> TableStream:
        # The existence group is a breaker either way; building it first
        # lets EXISTS export its key sets into the streamed pattern side:
        # a pattern row whose everywhere-bound shared variable misses the
        # group's value set has no compatible witness, so for EXISTS
        # (negated=False) it is sound to prune at the leaves.  NOT EXISTS
        # keeps exactly those rows, so it exports nothing.  The group
        # itself is evaluated under its own suspended scope, mirroring
        # the materialized plane's auxiliary-side rule.
        scope = self._sip
        self._sip = {}
        try:
            inner = self._build_side(node.group, graph)  # breaker
        finally:
            self._sip = scope
        exports = None
        if not node.negated and self._use_sip(node):
            exports = self._sip_exports(inner, node.pattern)
        if exports:
            self._sip = self._sip_merge(exports)
            try:
                outer = self.stream(node.pattern, graph, hint)
            finally:
                self._sip = scope
        else:
            outer = self.stream(node.pattern, graph, hint)
        shared = [(outer.index[v], inner.index[v])
                  for v in inner.variables if v in outer.index]
        inner_rows = inner.rows
        negated = node.negated

        to_rows_fb = self._rows

        def batches():
            for batch in outer.batches:
                if type(batch) is ColumnBatch:
                    batch = to_rows_fb(batch)
                keep = [row for row in batch
                        if any(_rows_compatible(row, other, shared)
                               for other in inner_rows) != negated]
                if keep:
                    yield keep

        return TableStream(outer.variables, self._meter(batches()))

    # -- bounded sort --------------------------------------------------

    def _stream_topk(self, node: alg.TopK, graph,
                     hint: Optional[int]) -> TableStream:
        keep = node.offset + node.limit
        scope = self._sip
        self._sip = {}  # bounded sort: same suspension as _stream_slice
        try:
            if isinstance(node.pattern, alg.BGP) and node.pattern.triples:
                return self._stream_topk_bgp(node, graph, keep)
            inner = self.stream(node.pattern, graph, None)
        finally:
            self._sip = scope
        key = self._order_key(inner.index, node.keys)
        offset = node.offset

        def batches():
            rows = heapq.nsmallest(keep, inner.rows(), key=key)[offset:]
            if rows:
                yield rows

        return TableStream(inner.variables, self._meter(batches()))

    def _stream_topk_bgp(self, node: alg.TopK, graph,
                         keep: int) -> TableStream:
        """Bounded sort fused into BGP matching — threshold pruning.

        In the spirit of the threshold family of top-k algorithms (Fagin
        et al.), the sort bound flows *into* the join: patterns are
        matched breadth-first only until every ORDER BY variable is
        bound, then each partial row's sort key is compared against the
        current k-th-best complete row.  A partial that cannot beat it is
        dropped *before* its remaining patterns are expanded, so for
        ``ORDER BY ... LIMIT k`` over a high-fan-out BGP almost all of the
        join fan-out is never produced.  Ties are resolved exactly like a
        stable full sort: a later row never displaces an equal earlier
        one (the heap orders on ``(key, arrival)``).
        """
        stats = self.stats
        offset = node.offset
        pattern_vars = {term.name for triple in node.pattern.triples
                        for term in triple if isinstance(term, Variable)}
        wanted = [var for var, _ in node.keys if var in pattern_vars]
        if not wanted:
            # Every row ties on the (absent) keys: the stable top-k is
            # simply the first ``keep`` rows the BGP produces.
            inner = self._stream_bgp(node.pattern, graph, keep)

            def head_batches():
                taken: List[tuple] = []
                for batch in inner.batches:
                    taken.extend(batch)
                    if len(taken) >= keep:
                        stats.early_exits += 1
                        close = getattr(inner.batches, "close", None)
                        if close is not None:
                            close()
                        break
                rows = taken[offset:keep]
                if rows:
                    yield rows

            return TableStream(inner.variables, self._meter(head_batches()))

        self.stats.bgp_count += 1
        patterns = node.pattern.triples
        eliminate = self._wcoj_order(node.pattern, graph)
        if self.optimize and len(patterns) > 1 and not eliminate:
            patterns = order_patterns(patterns, self._graph_stats(graph))
        # Compile with the same strategy the materialized plane would use:
        # on a tie-heavy ORDER BY the window's k-subset depends on BGP
        # production order, so the planes must drive identical steps.
        schema, schemas, steps = self._bgp_steps(
            patterns, graph, self._bgp_intersect(node.pattern), eliminate)
        if steps is None:
            return TableStream(schema, self._meter(iter(())))
        # First pattern depth at which every sort variable is bound.
        prune_level = 0
        for var in wanted:
            for level, level_schema in enumerate(schemas):
                if var in level_schema:
                    prune_level = max(prune_level, level + 1)
                    break
        prune_level = min(prune_level, len(steps))

        partial_index = {v: i
                         for i, v in enumerate(schemas[prune_level - 1])}
        key_fn = self._order_key(partial_index, node.keys)
        head, tail = steps[:prune_level], steps[prune_level:]
        n_tail = len(tail)

        def finals(level, rows_in):
            if level == n_tail:
                for row in rows_in:
                    yield row
                return
            out: List[tuple] = []
            tail[level](rows_in, self._guarded_append(out))
            if out:
                yield from finals(level + 1, out)

        def batches():
            # The breadth-first head scan materializes the prune-level
            # partials, so it runs under the same mid-pattern safety
            # valves (max_rows, deadline) as the materialized BGP path.
            partials = [()]
            for step in head:
                out: List[tuple] = []
                step(partials, self._guarded_append(out))
                partials = out
                if not partials:
                    break
            heap: List[tuple] = []
            push, pushpop = heapq.heappush, heapq.heappushpop
            arrival = itertools.count()
            threshold = None
            pruned = False
            for partial in partials:
                kkey = key_fn(partial)
                if threshold is not None and not (kkey < threshold):
                    pruned = True
                    continue
                for frow in finals(0, (partial,)):
                    entry = (_Desc((kkey, next(arrival))), frow)
                    if len(heap) < keep:
                        push(heap, entry)
                        if len(heap) == keep:
                            threshold = heap[0][0].key[0]
                    else:
                        pushpop(heap, entry)
                        threshold = heap[0][0].key[0]
            if pruned:
                stats.early_exits += 1
            rows = [entry[1] for entry in sorted(heap)]
            rows.reverse()  # the max-heap sorts descending
            rows = rows[offset:]
            if rows:
                yield rows

        return TableStream(schema, self._meter(batches()))


# ----------------------------------------------------------------------
# Helpers (shared with the reference evaluator)
# ----------------------------------------------------------------------

#: A sideways filter re-orders a probe BGP only when it keeps at most
#: this fraction of the variable's values under the pattern's predicate.
#: Weaker filters still prune at the leaves, but in the plan-time order —
#: dragging a big scan to the front for a filter that keeps most of it
#: costs more than it saves.
SIP_REORDER_SELECTIVITY = 0.15

#: Above this filter size the per-member occurrence refinement is skipped
#: (the raw size ratio is used instead): probing huge sets would cost more
#: than the ordering decision is worth.
SIP_EFFECTIVE_PROBE_CAP = 512


class _SipAwareStats:
    """A :class:`GraphStatistics` view that discounts estimates for
    patterns binding sideways-filtered variables.

    A filter keeps at most its *effective* members of a variable's
    distinct values under a predicate — members that never occur in the
    pattern's position (e.g. Egyptian-born athletes against a
    ``starring`` scan) cannot match, so small filters are probed against
    the index to measure real selectivity.  A pattern whose filter keeps
    at most :data:`SIP_REORDER_SELECTIVITY` of the predicate's values has
    its estimate discounted accordingly; feeding these estimates to
    :func:`order_patterns` moves the filtered leaf to the front of the
    probe's join order.
    """

    def __init__(self, base: GraphStatistics, sip: Dict[str, set], graph):
        self._base = base
        self._sip = sip
        self._graph = graph
        self._effective: Dict[Tuple, int] = {}

    def _effective_count(self, values: set, p, subject_side: bool) -> int:
        """How many filter members actually occur under predicate ``p``
        in the filtered position."""
        key = (id(values), p, subject_side)
        count = self._effective.get(key)
        if count is None:
            if len(values) > SIP_EFFECTIVE_PROBE_CAP:
                count = len(values)
            else:
                graph = self._graph
                pid = graph.dictionary.lookup(p) \
                    if hasattr(graph, "dictionary") else None
                if pid is None:
                    count = len(values)
                elif subject_side:
                    count = sum(1 for v in values
                                if graph.objects_for(v, pid))
                else:
                    count = sum(1 for v in values
                                if graph.subjects_for(pid, v))
            self._effective[key] = count
        return count

    def estimate(self, pattern, bound) -> float:
        estimate = self._base.estimate(pattern, bound)
        s, p, o = pattern
        if isinstance(p, Variable):
            return estimate
        if isinstance(s, Variable) and s.name in self._sip \
                and s.name not in bound:
            universe = max(1, self._base.distinct_subjects(p))
            kept = self._effective_count(self._sip[s.name], p, True)
            if kept / universe <= SIP_REORDER_SELECTIVITY:
                estimate *= kept / universe
        if isinstance(o, Variable) and o.name in self._sip \
                and o.name not in bound:
            universe = max(1, self._base.distinct_objects(p))
            kept = self._effective_count(self._sip[o.name], p, False)
            if kept / universe <= SIP_REORDER_SELECTIVITY:
                estimate *= kept / universe
        return max(estimate, 0.001)


def _common_vars(left: alg.AlgebraNode, right: alg.AlgebraNode) -> List[str]:
    left_vars = set(left.in_scope())
    return [v for v in right.in_scope() if v in left_vars]


def _has_aggregate(node: alg.AlgebraNode) -> bool:
    """True when the subtree contains a ``Group`` (mirrors the planner's
    ``plan_has_aggregate`` without importing the plan layer)."""
    if isinstance(node, alg.Group):
        return True
    return any(_has_aggregate(child) for child in node.children())


#: Sentinel: the columnar aggregate fast path does not apply.
_SLOW = object()


def _passes_having(having, out_index, out_row, decode) -> bool:
    """SPARQL HAVING over one finished group row (grouping variables +
    aggregate aliases): errors eliminate the group, exactly like FILTER.
    The single definition keeps the materialized, streaming, and
    index-backed Group paths from diverging on error semantics."""
    try:
        return ebv(having.evaluate(RowView(out_index, out_row, decode)))
    except ExpressionError:
        return False


def _aggregate_columnar(aggregate: alg.Aggregate, rows, index, decode):
    """Aggregate directly over id columns when the aggregate expression is
    a bare variable (the dominant case: COUNT(?m), SUM(?y), ...).

    COUNT needs no decoding at all — id equality is term equality, so
    DISTINCT deduplicates on ids; the numeric aggregates decode only the
    (possibly deduplicated) column.  Returns ``_SLOW`` when the expression
    is complex and the caller must fall back to per-row views."""
    expr = aggregate.expression
    if expr is None:  # COUNT(*)
        if aggregate.function != "count":
            raise EvaluationError("only COUNT supports *")
        if aggregate.distinct:  # COUNT(DISTINCT *): distinct solutions
            return Literal(len(set(rows)))
        return Literal(len(rows))
    if type(expr) is not VarExpr:
        return _SLOW
    pos = index.get(expr.name)
    if pos is None:
        ids = []
    else:
        ids = [row[pos] for row in rows if row[pos] is not None]
    if aggregate.distinct:
        seen = set()
        unique = []
        for tid in ids:
            if tid not in seen:
                seen.add(tid)
                unique.append(tid)
        ids = unique
    if aggregate.function == "count":
        return Literal(len(ids))
    return _finish_aggregate(aggregate.function,
                             [decode(tid) for tid in ids],
                             aggregate.separator)


def _apply_aggregate(aggregate: alg.Aggregate, members):
    """Apply one aggregate over a group's members (dicts or RowViews)."""
    values = []
    if aggregate.expression is None:  # COUNT(*)
        if aggregate.function != "count":
            raise EvaluationError("only COUNT supports *")
        if aggregate.distinct:
            # COUNT(DISTINCT *): count distinct solutions.  Mappings are
            # keyed by their sorted (variable, term) items; sorting never
            # compares terms because dict keys are unique.
            return Literal(len({tuple(sorted(mu.items()))
                                for mu in members}))
        return Literal(len(members))
    for mu in members:
        try:
            values.append(aggregate.expression.evaluate(mu))
        except ExpressionError:
            continue
    if aggregate.distinct:
        seen = set()
        unique = []
        for value in values:
            if value not in seen:
                seen.add(value)
                unique.append(value)
        values = unique
    return _finish_aggregate(aggregate.function, values, aggregate.separator)


_COUNT_LITERALS: Dict[int, Literal] = {}


def _count_literal(n: int) -> Literal:
    """Memoized ``Literal(n)`` for aggregate counts.

    COUNT-heavy groupings finish thousands of groups whose counts are
    drawn from a few dozen distinct small ints; constructing (and later
    re-hashing, when the dictionary interns it) a fresh Literal per group
    is a measurable share of the drain.  Counts repeat across queries
    too, so the cache is module-level; it is bounded by the number of
    distinct counts ever produced, which grows like the log of the data.
    """
    lit = _COUNT_LITERALS.get(n)
    if lit is None:
        _COUNT_LITERALS[n] = lit = Literal(n)
    return lit


def _value_accumulator(function: str, separator: Optional[str]):
    """``(new_state, fold(state, term), finish(state))`` over term values.

    The per-group accumulator core of the streaming ``Group``: states are
    tiny mutable lists folded one value at a time.  Numeric folds replicate
    :func:`_finish_aggregate` exactly — same left-to-right addition order
    (so float sums are bit-identical), same poison rule (one non-numeric
    value makes the whole aggregate an error -> unbound), same datatype
    promotion flags.
    """
    if function == "sample":
        def new_state():
            return [None, False]

        def fold(state, value):
            if not state[1]:
                state[0] = value
                state[1] = True

        def finish(state):
            return state[0]
    elif function == "group_concat":
        new_state = list
        sep = " " if separator is None else separator

        def fold(state, value):
            state.append(value.lexical if isinstance(value, Literal)
                         else str(value))

        def finish(state):
            return Literal(sep.join(state))
    elif function in ("min", "max"):
        smaller = function == "min"

        def new_state():
            # [best, any_value_seen, poisoned]
            return [None, False, False]

        def fold(state, value):
            state[1] = True
            if state[2]:
                return
            if not (isinstance(value, Literal) and value.is_numeric):
                state[2] = True
                return
            number = value.value
            best = state[0]
            if best is None:
                state[0] = number
            elif (number < best) if smaller else (best < number):
                state[0] = number

        def finish(state):
            if state[2] or not state[1]:
                return None
            return Literal(state[0])
    elif function in ("sum", "avg"):
        def new_state():
            # [total, n, poisoned, saw_double, saw_non_integer]
            return [0, 0, False, False, False]

        def fold(state, value):
            if state[2]:
                return
            if not (isinstance(value, Literal) and value.is_numeric):
                state[2] = True
                return
            state[0] += value.value
            state[1] += 1
            if value.datatype == XSD_DOUBLE:
                state[3] = True
            elif value.datatype != XSD_INTEGER:
                state[4] = True

        if function == "sum":
            def finish(state):
                if state[2]:
                    return None
                if not state[1]:
                    return Literal(0)
                return _numeric_literal(state[0], state[3], state[4])
        else:
            def finish(state):
                if state[2] or not state[1]:
                    return None
                return _numeric_literal(state[0] / state[1], state[3], True)
    else:
        raise EvaluationError("unknown aggregate %r" % function)
    return new_state, fold, finish


def _compile_aggregate(aggregate: alg.Aggregate, index: Dict[str, int],
                       decode):
    """Compile one aggregate into ``(new_state, fold(state, row), finish)``.

    The row-level face of :func:`_value_accumulator`, specialized once per
    Group per aggregate on the input schema:

    * COUNT folds without decoding anything — plain integer bumps, or an
      id seen-set for ``COUNT(DISTINCT ?x)`` (id equality is term
      equality, the same dedup the materialized fast path uses);
    * bare-variable value aggregates read the id column, dedupe on ids
      when DISTINCT, and decode one term per folded value;
    * complex expressions evaluate through a lazy :class:`RowView` per
      row, with SPARQL error semantics (an erroring row contributes no
      value), and dedupe on term values when DISTINCT.

    ``finish`` returns a term (or ``None`` for unbound); results are
    bit-identical to the materialized operator's
    :func:`_aggregate_columnar` / :func:`_apply_aggregate` path.
    """
    function = aggregate.function
    expr = aggregate.expression
    if expr is None:  # COUNT(*)
        if function != "count":
            raise EvaluationError("only COUNT supports *")
        if aggregate.distinct:  # COUNT(DISTINCT *): distinct solutions
            new_state = set

            def fold(state, row):
                state.add(row)

            def finish(state):
                return _count_literal(len(state))
        else:
            def new_state():
                return [0]

            def fold(state, row):
                state[0] += 1

            def finish(state):
                return _count_literal(state[0])

        return new_state, fold, finish

    if type(expr) is VarExpr:
        pos = index.get(expr.name)
        if function == "count":
            if not aggregate.distinct:
                def new_state():
                    return [0]

                if pos is None:
                    def fold(state, row):
                        pass
                else:
                    def fold(state, row):
                        if row[pos] is not None:
                            state[0] += 1

                def finish(state):
                    return _count_literal(state[0])
            else:
                new_state = set
                if pos is None:
                    def fold(state, row):
                        pass
                else:
                    def fold(state, row):
                        tid = row[pos]
                        if tid is not None:
                            state.add(tid)

                def finish(state):
                    return _count_literal(len(state))
            return new_state, fold, finish

        # Value aggregates over an id column fold each decoded value into
        # the incremental :func:`_value_accumulator` state — O(1) per
        # group for the numerics (running totals, same left-to-right
        # addition order and poison/promotion flags as the materialized
        # path, so results match bit for bit).  SAMPLE keeps only the
        # first id; DISTINCT dedupes on ids before folding.
        if function == "sample":
            def new_state():
                return [None]

            if pos is None:
                def fold(state, row):
                    pass
            else:
                # First id, DISTINCT or not: dedup cannot change values[0].
                def fold(state, row):
                    if state[0] is None:
                        state[0] = row[pos]

            def finish(state):
                return None if state[0] is None else decode(state[0])

            return new_state, fold, finish
        value_new, value_fold, value_finish = _value_accumulator(
            function, aggregate.separator)
        if aggregate.distinct:
            def new_state():
                return (set(), value_new())

            if pos is None:
                def fold(state, row):
                    pass
            else:
                def fold(state, row):
                    tid = row[pos]
                    if tid is not None and tid not in state[0]:
                        state[0].add(tid)
                        value_fold(state[1], decode(tid))

            def finish(state):
                return value_finish(state[1])
        else:
            new_state = value_new
            if pos is None:
                def fold(state, row):
                    pass
            else:
                def fold(state, row):
                    tid = row[pos]
                    if tid is not None:
                        value_fold(state, decode(tid))

            finish = value_finish
        return new_state, fold, finish

    # Complex expression: per-row lazy evaluation, error rows skipped.
    expression = expr
    if function == "count":
        if aggregate.distinct:
            new_state = set

            def fold(state, row):
                try:
                    state.add(expression.evaluate(RowView(index, row,
                                                          decode)))
                except ExpressionError:
                    pass

            def finish(state):
                return _count_literal(len(state))
        else:
            def new_state():
                return [0]

            def fold(state, row):
                try:
                    expression.evaluate(RowView(index, row, decode))
                except ExpressionError:
                    return
                state[0] += 1

            def finish(state):
                return _count_literal(state[0])
        return new_state, fold, finish

    value_new, value_fold, value_finish = _value_accumulator(
        function, aggregate.separator)
    if aggregate.distinct:
        def new_state():
            return (set(), value_new())

        def fold(state, row):
            try:
                value = expression.evaluate(RowView(index, row, decode))
            except ExpressionError:
                return
            if value not in state[0]:
                state[0].add(value)
                value_fold(state[1], value)

        def finish(state):
            return value_finish(state[1])
    else:
        new_state = value_new

        def fold(state, row):
            try:
                value = expression.evaluate(RowView(index, row, decode))
            except ExpressionError:
                return
            value_fold(state, value)

        finish = value_finish
    return new_state, fold, finish


def _numeric_literal(number, saw_double: bool,
                     saw_non_integer: bool) -> Literal:
    """A SUM/AVG result literal with SPARQL's numeric type promotion.

    Integer inputs promote to ``xsd:decimal`` when the operation leaves
    the integers (AVG divides; a decimal operand infects a SUM); any
    ``xsd:double`` operand makes the result a double.  Earlier revisions
    let Python's float arithmetic turn every non-integer result into
    ``xsd:double``, so ``AVG`` over int/decimal columns silently changed
    datatype; the value itself was and is the same.
    """
    if saw_double:
        return Literal(float(number))
    if saw_non_integer or isinstance(number, float):
        lexical = repr(float(number))
        if "e" in lexical or "E" in lexical:
            # XSD decimal forbids exponent notation; expand to the exact
            # plain form of the shortest-round-trip float repr.
            lexical = format(Decimal(lexical), "f")
        if lexical.endswith(".0"):
            lexical = lexical[:-2]
        return Literal(lexical, datatype=XSD_DECIMAL)
    return Literal(number)


def _finish_aggregate(function: str, values, separator: Optional[str] = None):
    if function == "count":
        return Literal(len(values))
    if function == "sample":
        return values[0] if values else None
    if function == "group_concat":
        parts = [v.lexical if isinstance(v, Literal) else str(v) for v in values]
        return Literal((" " if separator is None else separator).join(parts))
    numbers = []
    saw_double = saw_non_integer = False
    for value in values:
        if isinstance(value, Literal) and value.is_numeric:
            numbers.append(value.value)
            if value.datatype == XSD_DOUBLE:
                saw_double = True
            elif value.datatype != XSD_INTEGER:
                saw_non_integer = True
        else:
            return None  # type error -> aggregate is an error -> unbound
    if function == "sum":
        if not numbers:
            return Literal(0)
        return _numeric_literal(sum(numbers), saw_double, saw_non_integer)
    if not numbers:
        return None
    if function == "min":
        return Literal(min(numbers))
    if function == "max":
        return Literal(max(numbers))
    if function == "avg":
        return _numeric_literal(sum(numbers) / len(numbers), saw_double,
                                True)
    raise EvaluationError("unknown aggregate %r" % function)


def _sort_key(value):
    """Total order for ORDER BY: unbound < numbers < strings/URIs."""
    if value is None:
        return (0, 0, "")
    if isinstance(value, Literal):
        if value.is_numeric:
            return (1, value.value, "")
        return (2, 0, str(value.lexical))
    return (2, 0, str(value))


class _Desc:
    """Inverts the comparison order of a wrapped sort key.

    Used for the DESC components of a composite ORDER BY key (strings have
    no arithmetic negation) and to turn ``heapq``'s min-heap into the
    max-heap the bounded top-k scan needs.  Equal keys stay equal, so
    sort stability is untouched.
    """

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other):
        return other.key < self.key

    def __eq__(self, other):
        return other.key == self.key
