"""The SPARQL engine façade — this repo's stand-in for Virtuoso.

``Engine`` owns a :class:`~repro.rdf.Dataset` of named graphs and answers
queries from either front-end through one logical-plan layer:

* SPARQL text: parse -> algebra -> optimizer passes -> evaluate,
* RDFFrames query models: compile (:mod:`repro.core.compiler`) -> the same
  algebra -> the same passes -> evaluate — no SPARQL text round trip.

Plans are cached by their normalized structural key
(:func:`~repro.sparql.plan.plan_key`), so repeated executions of the same
logical query — from either front-end, in any surface spelling — skip
parsing/compilation *and* the optimizer pipeline entirely.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import List, Optional, Tuple, Union

from ..rdf.dataset import Dataset
from ..rdf.graph import Graph
from . import algebra as alg
from .evaluator import (EvaluationStats, Evaluator, QueryTimeout,
                        _synopses_built)
from .parser import parse
from .plan import Plan, optimize_plan, output_variables, plan_key
from .results import ResultSet, ResultStream

__all__ = ["Engine", "QueryTimeout"]


class Engine:
    """An in-process RDF database engine with a SPARQL SELECT interface.

    Example
    -------
    >>> from repro.rdf import Graph, URIRef
    >>> from repro.sparql import Engine
    >>> g = Graph("http://example.org")
    >>> _ = g.add(URIRef("http://ex/m1"), URIRef("http://ex/starring"),
    ...           URIRef("http://ex/alice"))
    >>> engine = Engine(g)
    >>> result = engine.query(
    ...     "SELECT ?a WHERE { ?m <http://ex/starring> ?a }")
    >>> [str(a) for (a,) in result.rows]
    ['http://ex/alice']

    Parameters
    ----------
    source:
        A :class:`Dataset`, a single :class:`Graph`, or a list of graphs.
    optimize:
        When False, the plan-time ``JoinOrdering`` pass (and the reference
        plane's eval-time BGP ordering) is disabled — used by the ablation
        benchmarks to isolate the optimizer's contribution.
    streaming:
        How plans are executed.  ``"auto"`` (the default) routes plans
        the planner marked streaming — a row bound (``TopK`` or a limited
        ``Slice``) or an aggregation (``Group``) in the tree — through
        the pipelined batch-iterator executor, everything else through
        the materialized one.  ``True`` forces the streaming executor for
        every plan, ``False`` never uses it — both used by the
        differential test suite and the benchmarks.
    limit_pushdown:
        When False, the planner's ``LimitPushdown`` pass is skipped (no
        ``TopK`` fusion, no slice motion, no streaming annotation) — the
        materialize-everything baseline the ``limit_topk`` benchmark
        section measures against.
    sip:
        Sideways information passing: hash-join build sides export their
        join-key id-sets into the probe side's BGP leaves as semi-join
        filters, pruning fan-out before rows exist.  ``'auto'`` (default)
        follows the planner's per-join ``JoinStrategy`` eligibility
        annotations; ``True`` forces it wherever structurally sound;
        ``False`` disables it — the baseline the ``joins`` benchmark
        section measures against.
    multiway:
        Multiway intersection BGP evaluation: when the next variable to
        bind occurs in two or more remaining triple patterns, its
        candidates come from a k-way intersection of the graph's sorted
        runs instead of expand-then-filter.  Same
        ``'auto'``/``True``/``False`` contract as ``sip``.
    wcoj:
        Generic-join (worst-case-optimal) BGP evaluation: cyclic BGPs
        the cost-based planner annotated ``strategy='wcoj'`` bind one
        variable at a time along the plan's elimination order, each
        level a k-way sorted-run intersection over every pattern that
        constrains the variable.  ``'auto'`` (default) follows the
        planner; ``True`` forces generic join for every multi-pattern
        BGP it can cover (computing an order on the spot when the plan
        carries none); ``False`` disables it — the baseline the ``wcoj``
        benchmark section measures against.  ``multiway=False`` also
        suppresses planner-driven generic join, so a fully knobs-off
        engine runs pure nested loops.

        These knobs preserve result *bags* for un-windowed queries, but
        not row order: a filtered or intersected BGP produces rows in a
        different (still deterministic) order, so toggling a knob may
        reorder results, and a ``LIMIT`` window without a total ``ORDER
        BY`` (or with ties on its keys) may select a different — equally
        valid — k-subset.  With the knobs *fixed*, the streaming and
        materialized executors drive identical compiled steps and agree
        on BGP-spine row order exactly as before.
    vectorize:
        Columnar batch execution: eligible streaming plans exchange
        :class:`~.solution.ColumnBatch` objects (one typed id array per
        variable) between operators, with filters compiled to
        selection-vector scans and BGP fan-out done by column
        replication.  ``'auto'`` (default) routes plans the planner
        annotated ``vectorized`` (pure-id operator trees over non-general
        BGPs) when they would stream anyway; ``True`` forces the columnar
        plane for every plan (cold operators transparently detour through
        row view); ``False`` keeps the row-tuple plane — the baseline the
        ``vectorized`` benchmark section measures against.  Row order is
        preserved exactly, so toggling this knob never changes results —
        not even ``LIMIT`` windows.
    plan_cache_size:
        Maximum number of optimized plans kept (LRU).  0 disables caching.
    """

    def __init__(self, source: Union[Dataset, Graph, List[Graph]],
                 optimize: bool = True, cache_bgps: bool = True,
                 max_intermediate_rows: Optional[int] = None,
                 columnar: bool = True, plan_cache_size: int = 128,
                 streaming: Union[bool, str] = "auto",
                 limit_pushdown: bool = True,
                 sip: Union[bool, str] = "auto",
                 multiway: Union[bool, str] = "auto",
                 wcoj: Union[bool, str] = "auto",
                 vectorize: Union[bool, str] = "auto"):
        if isinstance(source, Dataset):
            self.dataset = source
        else:
            self.dataset = Dataset()
            graphs = [source] if isinstance(source, Graph) else list(source)
            for graph in graphs:
                self.dataset.add_graph(graph)
        self.optimize = optimize
        self.cache_bgps = cache_bgps
        # Safety valve: abort queries whose intermediate results explode
        # (the role of a server-side memory budget in a real engine).
        self.max_intermediate_rows = max_intermediate_rows
        # columnar=False selects the dict-based reference evaluator (the
        # seed data plane), kept for differential testing and perf reports.
        self.columnar = columnar
        if streaming not in (True, False, "auto"):
            raise ValueError("streaming must be True, False, or 'auto'")
        if sip not in (True, False, "auto"):
            raise ValueError("sip must be True, False, or 'auto'")
        if multiway not in (True, False, "auto"):
            raise ValueError("multiway must be True, False, or 'auto'")
        if wcoj not in (True, False, "auto"):
            raise ValueError("wcoj must be True, False, or 'auto'")
        if vectorize not in (True, False, "auto"):
            raise ValueError("vectorize must be True, False, or 'auto'")
        self.streaming = streaming
        self.limit_pushdown = limit_pushdown
        self.sip = sip
        self.multiway = multiway
        self.wcoj = wcoj
        self.vectorize = vectorize
        self.plan_cache_size = plan_cache_size
        self._plan_cache: "OrderedDict[str, Plan]" = OrderedDict()
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.last_plan: Optional[Plan] = None
        self.last_stats: Optional[EvaluationStats] = None
        self.last_elapsed: float = 0.0
        self.queries_executed = 0

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, source, default_graph_uri: Optional[str] = None) -> Plan:
        """Build (or fetch from cache) the optimized plan for ``source``.

        ``source`` is SPARQL text, an already-parsed algebra
        :class:`~.algebra.Query`, or an RDFFrames
        :class:`~repro.core.query_model.QueryModel` (compiled directly,
        skipping the text round trip).
        """
        if isinstance(source, str):
            query, kind = parse(source), "text"
        elif isinstance(source, alg.Query):
            query, kind = source, "algebra"
        else:
            from ..core.compiler import compile_model
            query, kind = compile_model(source), "model"

        key = plan_key(query, default_graph_uri, self._fingerprint())
        cached = self._plan_cache.get(key)
        if cached is not None:
            self._plan_cache.move_to_end(key)
            self.plan_cache_hits += 1
            return cached

        graph = self._planning_graph(query.from_graphs, default_graph_uri)
        # Synopses (characteristic sets, per-predicate samples) are built
        # lazily by the cost-based passes while planning; record the
        # builds this plan triggered so the first execution's stats can
        # attribute them (cache hits attribute zero, correctly).
        before = _synopses_built(graph)
        plan = optimize_plan(query, key=key, graph=graph,
                             dataset=self.dataset, join_order=self.optimize,
                             source=kind, push_limits=self.limit_pushdown)
        plan.synopsis_builds = _synopses_built(graph) - before
        self.plan_cache_misses += 1
        if self.plan_cache_size > 0:
            self._plan_cache[key] = plan
            while len(self._plan_cache) > self.plan_cache_size:
                self._plan_cache.popitem(last=False)
        return plan

    def _planning_graph(self, from_graphs: List[str],
                        default_graph_uri: Optional[str]):
        """The graph whose statistics drive join ordering, or ``None`` when
        resolution fails (the error then surfaces at execution, exactly as
        it did on the pre-planner path)."""
        try:
            if from_graphs:
                if any(uri not in self.dataset for uri in from_graphs):
                    return None
                if len(from_graphs) == 1:
                    return self.dataset.graph(from_graphs[0])
                return self.dataset.union_view(from_graphs)
            if default_graph_uri is not None:
                if default_graph_uri not in self.dataset:
                    return None
                return self.dataset.graph(default_graph_uri)
            graphs = list(self.dataset)
            if not graphs:
                return None
            if len(graphs) == 1:
                return graphs[0]
            return self.dataset.union_view()
        except KeyError:
            return None

    def _fingerprint(self) -> Tuple:
        """Cheap dataset-state fingerprint tied into every plan key, so
        graph mutations invalidate cached join orders — and, since the
        serving tier's result cache reuses the same key, cached *rows*.
        The per-graph mutation counter (``Graph.version``) is included so
        a remove+add netting an unchanged triple count still changes the
        fingerprint; length alone would serve stale results."""
        return tuple(sorted((g.uri, len(g), g.version)
                            for g in self.dataset))

    def result_key(self, source, default_graph_uri: Optional[str] = None
                   ) -> str:
        """The normalized cache key for ``source``'s *results* under the
        dataset's current state: the plan key, which already folds in the
        query structure, the default graph, and :meth:`_fingerprint`.
        Cheap before execution — repeated calls hit the plan cache."""
        return self.plan(source, default_graph_uri).key

    def clear_plan_cache(self) -> None:
        self._plan_cache.clear()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _use_streaming(self, plan: Plan) -> bool:
        if self.streaming == "auto":
            return plan.streaming
        return bool(self.streaming)

    def _use_vectorize(self, plan: Plan) -> bool:
        """Route a plan onto the columnar batch plane?

        ``'auto'`` requires both the planner's structural eligibility
        annotation (``plan.vectorized``) and a plan the streaming
        executor would run anyway (row order is preserved exactly, so
        vectorizing never changes which rows a window selects) — and
        stands down when ``multiway=True`` forces intersection steps,
        which have no columnar form.  ``True`` forces the columnar plane
        (ineligible operators transparently detour through row view);
        ``False`` keeps every batch in row form.
        """
        if self.vectorize == "auto":
            return (getattr(plan, "vectorized", False) and plan.streaming
                    and self._use_streaming(plan)
                    and self.multiway is not True
                    and self.wcoj is not True)
        return bool(self.vectorize)

    def evaluate_plan(self, plan: Plan,
                      default_graph_uri: Optional[str] = None,
                      timeout: Optional[float] = None,
                      cancel=None, max_rows: Optional[int] = None
                      ) -> Tuple[ResultSet, EvaluationStats, float]:
        """Evaluate a plan without touching the engine's shared
        ``last_*`` bookkeeping — the thread-confined execution core.

        This is what the concurrent serving tier calls: every invocation
        gets its own :class:`Evaluator` (per-request stats, deadline, row
        budget, and cancel token), and nothing on the engine object is
        mutated, so many threads can execute plans over the same
        read-only dataset simultaneously.  ``max_rows`` overrides the
        engine-level ``max_intermediate_rows`` valve for this request;
        ``cancel`` is a :class:`~repro.sparql.errors.CancelToken` checked
        at the evaluator's deadline checkpoints.  On failure the raised
        exception carries the partial counters as ``evaluation_stats``.

        Returns ``(result, stats, elapsed_seconds)``.
        """
        start = time.perf_counter()
        deadline = None if timeout is None else start + timeout
        # Join ordering already happened at plan time; the evaluator must
        # not re-derive it per execution.
        use_vector = self._use_vectorize(plan)
        evaluator = Evaluator(self.dataset, optimize=False,
                              cache_bgps=self.cache_bgps,
                              max_rows=self.max_intermediate_rows
                              if max_rows is None else max_rows,
                              deadline=deadline, cancel=cancel,
                              sip=self.sip, multiway=self.multiway,
                              wcoj=self.wcoj, vectorize=use_vector)
        try:
            # vectorize=True rides on the streaming executor — forcing
            # the columnar plane forces streaming too.
            if use_vector or self._use_streaming(plan):
                solutions = evaluator.evaluate_query_stream(
                    plan.query, default_graph_uri).to_table()
            else:
                solutions = evaluator.evaluate_query(plan.query,
                                                     default_graph_uri)
            elapsed = time.perf_counter() - start
            if timeout is not None and elapsed > timeout:
                raise QueryTimeout("query took %.3fs (budget %.3fs)"
                                   % (elapsed, timeout))
        except Exception as exc:
            # Let the serving tier report per-request work done even for
            # queries that were cancelled or tripped a valve.
            exc.evaluation_stats = evaluator.stats
            raise
        result = ResultSet.from_table(solutions, evaluator.dictionary,
                                      plan.output_variables)
        return result, evaluator.stats, elapsed

    def execute_plan(self, plan: Plan,
                     default_graph_uri: Optional[str] = None,
                     timeout: Optional[float] = None,
                     cancel=None) -> ResultSet:
        """Evaluate an optimized plan on the columnar data plane.

        Plans the planner marked streaming (a row bound or a ``Group`` in
        the tree) run on the pipelined batch-iterator executor, so
        ``LIMIT``-topped queries stop pulling as soon as the bound is
        satisfied and aggregations fold their input into per-group
        accumulators instead of materializing it; everything else runs
        fully materialized.  For *unbounded* queries the two
        planes return identical result bags (the differential suite holds
        them to that).  Row order for unordered join results is
        plane-specific — the materialized join picks its build side by
        cardinality, the streaming join always probes with the right
        child — so a ``LIMIT`` window over such a join is a valid but
        possibly different k-subset per plane, exactly as it already is
        between the columnar and reference planes.
        """
        result, stats, elapsed = self.evaluate_plan(
            plan, default_graph_uri, timeout, cancel=cancel)
        if plan.executions == 0:
            # Planning-time synopsis builds belong to the query that
            # triggered them; repeat executions report only their own.
            stats.synopsis_builds += getattr(plan, "synopsis_builds", 0)
        plan.executions += 1
        self.last_plan = plan
        self.last_stats = stats
        self.last_elapsed = elapsed
        self.queries_executed += 1
        return result

    def query(self, text: str, default_graph_uri: Optional[str] = None,
              timeout: Optional[float] = None, cancel=None) -> ResultSet:
        """Execute a SPARQL SELECT query and return its result set.

        Example
        -------
        >>> from repro.data import DBPEDIA_URI, build_dataset
        >>> engine = Engine(build_dataset(scale=0.02))
        >>> result = engine.query(
        ...     "PREFIX dbpp: <http://dbpedia.org/property/> "
        ...     "SELECT ?actor (COUNT(?film) AS ?n) "
        ...     "WHERE { ?film dbpp:starring ?actor } GROUP BY ?actor",
        ...     default_graph_uri=DBPEDIA_URI)
        >>> engine.last_plan.streaming  # aggregate plans stream
        True
        """
        if self.columnar:
            plan = self.plan(text, default_graph_uri)
            return self.execute_plan(plan, default_graph_uri, timeout,
                                     cancel=cancel)
        return self._query_reference(parse(text), default_graph_uri, timeout)

    def stream(self, source, default_graph_uri: Optional[str] = None,
               timeout: Optional[float] = None,
               batch_rows: int = 64, cancel=None) -> ResultStream:
        """Execute a query as a lazy cursor over decoded result rows.

        ``source`` is anything :meth:`plan` accepts.  The returned
        :class:`~.results.ResultStream` pulls from the pipelined executor
        on demand: fetching a page of ``n`` rows at ``offset`` costs
        O(offset + n) local row production — regardless of whether the
        query itself carries a LIMIT — which is what the simulated
        endpoint's pagination and the clients' page fetches ride on.
        ``timeout`` arms a deadline covering future pulls from the
        cursor; long-lived cursors can restart the budget per request
        with :meth:`ResultStream.arm_deadline` (the endpoint does, so
        client think-time between pages never counts against it).  On the
        reference plane (``columnar=False``) the query is materialized up
        front and the cursor merely pages over it.

        Example
        -------
        >>> from repro.data import DBPEDIA_URI, build_dataset
        >>> engine = Engine(build_dataset(scale=0.02))
        >>> cursor = engine.stream(
        ...     "PREFIX dbpp: <http://dbpedia.org/property/> "
        ...     "SELECT ?a ?b WHERE { ?f dbpp:starring ?a . "
        ...     "?f dbpp:starring ?b }", default_graph_uri=DBPEDIA_URI)
        >>> page = cursor.page(offset=0, limit=5)
        >>> len(page)
        5
        >>> engine.last_stats.rows_pulled <= 200  # not the full join
        True
        """
        if not self.columnar:
            if isinstance(source, str):
                result = self.query(source, default_graph_uri, timeout)
            elif isinstance(source, alg.Query):
                result = self._query_reference(source, default_graph_uri,
                                               timeout)
            else:
                from ..core.translator import translate
                result = self.query(translate(source), default_graph_uri,
                                    timeout)
            return ResultStream(result.variables, iter(result.rows))
        if self.streaming is False:
            # Streaming explicitly pinned off: materialize through the
            # standard path and page over the finished result, so this
            # engine's row order is the materialized plane's everywhere.
            plan = self.plan(source, default_graph_uri)
            result = self.execute_plan(plan, default_graph_uri, timeout)
            return ResultStream(result.variables, iter(result.rows))
        plan = self.plan(source, default_graph_uri)
        deadline = None if timeout is None \
            else time.perf_counter() + timeout
        evaluator = Evaluator(self.dataset, optimize=False,
                              cache_bgps=self.cache_bgps,
                              max_rows=self.max_intermediate_rows,
                              deadline=deadline, cancel=cancel,
                              sip=self.sip, multiway=self.multiway,
                              wcoj=self.wcoj,
                              vectorize=self._use_vectorize(plan))
        table_stream = evaluator.evaluate_query_stream(
            plan.query, default_graph_uri, hint=batch_rows)
        variables = plan.output_variables
        if variables is None:
            variables = [v for v in table_stream.variables
                         if not v.startswith("__agg_")]
        positions = [table_stream.index.get(v) for v in variables]
        decode = evaluator.dictionary.decode

        def rows():
            for batch in table_stream.batches:
                for row in batch:
                    yield tuple(None if p is None or row[p] is None
                                else decode(row[p]) for p in positions)

        plan.executions += 1
        self.last_plan = plan
        self.last_stats = evaluator.stats
        self.queries_executed += 1

        def arm(seconds):
            evaluator.deadline = None if seconds is None \
                else time.perf_counter() + seconds

        return ResultStream(variables, rows(), arm_deadline=arm)

    def query_model(self, model, default_graph_uri: Optional[str] = None,
                    timeout: Optional[float] = None) -> ResultSet:
        """Execute an RDFFrames query model on the direct plan path.

        On the reference plane (``columnar=False``) the model is rendered
        to SPARQL text first, pinning the seed semantics end to end.
        """
        if self.columnar:
            plan = self.plan(model, default_graph_uri)
            return self.execute_plan(plan, default_graph_uri, timeout)
        from ..core.translator import translate
        return self.query(translate(model), default_graph_uri, timeout)

    def _query_reference(self, parsed: alg.Query,
                         default_graph_uri: Optional[str],
                         timeout: Optional[float]) -> ResultSet:
        """The seed dict-based path, kept verbatim for differential tests."""
        from .reference import ReferenceEvaluator
        evaluator = ReferenceEvaluator(
            self.dataset, optimize=self.optimize,
            cache_bgps=self.cache_bgps,
            max_rows=self.max_intermediate_rows)
        start = time.perf_counter()
        solutions = evaluator.evaluate_query(parsed, default_graph_uri)
        elapsed = time.perf_counter() - start
        if timeout is not None and elapsed > timeout:
            raise QueryTimeout("query took %.3fs (budget %.3fs)"
                               % (elapsed, timeout))
        self.last_stats = evaluator.stats
        self.last_elapsed = elapsed
        self.queries_executed += 1
        variables = self._output_variables(parsed)
        return ResultSet.from_mappings(solutions, variables)

    @staticmethod
    def _output_variables(parsed: alg.Query) -> Optional[List[str]]:
        """The projection's column order, or None for SELECT * (in which
        case column order is derived from the solutions)."""
        return output_variables(parsed)

    def explain(self, text: str, optimized: bool = False) -> str:
        """A textual rendering of the algebra tree (for debugging/tests).

        With ``optimized=True`` the optimizer pipeline runs first and the
        rendering includes per-pass statistics.
        """
        if optimized:
            return self.plan(text).explain()
        parsed = parse(text)
        lines: List[str] = ["FROM %s" % parsed.from_graphs]

        def walk(node, depth):
            lines.append("  " * depth + repr(node))
            for child in node.children():
                walk(child, depth + 1)

        walk(parsed.pattern, 0)
        return "\n".join(lines)
