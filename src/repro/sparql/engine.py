"""The SPARQL engine façade — this repo's stand-in for Virtuoso.

``Engine`` owns a :class:`~repro.rdf.Dataset` of named graphs and answers
SPARQL SELECT text queries: parse -> algebra -> (optimize) -> evaluate ->
:class:`~.results.ResultSet`.
"""

from __future__ import annotations

import time
from typing import List, Optional, Union

from ..rdf.dataset import Dataset
from ..rdf.graph import Graph
from . import algebra as alg
from .evaluator import EvaluationStats, Evaluator
from .parser import ParseError, parse
from .results import ResultSet


class QueryTimeout(RuntimeError):
    """Raised when a query exceeds the engine's time budget."""


class Engine:
    """An in-process RDF database engine with a SPARQL SELECT interface.

    Parameters
    ----------
    source:
        A :class:`Dataset`, a single :class:`Graph`, or a list of graphs.
    optimize:
        When False, BGP join-order optimization is disabled (used by the
        ablation benchmarks to isolate the optimizer's contribution).
    """

    def __init__(self, source: Union[Dataset, Graph, List[Graph]],
                 optimize: bool = True, cache_bgps: bool = True,
                 max_intermediate_rows: Optional[int] = None,
                 columnar: bool = True):
        if isinstance(source, Dataset):
            self.dataset = source
        else:
            self.dataset = Dataset()
            graphs = [source] if isinstance(source, Graph) else list(source)
            for graph in graphs:
                self.dataset.add_graph(graph)
        self.optimize = optimize
        self.cache_bgps = cache_bgps
        # Safety valve: abort queries whose intermediate results explode
        # (the role of a server-side memory budget in a real engine).
        self.max_intermediate_rows = max_intermediate_rows
        # columnar=False selects the dict-based reference evaluator (the
        # seed data plane), kept for differential testing and perf reports.
        self.columnar = columnar
        self.last_stats: Optional[EvaluationStats] = None
        self.last_elapsed: float = 0.0
        self.queries_executed = 0

    def query(self, text: str, default_graph_uri: Optional[str] = None,
              timeout: Optional[float] = None) -> ResultSet:
        """Execute a SPARQL SELECT query and return its result set."""
        parsed = parse(text)
        if self.columnar:
            evaluator = Evaluator(self.dataset, optimize=self.optimize,
                                  cache_bgps=self.cache_bgps,
                                  max_rows=self.max_intermediate_rows)
        else:
            from .reference import ReferenceEvaluator
            evaluator = ReferenceEvaluator(
                self.dataset, optimize=self.optimize,
                cache_bgps=self.cache_bgps,
                max_rows=self.max_intermediate_rows)
        start = time.perf_counter()
        solutions = evaluator.evaluate_query(parsed, default_graph_uri)
        elapsed = time.perf_counter() - start
        if timeout is not None and elapsed > timeout:
            raise QueryTimeout("query took %.3fs (budget %.3fs)"
                               % (elapsed, timeout))
        self.last_stats = evaluator.stats
        self.last_elapsed = elapsed
        self.queries_executed += 1
        variables = self._output_variables(parsed)
        if self.columnar:
            return ResultSet.from_table(solutions, evaluator.dictionary,
                                        variables)
        return ResultSet.from_mappings(solutions, variables)

    @staticmethod
    def _output_variables(parsed: alg.Query) -> Optional[List[str]]:
        """The projection's column order, or None for SELECT * (in which
        case column order is derived from the solutions)."""
        node = parsed.pattern
        while isinstance(node, (alg.Slice, alg.OrderBy, alg.Distinct)):
            node = node.pattern
        if isinstance(node, alg.Project) and node.variables is not None:
            return node.variables
        return None

    def explain(self, text: str) -> str:
        """A textual rendering of the algebra tree (for debugging/tests)."""
        parsed = parse(text)
        lines: List[str] = ["FROM %s" % parsed.from_graphs]

        def walk(node, depth):
            lines.append("  " * depth + repr(node))
            for child in node.children():
                walk(child, depth + 1)

        walk(parsed.pattern, 0)
        return "\n".join(lines)
