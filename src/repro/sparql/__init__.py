"""A from-scratch SPARQL engine (the Virtuoso stand-in).

Public surface:

* :func:`parse` — SPARQL text to algebra,
* :class:`Engine` — parse + optimize + evaluate to a :class:`ResultSet`,
* :class:`Endpoint` — simulated SPARQL-protocol endpoint with pagination.
"""

from .algebra import Query, count_nested_selects
from .endpoint import Endpoint, EndpointError, EndpointResponse
from .engine import Engine, QueryTimeout
from .evaluator import EvaluationError, EvaluationStats, Evaluator
from .expressions import ExpressionError
from .parser import ParseError, parse
from .plan import Plan, PassStats, optimize_plan, plan_key
from .reference import ReferenceEvaluator
from .results import ResultSet, ResultStream, term_to_python
from .solution import RowView, SolutionTable, TableStream, stream_distinct
from .tokenizer import TokenizeError, tokenize

__all__ = [
    "parse", "ParseError", "tokenize", "TokenizeError",
    "Engine", "QueryTimeout", "Evaluator", "EvaluationError",
    "EvaluationStats", "ReferenceEvaluator",
    "Plan", "PassStats", "optimize_plan", "plan_key",
    "SolutionTable", "TableStream", "RowView", "stream_distinct",
    "ExpressionError", "ResultSet", "ResultStream", "term_to_python",
    "Endpoint", "EndpointError", "EndpointResponse",
    "Query", "count_nested_selects",
]
