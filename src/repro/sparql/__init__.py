"""A from-scratch SPARQL engine (the Virtuoso stand-in).

Public surface:

* :func:`parse` — SPARQL text to algebra,
* :class:`Engine` — parse + optimize + evaluate to a :class:`ResultSet`,
* :class:`Endpoint` — simulated SPARQL-protocol endpoint with pagination,
* :class:`QueryServer` — concurrent serving tier with admission control,
* :mod:`~repro.sparql.errors` — the serving error taxonomy,
* :mod:`~repro.sparql.faults` — deterministic fault injection for chaos
  testing.
"""

from .algebra import Query, count_nested_selects
from .cache import CacheStats, ResultCache, approximate_result_bytes
from .endpoint import Endpoint, EndpointError, EndpointResponse
from .engine import Engine, QueryTimeout
from .errors import (CancelToken, CircuitBreaker, CircuitOpenError,
                     CorruptSnapshotError, MalformedQuery, QueryCancelled,
                     QueryRejected, ResourceExhausted, ServerOverloaded,
                     StorageError, TransientError, WalTruncatedError,
                     classify_error, is_retryable)
from .evaluator import (EvaluationError, EvaluationStats, Evaluator,
                        RowBudgetExceeded)
from .expressions import ExpressionError
from .faults import (FaultInjector, FaultyEndpoint, LatencyFaults,
                     MidStreamTimeouts, PayloadCorruption, TransientFaults)
from .parser import ParseError, parse
from .plan import Plan, PassStats, optimize_plan, plan_key
from .reference import ReferenceEvaluator
from .results import ResultSet, ResultStream, term_to_python
from .server import QueryServer, QueryTicket, ServerStats
from .solution import (ColumnBatch, RowView, SolutionTable, TableStream,
                       stream_distinct)
from .tokenizer import TokenizeError, tokenize
from .vector import compile_predicate, predicate_compilable

__all__ = [
    "parse", "ParseError", "tokenize", "TokenizeError",
    "Engine", "QueryTimeout", "Evaluator", "EvaluationError",
    "EvaluationStats", "ReferenceEvaluator", "RowBudgetExceeded",
    "Plan", "PassStats", "optimize_plan", "plan_key",
    "SolutionTable", "TableStream", "RowView", "ColumnBatch",
    "stream_distinct", "compile_predicate", "predicate_compilable",
    "ExpressionError", "ResultSet", "ResultStream", "term_to_python",
    "Endpoint", "EndpointError", "EndpointResponse",
    "TransientError", "QueryRejected", "ServerOverloaded",
    "MalformedQuery", "ResourceExhausted", "QueryCancelled",
    "CircuitOpenError", "CircuitBreaker", "CancelToken",
    "StorageError", "CorruptSnapshotError", "WalTruncatedError",
    "classify_error", "is_retryable",
    "FaultInjector", "FaultyEndpoint", "TransientFaults", "LatencyFaults",
    "PayloadCorruption", "MidStreamTimeouts",
    "QueryServer", "QueryTicket", "ServerStats",
    "ResultCache", "CacheStats", "approximate_result_bytes",
    "Query", "count_nested_selects",
]
