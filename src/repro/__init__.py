"""repro: a full reproduction of RDFFrames (VLDB 2020).

Subpackages
-----------
- ``repro.rdf``        RDF data model, indexed graphs, N-Triples I/O
- ``repro.storage``    crash-safe persistence: snapshots + write-ahead log
- ``repro.sparql``     a from-scratch SPARQL engine + simulated endpoint
- ``repro.dataframe``  a small columnar dataframe (pandas stand-in)
- ``repro.core``       the RDFFrames API, query model, generators, translator
- ``repro.client``     engine/HTTP clients with transparent pagination
- ``repro.ml``         minimal ML stack for the case studies
- ``repro.data``       deterministic synthetic knowledge-graph generators
- ``repro.workload``   the paper's case studies and 15-query workload
- ``repro.baselines``  the alternative strategies of Section 6.3
"""

__version__ = "1.0.0"

from .core import (KnowledgeGraph, RDFFrame, GroupedRDFFrame, OPTIONAL,
                   INCOMING, OUTGOING, InnerJoin, OuterJoin, LeftOuterJoin,
                   RightOuterJoin)
from .client import EngineClient, HttpClient
from .dataframe import DataFrame
from .sparql import Engine, Endpoint
from .storage import GraphStore

__all__ = [
    "KnowledgeGraph", "RDFFrame", "GroupedRDFFrame",
    "OPTIONAL", "INCOMING", "OUTGOING",
    "InnerJoin", "OuterJoin", "LeftOuterJoin", "RightOuterJoin",
    "EngineClient", "HttpClient", "DataFrame", "Engine", "Endpoint",
    "GraphStore", "__version__",
]
