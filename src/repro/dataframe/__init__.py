"""A small columnar dataframe library (the pandas stand-in)."""

from .frame import DataFrame, DataFrameError, GroupBy

__all__ = ["DataFrame", "DataFrameError", "GroupBy"]
