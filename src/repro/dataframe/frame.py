"""A small columnar DataFrame: the pandas stand-in used across the repo.

RDFFrames returns query results "in a standard tabular format"; in the paper
that format is a pandas dataframe.  pandas is not available offline, so this
module implements the subset of dataframe behaviour the system and its
baselines need:

* column-oriented storage with ordered column names,
* bag semantics (duplicate rows preserved — Definition 2 in the paper),
* selection (boolean masks and per-column predicates),
* projection and renaming,
* inner / left / right / full outer merges on key columns,
* group-by with the paper's aggregation functions
  (count, distinct count, sum, min, max, average, sample),
* sorting, head/slice, distinct,
* CSV round-tripping.

Missing values are represented by ``None`` (pandas uses NaN).
"""

from __future__ import annotations

import csv
import io
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Mapping,
                    Optional, Sequence, Tuple, Union)


class DataFrameError(ValueError):
    """Raised on invalid dataframe operations (unknown column, bad shape)."""


class DataFrame:
    """A column-oriented table with bag semantics.

    Construct from a mapping of column name to list of values::

        DataFrame({"movie": ["m1", "m2"], "actor": ["a1", "a2"]})

    or from records via :meth:`from_records`.
    """

    def __init__(self, data: Optional[Mapping[str, Sequence[Any]]] = None,
                 columns: Optional[Sequence[str]] = None):
        self._data: Dict[str, List[Any]] = {}
        self._columns: List[str] = []
        if data:
            lengths = {len(values) for values in data.values()}
            if len(lengths) > 1:
                raise DataFrameError(
                    "columns have unequal lengths: %s"
                    % {k: len(v) for k, v in data.items()})
            order = list(columns) if columns is not None else list(data)
            for name in order:
                if name not in data:
                    raise DataFrameError("column %r missing from data" % name)
                self._data[name] = list(data[name])
                self._columns.append(name)
        elif columns is not None:
            for name in columns:
                self._data[name] = []
                self._columns.append(name)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[Sequence[Any]],
                     columns: Sequence[str]) -> "DataFrame":
        """Build a frame from row tuples."""
        columns = list(columns)
        data: Dict[str, List[Any]] = {name: [] for name in columns}
        for record in records:
            if len(record) != len(columns):
                raise DataFrameError(
                    "record of length %d does not match %d columns"
                    % (len(record), len(columns)))
            for name, value in zip(columns, record):
                data[name].append(value)
        return cls(data, columns=columns)

    @classmethod
    def from_dicts(cls, rows: Iterable[Mapping[str, Any]],
                   columns: Optional[Sequence[str]] = None) -> "DataFrame":
        """Build a frame from row dictionaries; missing keys become None."""
        rows = list(rows)
        if columns is None:
            seen: List[str] = []
            for row in rows:
                for key in row:
                    if key not in seen:
                        seen.append(key)
            columns = seen
        data = {name: [row.get(name) for row in rows] for name in columns}
        return cls(data, columns=columns)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def columns(self) -> List[str]:
        return list(self._columns)

    def __len__(self) -> int:
        if not self._columns:
            return 0
        return len(self._data[self._columns[0]])

    @property
    def empty(self) -> bool:
        return len(self) == 0

    def column(self, name: str) -> List[Any]:
        """The values of one column (a copy-free view; do not mutate)."""
        try:
            return self._data[name]
        except KeyError:
            raise DataFrameError("no column %r (have %s)" % (name, self._columns))

    def __getitem__(self, name: str) -> List[Any]:
        return self.column(name)

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def row(self, index: int) -> Tuple[Any, ...]:
        return tuple(self._data[c][index] for c in self._columns)

    def iter_rows(self) -> Iterator[Tuple[Any, ...]]:
        cols = [self._data[c] for c in self._columns]
        return zip(*cols) if cols else iter(())

    def iter_dicts(self) -> Iterator[Dict[str, Any]]:
        for row in self.iter_rows():
            yield dict(zip(self._columns, row))

    def to_records(self) -> List[Tuple[Any, ...]]:
        return list(self.iter_rows())

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------
    def select(self, columns: Sequence[str]) -> "DataFrame":
        """Projection: keep only the given columns, in the given order."""
        for name in columns:
            if name not in self._data:
                raise DataFrameError("no column %r" % name)
        return DataFrame({name: list(self._data[name]) for name in columns},
                         columns=list(columns))

    def rename(self, mapping: Mapping[str, str]) -> "DataFrame":
        """Rename columns according to ``{old: new}``."""
        new_columns = [mapping.get(c, c) for c in self._columns]
        if len(set(new_columns)) != len(new_columns):
            raise DataFrameError("rename produces duplicate columns: %s"
                                 % new_columns)
        data = {new: list(self._data[old])
                for old, new in zip(self._columns, new_columns)}
        return DataFrame(data, columns=new_columns)

    def filter_mask(self, mask: Sequence[bool]) -> "DataFrame":
        """Keep rows where the boolean mask is True."""
        if len(mask) != len(self):
            raise DataFrameError("mask length %d != frame length %d"
                                 % (len(mask), len(self)))
        data = {}
        for name in self._columns:
            values = self._data[name]
            data[name] = [v for v, keep in zip(values, mask) if keep]
        return DataFrame(data, columns=self._columns)

    def filter(self, predicate: Callable[[Dict[str, Any]], bool]) -> "DataFrame":
        """Keep rows where ``predicate(row_dict)`` is True."""
        mask = [bool(predicate(row)) for row in self.iter_dicts()]
        return self.filter_mask(mask)

    def filter_eq(self, column: str, value: Any) -> "DataFrame":
        values = self.column(column)
        return self.filter_mask([v == value for v in values])

    def dropna(self, columns: Optional[Sequence[str]] = None) -> "DataFrame":
        """Drop rows with None in any of the given columns (default: all)."""
        check = list(columns) if columns is not None else self._columns
        cols = [self.column(c) for c in check]
        mask = [all(v is not None for v in row) for row in zip(*cols)] \
            if cols else [True] * len(self)
        return self.filter_mask(mask)

    def assign(self, name: str, values: Sequence[Any]) -> "DataFrame":
        """Return a copy with a new or replaced column."""
        if len(values) != len(self) and self._columns:
            raise DataFrameError("column length %d != frame length %d"
                                 % (len(values), len(self)))
        data = {c: list(self._data[c]) for c in self._columns}
        data[name] = list(values)
        columns = self._columns + [name] if name not in self._data else self._columns
        return DataFrame(data, columns=columns)

    def distinct(self) -> "DataFrame":
        """Remove duplicate rows (keeps first occurrence order)."""
        seen = set()
        mask = []
        for row in self.iter_rows():
            key = row
            if key in seen:
                mask.append(False)
            else:
                seen.add(key)
                mask.append(True)
        return self.filter_mask(mask)

    def sort(self, by: Union[str, Sequence[Tuple[str, str]]],
             ascending: bool = True) -> "DataFrame":
        """Sort by one column, or by ``[(column, 'asc'|'desc'), ...]``.

        None values sort last regardless of direction, mirroring SPARQL's
        treatment of unbound values in ORDER BY.
        """
        if isinstance(by, str):
            specs = [(by, "asc" if ascending else "desc")]
        else:
            specs = [(c, o.lower()) for c, o in by]
        indexes = list(range(len(self)))
        # Stable multi-key sort: apply keys from last to first.
        for column, order in reversed(specs):
            values = self.column(column)
            reverse = order == "desc"

            def key(i, values=values):
                v = values[i]
                # (type_rank, value) makes heterogeneous columns sortable.
                if v is None:
                    return (0, 0)
                if isinstance(v, (int, float)) and not isinstance(v, bool):
                    return (0, v)
                return (1, str(v))
            indexes.sort(key=key, reverse=reverse)
            # None values go last regardless of direction (stable partition).
            indexes = ([i for i in indexes if values[i] is not None]
                       + [i for i in indexes if values[i] is None])
        data = {c: [self._data[c][i] for i in indexes] for c in self._columns}
        return DataFrame(data, columns=self._columns)

    def head(self, k: int, offset: int = 0) -> "DataFrame":
        """The first ``k`` rows starting at ``offset`` — paper's ``head(k, i)``."""
        data = {c: self._data[c][offset:offset + k] for c in self._columns}
        return DataFrame(data, columns=self._columns)

    def concat(self, other: "DataFrame") -> "DataFrame":
        """Vertical union (bag union); columns are aligned by name and the
        result has the union of columns with None for missing values."""
        columns = list(self._columns)
        for c in other._columns:
            if c not in columns:
                columns.append(c)
        data: Dict[str, List[Any]] = {}
        n_self, n_other = len(self), len(other)
        for c in columns:
            left = list(self._data.get(c, [None] * n_self))
            right = list(other._data.get(c, [None] * n_other))
            data[c] = left + right
        return DataFrame(data, columns=columns)

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def merge(self, other: "DataFrame", left_on: str, right_on: str,
              how: str = "inner") -> "DataFrame":
        """Hash join on a single key column.

        ``how`` is one of ``inner``, ``left``, ``right``, ``outer``.  The key
        columns are merged into a single output column named ``left_on``.
        Overlapping non-key columns take the left value when bound, else the
        right (mirroring SPARQL's compatible-mapping join).
        """
        if how not in ("inner", "left", "right", "outer"):
            raise DataFrameError("unknown join type %r" % how)
        if how == "right":
            flipped = other.merge(self, left_on=right_on, right_on=left_on,
                                  how="left")
            return flipped

        left_key = self.column(left_on)
        right_key = other.column(right_on)
        out_columns = list(self._columns)
        for c in other._columns:
            if c != right_on and c not in out_columns:
                out_columns.append(c)
        right_other_cols = [c for c in other._columns if c != right_on]

        index: Dict[Any, List[int]] = {}
        for j, key in enumerate(right_key):
            if key is not None:
                index.setdefault(key, []).append(j)

        rows: List[Dict[str, Any]] = []
        matched_right = set()
        for i in range(len(self)):
            key = left_key[i]
            matches = index.get(key, []) if key is not None else []
            if matches:
                for j in matches:
                    matched_right.add(j)
                    row = {c: self._data[c][i] for c in self._columns}
                    for c in right_other_cols:
                        value = other._data[c][j]
                        if row.get(c) is None:
                            row[c] = value
                    rows.append(row)
            elif how in ("left", "outer"):
                row = {c: self._data[c][i] for c in self._columns}
                rows.append(row)
        if how == "outer":
            for j in range(len(other)):
                if j not in matched_right:
                    row = {left_on: right_key[j]}
                    for c in right_other_cols:
                        row[c] = other._data[c][j]
                    rows.append(row)
        return DataFrame.from_dicts(rows, columns=out_columns)

    # ------------------------------------------------------------------
    # Grouping and aggregation
    # ------------------------------------------------------------------
    def groupby(self, by: Union[str, Sequence[str]]) -> "GroupBy":
        if isinstance(by, str):
            by = [by]
        for name in by:
            if name not in self._data:
                raise DataFrameError("no column %r" % name)
        return GroupBy(self, list(by))

    def aggregate(self, fn: str, column: str) -> Any:
        """Aggregate a whole column to a scalar — paper's ``aggregate`` op."""
        return _apply_aggregate(fn, self.column(column))

    # ------------------------------------------------------------------
    # CSV
    # ------------------------------------------------------------------
    def to_csv(self, path_or_buffer=None) -> Optional[str]:
        """Write CSV; returns the text when no path/stream is given."""
        own_buffer = path_or_buffer is None
        if own_buffer:
            stream = io.StringIO()
        elif isinstance(path_or_buffer, str):
            stream = open(path_or_buffer, "w", newline="")
        else:
            stream = path_or_buffer
        try:
            writer = csv.writer(stream)
            writer.writerow(self._columns)
            for row in self.iter_rows():
                writer.writerow(["" if v is None else v for v in row])
        finally:
            if isinstance(path_or_buffer, str):
                stream.close()
        if own_buffer:
            return stream.getvalue()
        return None

    @classmethod
    def read_csv(cls, path_or_buffer) -> "DataFrame":
        """Read CSV written by :meth:`to_csv`; empty cells become None and
        numeric-looking cells are parsed to int/float."""
        if isinstance(path_or_buffer, str):
            stream = open(path_or_buffer, newline="")
            close = True
        else:
            stream = path_or_buffer
            close = False
        try:
            reader = csv.reader(stream)
            try:
                header = next(reader)
            except StopIteration:
                return cls()
            rows = [[_parse_csv_cell(cell) for cell in row] for row in reader]
        finally:
            if close:
                stream.close()
        return cls.from_records(rows, columns=header)

    # ------------------------------------------------------------------
    # Comparison / display
    # ------------------------------------------------------------------
    def equals_bag(self, other: "DataFrame") -> bool:
        """Bag equality: same columns (as sets) and same multiset of rows."""
        if set(self._columns) != set(other._columns):
            return False
        order = sorted(self._columns)
        mine = sorted(_sortable(tuple(row[c] for c in order))
                      for row in self.iter_dicts())
        theirs = sorted(_sortable(tuple(row[c] for c in order))
                        for row in other.iter_dicts())
        return mine == theirs

    def __eq__(self, other):
        if not isinstance(other, DataFrame):
            return NotImplemented
        return (self._columns == other._columns
                and self.to_records() == other.to_records())

    def __repr__(self):
        return "DataFrame(%d rows x %d cols: %s)" % (
            len(self), len(self._columns), self._columns)

    def to_string(self, max_rows: int = 20) -> str:
        """A human-readable rendering of the first ``max_rows`` rows."""
        header = " | ".join(self._columns)
        lines = [header, "-" * len(header)]
        for i, row in enumerate(self.iter_rows()):
            if i >= max_rows:
                lines.append("... (%d more rows)" % (len(self) - max_rows))
                break
            lines.append(" | ".join("" if v is None else str(v) for v in row))
        return "\n".join(lines)


class GroupBy:
    """Deferred group-by over a :class:`DataFrame`."""

    def __init__(self, frame: DataFrame, by: List[str]):
        self._frame = frame
        self._by = by
        self._groups: Dict[Tuple[Any, ...], List[int]] = {}
        key_columns = [frame.column(c) for c in by]
        for i, key in enumerate(zip(*key_columns)):
            self._groups.setdefault(key, []).append(i)

    def __len__(self) -> int:
        return len(self._groups)

    def agg(self, fn: str, column: str, alias: Optional[str] = None,
            unique: bool = False) -> DataFrame:
        """Aggregate ``column`` per group with function ``fn``.

        ``fn`` is one of count, sum, min, max, average/avg/mean, sample;
        ``unique=True`` makes ``count`` a distinct count.
        """
        alias = alias or "%s_%s" % (column, fn)
        values = self._frame.column(column)
        records = []
        for key, indexes in self._groups.items():
            group_values = [values[i] for i in indexes]
            if unique and fn == "count":
                result = len({v for v in group_values if v is not None})
            else:
                result = _apply_aggregate(fn, group_values)
            records.append(tuple(key) + (result,))
        return DataFrame.from_records(records, columns=self._by + [alias])

    def size(self, alias: str = "size") -> DataFrame:
        records = [tuple(key) + (len(indexes),)
                   for key, indexes in self._groups.items()]
        return DataFrame.from_records(records, columns=self._by + [alias])


def _apply_aggregate(fn: str, values: List[Any]) -> Any:
    fn = fn.lower()
    bound = [v for v in values if v is not None]
    if fn == "count":
        return len(bound)
    if fn in ("distinct_count", "count_distinct"):
        return len(set(bound))
    if fn == "sum":
        return sum(bound) if bound else 0
    if fn == "min":
        return min(bound, key=_sortable_scalar) if bound else None
    if fn == "max":
        return max(bound, key=_sortable_scalar) if bound else None
    if fn in ("average", "avg", "mean"):
        return sum(bound) / len(bound) if bound else None
    if fn == "sample":
        return bound[0] if bound else None
    raise DataFrameError("unknown aggregate function %r" % fn)


def _sortable_scalar(v):
    if isinstance(v, (int, float)) and not isinstance(v, bool):
        return (0, v)
    return (1, str(v))


def _sortable(row: Tuple[Any, ...]):
    return tuple((2, "") if v is None else _sortable_scalar(v) for v in row)


def _parse_csv_cell(cell: str) -> Any:
    if cell == "":
        return None
    try:
        return int(cell)
    except ValueError:
        pass
    try:
        return float(cell)
    except ValueError:
        pass
    return cell
