"""The query model: RDFFrames' intermediate representation for SPARQL.

Section 4.1 of the paper describes the query model (inspired by the Query
Graph Model) as the container for every component of a SPARQL query: graph
matching patterns (triples, filters, optional blocks, subquery references,
unions), aggregation constructs (group-by columns, aggregates, having), and
query modifiers (limit, offset, sort), plus graph URIs, prefixes, and the
variables in scope.  Query models nest where nested subqueries are needed.

Terms inside the model are stored as rendered SPARQL strings
(``'?movie'``, ``'dbpp:starring'``, ``'dbpr:United_States'``), which keeps
the generator simple and makes translation to SPARQL text direct.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from .conditions import rename_variable

TripleText = Tuple[str, str, str]


def is_variable(term: str) -> bool:
    return term.startswith("?")


def variable_name(term: str) -> str:
    return term[1:] if term.startswith("?") else term


class Aggregation:
    """One aggregate in the SELECT clause of a query model."""

    def __init__(self, function: str, src_column: Optional[str],
                 alias: str, distinct: bool = False):
        self.function = function.lower()
        self.src_column = src_column  # None means COUNT(*)
        self.alias = alias
        self.distinct = distinct

    _SPARQL_NAMES = {"count": "COUNT", "sum": "SUM", "min": "MIN",
                     "max": "MAX", "average": "AVG", "sample": "SAMPLE",
                     "distinct_count": "COUNT", "count_star": "COUNT"}

    def call_sparql(self) -> str:
        """The bare aggregate call, e.g. ``COUNT(DISTINCT ?movie)``."""
        name = self._SPARQL_NAMES[self.function]
        inner = "*" if self.src_column is None else "?" + self.src_column
        if self.distinct and self.src_column is not None:
            inner = "DISTINCT " + inner
        return "%s(%s)" % (name, inner)

    def to_sparql(self) -> str:
        return "(%s AS ?%s)" % (self.call_sparql(), self.alias)

    def copy(self) -> "Aggregation":
        return Aggregation(self.function, self.src_column, self.alias,
                           self.distinct)

    def __repr__(self):
        return "Aggregation(%s)" % self.to_sparql()


class OptionalBlock:
    """An OPTIONAL { ... } group: triples, filters, nested optionals, and
    subqueries, possibly scoped to a named graph."""

    def __init__(self, graph_uri: Optional[str] = None):
        self.graph_uri = graph_uri
        self.triples: List[TripleText] = []
        self.filters: List[str] = []
        self.optionals: List["OptionalBlock"] = []
        self.subqueries: List["QueryModel"] = []

    def is_empty(self) -> bool:
        return not (self.triples or self.filters or self.optionals
                    or self.subqueries)

    def copy(self) -> "OptionalBlock":
        block = OptionalBlock(self.graph_uri)
        block.triples = list(self.triples)
        block.filters = list(self.filters)
        block.optionals = [o.copy() for o in self.optionals]
        block.subqueries = [s.copy() for s in self.subqueries]
        return block

    def rename_column(self, old: str, new: str) -> None:
        self.triples = [_rename_triple(t, old, new) for t in self.triples]
        self.filters = [rename_variable(f, old, new) for f in self.filters]
        for optional in self.optionals:
            optional.rename_column(old, new)
        for subquery in self.subqueries:
            subquery.rename_column(old, new)

    def variables(self) -> List[str]:
        out: List[str] = []
        _collect_triple_vars(self.triples, out)
        for optional in self.optionals:
            _extend_unique(out, optional.variables())
        for subquery in self.subqueries:
            _extend_unique(out, subquery.visible_columns())
        return out

    def __repr__(self):
        return "OptionalBlock(%d triples, %d filters)" % (
            len(self.triples), len(self.filters))


class QueryModel:
    """One (possibly nested) SPARQL query under construction."""

    def __init__(self):
        self.prefixes: Dict[str, str] = {}
        self.from_graphs: List[str] = []
        self.select_columns: Optional[List[str]] = None  # None -> SELECT *
        self.distinct = False
        self.triples: List[TripleText] = []
        self.scoped_triples: List[Tuple[str, str, str, str]] = []  # (graph,s,p,o)
        self.filters: List[str] = []
        self.optionals: List[OptionalBlock] = []
        self.subqueries: List["QueryModel"] = []
        self.optional_subqueries: List["QueryModel"] = []
        self.union_models: List["QueryModel"] = []
        self.group_columns: List[str] = []
        self.aggregations: List[Aggregation] = []
        self.having: List[str] = []
        self.order_keys: List[Tuple[str, str]] = []
        self.limit: Optional[int] = None
        self.offset: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction helpers used by the generator
    # ------------------------------------------------------------------
    def add_prefixes(self, prefixes: Dict[str, str]) -> None:
        self.prefixes.update(prefixes)

    def add_graph(self, graph_uri: str) -> None:
        if graph_uri and graph_uri not in self.from_graphs:
            self.from_graphs.append(graph_uri)

    def add_triple(self, subject: str, predicate: str, obj: str,
                   graph_uri: Optional[str] = None) -> None:
        if graph_uri is None:
            self.triples.append((subject, predicate, obj))
        else:
            self.scoped_triples.append((graph_uri, subject, predicate, obj))

    def add_filter(self, expression: str) -> None:
        self.filters.append(expression)

    def add_having(self, expression: str) -> None:
        self.having.append(expression)

    def add_optional(self, block: OptionalBlock) -> None:
        if not block.is_empty():
            self.optionals.append(block)

    def add_subquery(self, model: "QueryModel") -> None:
        self.subqueries.append(model)
        self.add_prefixes(model.prefixes)

    def add_optional_subquery(self, model: "QueryModel") -> None:
        self.optional_subqueries.append(model)
        self.add_prefixes(model.prefixes)

    def set_aggregation(self, group_columns: Sequence[str],
                        aggregation: Aggregation) -> None:
        self.group_columns = list(group_columns)
        self.aggregations.append(aggregation)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_grouped(self) -> bool:
        return bool(self.group_columns or self.aggregations)

    @property
    def has_modifiers(self) -> bool:
        return bool(self.order_keys or self.limit is not None
                    or self.offset is not None)

    def pattern_variables(self) -> List[str]:
        """All variables bound by the graph patterns of this model."""
        out: List[str] = []
        _collect_triple_vars(self.triples, out)
        _collect_triple_vars([t[1:] for t in self.scoped_triples], out)
        for optional in self.optionals:
            _extend_unique(out, optional.variables())
        for subquery in self.subqueries + self.optional_subqueries:
            _extend_unique(out, subquery.visible_columns())
        for union in self.union_models:
            _extend_unique(out, union.visible_columns())
        return out

    def visible_columns(self) -> List[str]:
        """The columns this query exposes to an enclosing scope."""
        if self.is_grouped:
            return list(self.group_columns) + [a.alias for a in self.aggregations]
        if self.select_columns is not None:
            return list(self.select_columns)
        return self.pattern_variables()

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def copy(self) -> "QueryModel":
        model = QueryModel()
        model.prefixes = dict(self.prefixes)
        model.from_graphs = list(self.from_graphs)
        model.select_columns = (list(self.select_columns)
                                if self.select_columns is not None else None)
        model.distinct = self.distinct
        model.triples = list(self.triples)
        model.scoped_triples = list(self.scoped_triples)
        model.filters = list(self.filters)
        model.optionals = [o.copy() for o in self.optionals]
        model.subqueries = [s.copy() for s in self.subqueries]
        model.optional_subqueries = [s.copy() for s in self.optional_subqueries]
        model.union_models = [u.copy() for u in self.union_models]
        model.group_columns = list(self.group_columns)
        model.aggregations = [a.copy() for a in self.aggregations]
        model.having = list(self.having)
        model.order_keys = list(self.order_keys)
        model.limit = self.limit
        model.offset = self.offset
        return model

    def rename_column(self, old: str, new: str) -> None:
        """Rename a column everywhere in this model (recursively)."""
        if old == new:
            return
        self.triples = [_rename_triple(t, old, new) for t in self.triples]
        self.scoped_triples = [
            (g,) + _rename_triple((s, p, o), old, new)
            for g, s, p, o in self.scoped_triples]
        self.filters = [rename_variable(f, old, new) for f in self.filters]
        self.having = [rename_variable(h, old, new) for h in self.having]
        for optional in self.optionals:
            optional.rename_column(old, new)
        for subquery in self.subqueries + self.optional_subqueries:
            subquery.rename_column(old, new)
        for union in self.union_models:
            union.rename_column(old, new)
        if self.select_columns is not None:
            self.select_columns = [new if c == old else c
                                   for c in self.select_columns]
        self.group_columns = [new if c == old else c
                              for c in self.group_columns]
        for aggregation in self.aggregations:
            if aggregation.src_column == old:
                aggregation.src_column = new
            if aggregation.alias == old:
                aggregation.alias = new
        self.order_keys = [(new if c == old else c, d)
                           for c, d in self.order_keys]

    def wrap(self) -> "QueryModel":
        """Wrap this model as the subquery of a fresh outer model.

        Used when further operators must apply *after* grouping/modifiers
        (the paper's nesting Case 1) — the current model becomes an inner
        query and the returned outer model receives subsequent patterns.
        """
        outer = QueryModel()
        outer.prefixes = dict(self.prefixes)
        outer.from_graphs = list(self.from_graphs)
        inner = self.copy()
        # FROM clauses belong to the outermost query only.
        inner.from_graphs = []
        outer.add_subquery(inner)
        return outer

    def merge_pattern(self, other: "QueryModel",
                      scope_graphs: bool = False) -> None:
        """Merge another non-grouped, modifier-free model's graph patterns
        into this one (used for inner joins of compatible frames)."""
        if scope_graphs:
            self._scope_to_graph()
            other = other.copy()
            other._scope_to_graph()
        # Deduplicate identical triple/filter patterns: a repeated triple
        # pattern is a semantic no-op in SPARQL but costs the engine a join.
        for triple in other.triples:
            if triple not in self.triples:
                self.triples.append(triple)
        for scoped in other.scoped_triples:
            if scoped not in self.scoped_triples:
                self.scoped_triples.append(scoped)
        for expression in other.filters:
            if expression not in self.filters:
                self.filters.append(expression)
        self.optionals.extend(o.copy() for o in other.optionals)
        self.subqueries.extend(s.copy() for s in other.subqueries)
        self.optional_subqueries.extend(
            s.copy() for s in other.optional_subqueries)
        self.union_models.extend(u.copy() for u in other.union_models)
        self.add_prefixes(other.prefixes)
        for graph in other.from_graphs:
            self.add_graph(graph)

    def _scope_to_graph(self) -> None:
        """Move default-scope triples under this model's (single) graph, so
        a multi-graph join keeps each pattern bound to its source graph."""
        if len(self.from_graphs) != 1:
            return
        graph = self.from_graphs[0]
        for s, p, o in self.triples:
            self.scoped_triples.append((graph, s, p, o))
        self.triples = []
        for optional in self.optionals:
            if optional.graph_uri is None:
                optional.graph_uri = graph

    def as_optional_block(self) -> OptionalBlock:
        """Repackage this model's patterns as one OPTIONAL block (used for
        left outer joins of non-grouped frames)."""
        if self.is_grouped or self.has_modifiers or self.union_models:
            raise ValueError("cannot inline a grouped/modified model into "
                             "an OPTIONAL block; wrap it as a subquery")
        block = OptionalBlock()
        block.triples = list(self.triples)
        block.filters = list(self.filters)
        block.optionals = [o.copy() for o in self.optionals]
        block.subqueries = [s.copy() for s in self.subqueries]
        for s in self.optional_subqueries:
            inner = OptionalBlock()
            inner.subqueries = [s.copy()]
            block.optionals.append(inner)
        return block

    def __repr__(self):
        return ("QueryModel(triples=%d, filters=%d, optionals=%d, "
                "subqueries=%d, grouped=%s)" % (
                    len(self.triples) + len(self.scoped_triples),
                    len(self.filters), len(self.optionals),
                    len(self.subqueries) + len(self.optional_subqueries),
                    self.is_grouped))


def _rename_triple(triple: TripleText, old: str, new: str) -> TripleText:
    target = "?" + old
    replacement = "?" + new
    return tuple(replacement if part == target else part for part in triple)


def _collect_triple_vars(triples, out: List[str]) -> None:
    seen = set(out)
    for triple in triples:
        for part in triple:
            if part.startswith("?"):
                name = part[1:]
                if name not in seen:
                    seen.add(name)
                    out.append(name)


def _extend_unique(target: List[str], items) -> None:
    seen = set(target)
    for item in items:
        if item not in seen:
            seen.add(item)
            target.append(item)
