"""Naive query generation — the baseline of Section 6.3 of the paper.

"For each API call to RDFFrames, we generate a subquery that contains the
pattern corresponding to that API call and we finally join all the
subqueries in one level of nesting with one outer query."  (Appendices C
and D show examples.)

This implementation derives the naive query from the optimized query model
by a structure-preserving transform: within every query scope, each triple
pattern is wrapped in its own ``{ SELECT * WHERE { ... } }`` subquery, and
every OPTIONAL block becomes an OPTIONAL nested subquery.  Filters stay at
the scope level (applied after the join, i.e. never pushed down).  This
guarantees the naive query returns a result bag *identical* to the
optimized one — which the paper verifies for its workloads — while
exhibiting the expensive shape naive generation produces: one materialized
subquery per recorded pattern and no binding propagation between them.
"""

from __future__ import annotations

from .generator import Generator
from .query_model import OptionalBlock, QueryModel


class NaiveGenerator:
    """Generates the naive (one-subquery-per-operator) query model."""

    def __init__(self, prefixes=None):
        self._generator = Generator(prefixes)

    def generate(self, frame) -> QueryModel:
        optimized = self._generator.generate(frame)
        return naive_transform(optimized, top_level=True)


def naive_transform(model: QueryModel, top_level: bool = False) -> QueryModel:
    """Rewrite a query model scope-by-scope into naive form."""
    naive = QueryModel()
    naive.prefixes = dict(model.prefixes)
    naive.from_graphs = list(model.from_graphs) if top_level else []
    naive.select_columns = (list(model.select_columns)
                            if model.select_columns is not None else None)
    naive.distinct = model.distinct
    naive.group_columns = list(model.group_columns)
    naive.aggregations = [a.copy() for a in model.aggregations]
    naive.having = list(model.having)
    naive.order_keys = list(model.order_keys)
    naive.limit = model.limit
    naive.offset = model.offset

    # One subquery per triple pattern.
    for triple in model.triples:
        naive.add_subquery(_triple_subquery(model, triple))
    for graph, s, p, o in model.scoped_triples:
        subquery = QueryModel()
        subquery.prefixes = dict(model.prefixes)
        subquery.scoped_triples.append((graph, s, p, o))
        naive.add_subquery(subquery)

    # Filters stay at the scope level: applied after the subquery join,
    # never pushed into a pattern.
    naive.filters = list(model.filters)

    # OPTIONAL blocks become OPTIONAL nested subqueries.
    for block in model.optionals:
        naive.add_optional_subquery(_optional_block_subquery(model, block))

    # Nested queries are transformed recursively.
    for subquery in model.subqueries:
        naive.add_subquery(naive_transform(subquery))
    for subquery in model.optional_subqueries:
        naive.add_optional_subquery(naive_transform(subquery))
    for member in model.union_models:
        naive.union_models.append(naive_transform(member))
    return naive


def _triple_subquery(model: QueryModel, triple) -> QueryModel:
    subquery = QueryModel()
    subquery.prefixes = dict(model.prefixes)
    subquery.triples.append(triple)
    return subquery


def _optional_block_subquery(model: QueryModel,
                             block: OptionalBlock) -> QueryModel:
    """An OPTIONAL block's contents, naively wrapped."""
    inner = QueryModel()
    inner.prefixes = dict(model.prefixes)
    if block.graph_uri is not None:
        for s, p, o in block.triples:
            inner.scoped_triples.append((block.graph_uri, s, p, o))
    else:
        for triple in block.triples:
            inner.add_subquery(_triple_subquery(model, triple))
    inner.filters = list(block.filters)
    for nested in block.optionals:
        inner.add_optional_subquery(_optional_block_subquery(model, nested))
    for subquery in block.subqueries:
        inner.add_subquery(naive_transform(subquery))
    return inner
