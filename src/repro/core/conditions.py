"""The filter-condition mini-language of the RDFFrames API.

``D.filter({'country': ['=dbpr:United_States'], 'movie_count': ['>=50']})``
passes per-column condition strings.  This module turns one
``(column, condition)`` pair into a SPARQL expression string:

* comparison shorthand — ``'>=50'`` -> ``?movie_count >= 50``;
  ``'=dbpr:United_States'`` -> ``?country = dbpr:United_States``,
* boolean predicate names — ``'isURI'`` -> ``isIRI(?col)`` (also
  ``isIRI``, ``isLiteral``, ``isBlank``, ``bound``),
* membership — ``'In(dblprc:vldb, dblprc:sigmod)'`` -> ``?conference IN (...)``,
* anything containing ``?`` is treated as a raw SPARQL expression and
  passed through verbatim (e.g. ``regex(str(?actor_country), "USA")``).
"""

from __future__ import annotations

import re
from typing import Tuple

_COMPARISON_RE = re.compile(r"^(>=|<=|!=|=|>|<)\s*(.+)$", re.DOTALL)
_IN_RE = re.compile(r"^(?:In|IN|in)\s*\((.*)\)$", re.DOTALL)
_FUNCTION_NAMES = {
    "isuri": "isIRI",
    "isiri": "isIRI",
    "isliteral": "isLiteral",
    "isblank": "isBlank",
    "bound": "bound",
    "isnumeric": "isNumeric",
}

# Values in comparisons that need no quoting: numbers, prefixed names,
# <uris>, variables, booleans.
_BARE_VALUE_RE = re.compile(
    r"^(?:-?\d+(?:\.\d+)?|true|false|\?[A-Za-z_]\w*|<[^<>]+>"
    r"|[A-Za-z_][\w-]*:[\w.-]+)$")


class ConditionError(ValueError):
    """Raised for malformed filter condition strings."""


def render_value(value: str) -> str:
    """Render a condition's right-hand side as a SPARQL term."""
    value = value.strip()
    if _BARE_VALUE_RE.match(value):
        return value
    if value.startswith('"') and value.endswith('"'):
        return value
    # Fall back to a quoted string literal.
    return '"%s"' % value.replace('"', '\\"')


def condition_to_sparql(column: str, condition) -> str:
    """Translate one condition on ``column`` to a SPARQL expression string."""
    if isinstance(condition, (int, float)):
        return "?%s = %s" % (column, condition)
    if not isinstance(condition, str):
        raise ConditionError("condition must be a string or number, got %r"
                             % (condition,))
    text = condition.strip()
    if not text:
        raise ConditionError("empty condition for column %r" % column)

    lowered = text.lower()
    if lowered in _FUNCTION_NAMES:
        return "%s(?%s)" % (_FUNCTION_NAMES[lowered], column)

    match = _IN_RE.match(text)
    if match:
        options = [render_value(part) for part in _split_args(match.group(1))]
        if not options:
            raise ConditionError("empty IN list for column %r" % column)
        return "?%s IN (%s)" % (column, ", ".join(options))

    match = _COMPARISON_RE.match(text)
    if match:
        op, value = match.groups()
        return "?%s %s %s" % (column, op, render_value(value))

    if "?" in text:
        # Raw SPARQL expression; trust the caller.
        return text

    # A bare value means equality (the common '=value' with '=' omitted).
    return "?%s = %s" % (column, render_value(text))


def _split_args(text: str):
    """Split a comma-separated argument list, respecting quotes."""
    parts = []
    depth = 0
    in_string = False
    current = []
    for char in text:
        if char == '"':
            in_string = not in_string
            current.append(char)
        elif in_string:
            current.append(char)
        elif char == "(":
            depth += 1
            current.append(char)
        elif char == ")":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            part = "".join(current).strip()
            if part:
                parts.append(part)
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def rename_variable(expression: str, old: str, new: str) -> str:
    """Rename ``?old`` to ``?new`` in a SPARQL expression string."""
    return re.sub(r"\?%s\b" % re.escape(old), "?" + new, expression)


def expression_variables(expression: str):
    """All variable names mentioned in a SPARQL expression string."""
    return re.findall(r"\?([A-Za-z_]\w*)", expression)
