"""Optimized query generation: operator queue -> query model.

This implements Section 4.2 of the paper.  The Generator consumes a frame's
recorded operators in FIFO order and edits one or two components of the
query model per operator.  Patterns accumulate in a *single* query model as
long as semantics are preserved; a nested subquery is created only in the
three necessary cases the paper identifies:

* **Case 1** — an ``expand`` or ``filter`` must apply to a *grouped* frame:
  the grouped model is wrapped as an inner query and the new pattern goes
  in the fresh outer model (likewise for patterns after LIMIT/OFFSET).
* **Case 2** — a grouped frame participates in a join: the grouped side(s)
  become nested subqueries.
* **Case 3** — a full outer join: SPARQL has no full outer join pattern, so
  the generator emits ``(m1 OPTIONAL m2) UNION (m2 OPTIONAL m1)`` with each
  side wrapped in a nested query.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..rdf.namespaces import PrefixMap
from .conditions import condition_to_sparql
from .operators import (AggregateAllOperator, AggregationOperator,
                        CacheOperator, ExpandOperator, FilterOperator,
                        FULL_OUTER_JOIN, GroupByOperator, HeadOperator,
                        INCOMING, INNER_JOIN, JoinOperator, LEFT_OUTER_JOIN,
                        Operator, RIGHT_OUTER_JOIN, SeedOperator,
                        SelectColsOperator, SortOperator)
from .query_model import Aggregation, OptionalBlock, QueryModel


class GenerationError(ValueError):
    """Raised when an operator sequence cannot be translated."""


def render_term(text: str) -> str:
    """Render a user-supplied seed/expand argument as a SPARQL term.

    Strings containing ``:`` (prefixed names), ``<...>`` IRIs, explicit
    variables (``?x``), quoted literals, and numbers are terms; anything
    else is a column name and becomes a variable.
    """
    text = str(text).strip()
    if not text:
        raise GenerationError("empty term")
    if text.startswith("?"):
        return text
    if text.startswith("<") and text.endswith(">"):
        return text
    if text.startswith('"'):
        return text
    if ":" in text:
        return text
    if text.replace(".", "", 1).replace("-", "", 1).isdigit():
        return text
    return "?" + text


class Generator:
    """Builds an optimized query model from a frame's operator queue."""

    def __init__(self, prefixes: Optional[dict] = None):
        self.prefix_map = PrefixMap(prefixes or {})

    # ------------------------------------------------------------------
    def generate(self, frame) -> QueryModel:
        """Generate the query model for an RDFFrame (recursing into joins)."""
        model = QueryModel()
        model.add_prefixes(dict(self.prefix_map.items()))
        # A joined frame may come from a KnowledgeGraph with its own prefix
        # bindings; carry them so its prefixed names resolve in the query.
        frame_prefixes = getattr(frame.knowledge_graph, "prefixes", None)
        if frame_prefixes:
            model.add_prefixes(dict(frame_prefixes))
        if frame.graph_uri:
            model.add_graph(frame.graph_uri)
        for operator in frame.operators:
            model = self._apply(model, operator)
        return model

    # ------------------------------------------------------------------
    def _apply(self, model: QueryModel, operator: Operator) -> QueryModel:
        handler = getattr(self, "_on_%s" % operator.name, None)
        if handler is None:
            raise GenerationError("no handler for operator %r" % operator)
        return handler(model, operator)

    # -- seed ----------------------------------------------------------
    def _on_seed(self, model: QueryModel, op: SeedOperator) -> QueryModel:
        model.add_triple(render_term(op.subject), render_term(op.predicate),
                         render_term(op.object))
        return model

    # -- expand ----------------------------------------------------------
    def _on_expand(self, model: QueryModel, op: ExpandOperator) -> QueryModel:
        if model.is_grouped or model.has_modifiers or model.union_models:
            model = model.wrap()  # nesting Case 1
        src = "?" + op.src_column
        new = "?" + op.new_column
        predicate = render_term(op.predicate)
        if op.direction == INCOMING:
            triple = (new, predicate, src)
        else:
            triple = (src, predicate, new)
        if op.is_optional:
            block = OptionalBlock()
            block.triples.append(triple)
            model.add_optional(block)
        else:
            model.add_triple(*triple)
        return model

    # -- filter ----------------------------------------------------------
    def _on_filter(self, model: QueryModel, op: FilterOperator) -> QueryModel:
        for column, condition in op.conditions:
            expression = condition_to_sparql(column, condition)
            aliases = {a.alias for a in model.aggregations}
            if column in aliases:
                # Filter on an aggregated column -> HAVING (transparent to
                # the user, as the paper emphasizes).
                model.add_having(expression)
            elif model.is_grouped or model.has_modifiers or model.union_models:
                model = model.wrap()  # nesting Case 1
                model.add_filter(expression)
            else:
                model.add_filter(expression)
        return model

    # -- grouping --------------------------------------------------------
    def _on_group_by(self, model: QueryModel, op: GroupByOperator) -> QueryModel:
        if model.is_grouped or model.has_modifiers:
            model = model.wrap()
        model.group_columns = list(op.columns)
        return model

    def _on_aggregation(self, model: QueryModel,
                        op: AggregationOperator) -> QueryModel:
        if not model.group_columns:
            raise GenerationError("aggregation without group_by")
        function = "count" if op.function == "distinct_count" else op.function
        model.aggregations.append(Aggregation(
            function, op.src_column, op.new_column, op.distinct))
        return model

    def _on_aggregate(self, model: QueryModel,
                      op: AggregateAllOperator) -> QueryModel:
        if model.is_grouped or model.has_modifiers:
            model = model.wrap()
        function = "count" if op.function == "distinct_count" else op.function
        model.aggregations.append(Aggregation(
            function, op.src_column, op.new_column, op.distinct))
        return model

    # -- projection / modifiers ------------------------------------------
    def _on_select_cols(self, model: QueryModel,
                        op: SelectColsOperator) -> QueryModel:
        if model.is_grouped:
            model = model.wrap()
        model.select_columns = list(op.columns)
        return model

    def _on_sort(self, model: QueryModel, op: SortOperator) -> QueryModel:
        if model.limit is not None or model.offset is not None:
            model = model.wrap()
        model.order_keys = list(op.keys)
        return model

    def _on_head(self, model: QueryModel, op: HeadOperator) -> QueryModel:
        if model.limit is not None or model.offset is not None:
            model = model.wrap()
        model.limit = op.limit
        model.offset = op.offset or None
        return model

    def _on_cache(self, model: QueryModel, op: CacheOperator) -> QueryModel:
        return model  # logical marker only

    def _on_distinct(self, model: QueryModel, op) -> QueryModel:
        if model.has_modifiers:
            # DISTINCT applies before ORDER/LIMIT in SPARQL; a later
            # distinct() therefore requires a nesting boundary.
            model = model.wrap()
        model.distinct = True
        return model

    # -- join --------------------------------------------------------------
    def _on_join(self, model: QueryModel, op: JoinOperator) -> QueryModel:
        other_model = self.generate(op.other)
        # Align the join columns to the requested output name.
        model.rename_column(op.column, op.new_column)
        other_model.rename_column(op.other_column, op.new_column)
        if op.join_type == FULL_OUTER_JOIN:
            return self._full_outer_join(model, other_model)
        if op.join_type == RIGHT_OUTER_JOIN:
            joined = self._left_outer_join(other_model, model)
            return joined
        if op.join_type == LEFT_OUTER_JOIN:
            return self._left_outer_join(model, other_model)
        return self._inner_join(model, other_model)

    @staticmethod
    def _needs_nesting(model: QueryModel) -> bool:
        return model.is_grouped or model.has_modifiers or bool(model.union_models)

    def _inner_join(self, left: QueryModel, right: QueryModel) -> QueryModel:
        left_nested = self._needs_nesting(left)
        right_nested = self._needs_nesting(right)
        different_graphs = _different_graphs(left, right)
        if not left_nested and not right_nested:
            merged = left.copy()
            merged.merge_pattern(right, scope_graphs=different_graphs)
            merged.select_columns = _union_selects(left, right)
            return merged
        if left_nested and not right_nested:
            # Grouped side becomes the inner query (paper's Case 2).
            outer = right.copy()
            for graph in left.from_graphs:
                outer.add_graph(graph)
            outer.add_subquery(_as_inner(left))
            outer.select_columns = None
            return outer
        if right_nested and not left_nested:
            outer = left.copy()
            for graph in right.from_graphs:
                outer.add_graph(graph)
            outer.add_subquery(_as_inner(right))
            outer.select_columns = None
            return outer
        outer = QueryModel()
        outer.add_prefixes(left.prefixes)
        outer.add_prefixes(right.prefixes)
        for graph in left.from_graphs + right.from_graphs:
            outer.add_graph(graph)
        outer.add_subquery(_as_inner(left))
        outer.add_subquery(_as_inner(right))
        return outer

    def _left_outer_join(self, left: QueryModel,
                         right: QueryModel) -> QueryModel:
        if self._needs_nesting(left):
            outer = left.wrap()
        else:
            outer = left.copy()
        for graph in right.from_graphs:
            outer.add_graph(graph)
        if self._needs_nesting(right):
            outer.add_optional_subquery(_as_inner(right))
        else:
            block = right.as_optional_block()
            if _different_graphs(left, right) and len(right.from_graphs) == 1:
                block.graph_uri = right.from_graphs[0]
            outer.add_optional(block)
            outer.add_prefixes(right.prefixes)
        return outer

    def _full_outer_join(self, left: QueryModel,
                         right: QueryModel) -> QueryModel:
        # Case 3: (left OPTIONAL right) UNION (right OPTIONAL left), with
        # both sides wrapped in nested queries.
        first = QueryModel()
        first.add_subquery(_as_inner(left))
        first.add_optional_subquery(_as_inner(right))
        second = QueryModel()
        second.add_subquery(_as_inner(right))
        second.add_optional_subquery(_as_inner(left))
        outer = QueryModel()
        outer.add_prefixes(left.prefixes)
        outer.add_prefixes(right.prefixes)
        for graph in left.from_graphs + right.from_graphs:
            outer.add_graph(graph)
        outer.union_models = [first, second]
        return outer


def _as_inner(model: QueryModel) -> QueryModel:
    """Prepare a model for use as a nested subquery (FROM belongs to the
    outermost query only)."""
    inner = model.copy()
    inner.from_graphs = []
    return inner


def _different_graphs(left: QueryModel, right: QueryModel) -> bool:
    return bool(left.from_graphs and right.from_graphs
                and set(left.from_graphs) != set(right.from_graphs))


def _union_selects(left: QueryModel, right: QueryModel) -> Optional[List[str]]:
    if left.select_columns is None and right.select_columns is None:
        return None
    columns: List[str] = []
    for model in (left, right):
        source = (model.select_columns if model.select_columns is not None
                  else model.visible_columns())
        for column in source:
            if column not in columns:
                columns.append(column)
    return columns
