"""The RDFFrame: the lazy, navigational user API of the paper.

An RDFFrame is "an abstract description of a table" (Definition 2): it
holds no data, only the FIFO queue of operators recorded by user calls.
Every builder method returns a *new* RDFFrame (immutably extending the
queue), so branching pipelines like the paper's Listing 3 work naturally::

    movies   = graph.feature_domain_range('dbpp:starring', 'movie', 'actor')
    american = movies.filter({'actor_country': ['=dbpr:United_States']})
    prolific = movies.group_by(['actor']).count('movie', 'movie_count',
                                                unique=True)
    dataset  = american.join(prolific, 'actor', OuterJoin)

Calling :meth:`RDFFrame.execute` triggers query generation, translation,
execution on the engine/endpoint, and conversion of the results into a
:class:`~repro.dataframe.DataFrame`.
"""

from __future__ import annotations

from typing import Dict, List, Optional as Opt, Sequence, Tuple, Union

from . import operators as ops
from .generator import Generator
from .naive_generator import NaiveGenerator
from .translator import translate

# Public aliases matching the names used in the paper's listings.
OUTGOING = ops.OUTGOING
INCOMING = ops.INCOMING
OPTIONAL = "optional"
InnerJoin = ops.INNER_JOIN
LeftOuterJoin = ops.LEFT_OUTER_JOIN
RightOuterJoin = ops.RIGHT_OUTER_JOIN
OuterJoin = ops.FULL_OUTER_JOIN

_EXPAND_FLAGS = {OUTGOING, INCOMING, OPTIONAL}


class RDFFrameError(ValueError):
    """Raised on invalid RDFFrame API usage."""


class RDFFrame:
    """A logical description of a table extracted from a knowledge graph."""

    def __init__(self, knowledge_graph, operators: Tuple[ops.Operator, ...] = (),
                 columns: Tuple[str, ...] = ()):
        self._kg = knowledge_graph
        self._operators = tuple(operators)
        self._columns = tuple(columns)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def operators(self) -> Tuple[ops.Operator, ...]:
        """The recorded operator queue (FIFO)."""
        return self._operators

    @property
    def columns(self) -> List[str]:
        """Column names this frame describes, in creation order."""
        return list(self._columns)

    @property
    def graph_uri(self) -> Opt[str]:
        return self._kg.graph_uri

    @property
    def knowledge_graph(self):
        return self._kg

    def __repr__(self):
        return "RDFFrame(columns=%s, %d operators)" % (
            list(self._columns), len(self._operators))

    # ------------------------------------------------------------------
    # Internal builders
    # ------------------------------------------------------------------
    def _extend(self, operator: ops.Operator,
                new_columns: Sequence[str] = (),
                drop_columns: Sequence[str] = (),
                replace_columns: Opt[Sequence[str]] = None,
                frame_class: Opt[type] = None) -> "RDFFrame":
        if replace_columns is not None:
            columns = tuple(replace_columns)
        else:
            columns = tuple(c for c in self._columns if c not in drop_columns)
            for column in new_columns:
                if column not in columns:
                    columns = columns + (column,)
        cls = frame_class or RDFFrame
        return cls(self._kg, self._operators + (operator,), columns)

    def _require_column(self, column: str) -> None:
        if self._columns and column not in self._columns:
            raise RDFFrameError("unknown column %r (have %s)"
                                % (column, list(self._columns)))

    # ------------------------------------------------------------------
    # Navigational operators
    # ------------------------------------------------------------------
    def expand(self, src_column: str,
               predicates: Sequence[Sequence[str]]) -> "RDFFrame":
        """Navigate from ``src_column`` along one or more predicates.

        Each predicate spec is ``(pred, new_col)`` optionally followed by
        the direction (``INCOMING``/``OUTGOING``) and/or ``OPTIONAL``::

            movies.expand('actor', [('dbpp:birthPlace', 'country'),
                                    ('dbpp:starring', 'movie', INCOMING),
                                    ('dbpo:genre', 'genre', OPTIONAL)])
        """
        self._require_column(src_column)
        frame = self
        for spec in predicates:
            if len(spec) < 2:
                raise RDFFrameError("expand spec needs (predicate, new_col), "
                                    "got %r" % (spec,))
            predicate, new_column = spec[0], spec[1]
            direction = ops.OUTGOING
            optional = False
            for flag in spec[2:]:
                flag_text = str(flag).lower()
                if flag_text in (OUTGOING, INCOMING):
                    direction = flag_text
                elif flag_text == OPTIONAL or flag is True:
                    optional = True
                else:
                    raise RDFFrameError("unknown expand flag %r" % (flag,))
            operator = ops.ExpandOperator(src_column, predicate, new_column,
                                          direction, optional)
            added = [new_column]
            if str(predicate).startswith("?"):
                # Variable predicate (exploration): it is a column too.
                added.append(str(predicate)[1:])
            frame = frame._extend(operator, new_columns=added)
        return frame

    # ------------------------------------------------------------------
    # Relational operators
    # ------------------------------------------------------------------
    def filter(self, conditions: Union[Dict[str, Sequence[str]],
                                       Sequence[Tuple[str, str]]]) -> "RDFFrame":
        """Keep rows satisfying all conditions.

        ``conditions`` maps column name to a list of condition strings (see
        :mod:`repro.core.conditions` for the mini-language), or is a list of
        ``(column, condition)`` pairs.
        """
        pairs: List[Tuple[str, str]] = []
        if isinstance(conditions, dict):
            for column, column_conditions in conditions.items():
                if isinstance(column_conditions, (str, int, float)):
                    column_conditions = [column_conditions]
                for condition in column_conditions:
                    pairs.append((column, condition))
        else:
            pairs = [(c, cond) for c, cond in conditions]
        if not pairs:
            raise RDFFrameError("filter requires at least one condition")
        for column, _ in pairs:
            self._require_column(column)
        return self._extend(ops.FilterOperator(pairs),
                            frame_class=type(self))

    def select_cols(self, columns: Sequence[str]) -> "RDFFrame":
        """Projection: keep only ``columns``."""
        for column in columns:
            self._require_column(column)
        return self._extend(ops.SelectColsOperator(columns),
                            replace_columns=columns)

    def group_by(self, columns: Sequence[str]) -> "GroupedRDFFrame":
        """Group rows; follow with an aggregation (count/sum/avg/min/max)."""
        if isinstance(columns, str):
            columns = [columns]
        for column in columns:
            self._require_column(column)
        return self._extend(ops.GroupByOperator(columns),
                            replace_columns=columns,
                            frame_class=GroupedRDFFrame)

    def join(self, other: "RDFFrame", column: str,
             other_column: Opt[str] = None,
             join_type: str = InnerJoin,
             new_column: Opt[str] = None) -> "RDFFrame":
        """Join with another RDFFrame on ``column`` / ``other_column``.

        Accepts the paper's shorthand where the join type is passed in
        place of ``other_column``: ``movies.join(prolific, 'actor',
        OuterJoin)``.
        """
        if other_column in ops.JOIN_TYPES and join_type == InnerJoin:
            join_type = other_column
            other_column = None
        self._require_column(column)
        if other_column:
            other._require_column(other_column)
        else:
            other._require_column(column)
        operator = ops.JoinOperator(other, column, other_column,
                                    join_type, new_column)
        merged = [operator.new_column if c == column else c
                  for c in self._columns]
        for other_col in other._columns:
            mapped = (operator.new_column
                      if other_col == operator.other_column else other_col)
            if mapped not in merged:
                merged.append(mapped)
        return self._extend(operator, replace_columns=merged)

    def sort(self, keys: Union[Dict[str, str],
                               Sequence[Tuple[str, str]]]) -> "RDFFrame":
        """Sort by ``{column: 'asc'|'desc'}`` or ``[(column, order), ...]``."""
        if isinstance(keys, dict):
            key_list = list(keys.items())
        else:
            key_list = [tuple(k) for k in keys]
        for column, _ in key_list:
            self._require_column(column)
        return self._extend(ops.SortOperator(key_list),
                            frame_class=type(self))

    def head(self, limit: Opt[int], offset: int = 0) -> "RDFFrame":
        """The first ``limit`` rows starting at ``offset``.

        ``limit=None`` keeps everything from ``offset`` on (OFFSET-only).
        On the local engine a bounded head rides the streaming executor:
        row production stops as soon as ``offset + limit`` rows exist.

        Example
        -------
        >>> from repro.client import EngineClient
        >>> from repro.core import KnowledgeGraph
        >>> from repro.data import DBPEDIA_URI, build_dataset
        >>> from repro.sparql import Engine
        >>> client = EngineClient(Engine(build_dataset(scale=0.02)))
        >>> frame = (KnowledgeGraph(graph_uri=DBPEDIA_URI)
        ...          .feature_domain_range("dbpp:starring", "film", "actor")
        ...          .head(5))
        >>> len(frame.execute(client))
        5
        """
        return self._extend(ops.HeadOperator(limit, offset),
                            frame_class=type(self))

    def cache(self) -> "RDFFrame":
        """Mark this frame as a shared subplan boundary (logical no-op)."""
        return self._extend(ops.CacheOperator(), frame_class=type(self))

    def distinct(self) -> "RDFFrame":
        """Collapse duplicate rows (compiles to SELECT DISTINCT)."""
        return self._extend(ops.DistinctOperator(), frame_class=type(self))

    # -- whole-frame aggregates ------------------------------------------
    def aggregate(self, function: str, column: str,
                  new_column: Opt[str] = None) -> "RDFFrame":
        """Aggregate a column over the whole frame to a single value."""
        self._require_column(column)
        new_column = new_column or "%s_%s" % (column, function)
        return self._extend(
            ops.AggregateAllOperator(function, column, new_column),
            replace_columns=[new_column])

    def count(self, column: str, new_column: Opt[str] = None,
              unique: bool = False) -> "RDFFrame":
        """Count (optionally distinct) values of ``column`` over the frame."""
        self._require_column(column)
        new_column = new_column or column + "_count"
        function = "distinct_count" if unique else "count"
        return self._extend(
            ops.AggregateAllOperator(function, column, new_column),
            replace_columns=[new_column])

    # ------------------------------------------------------------------
    # Query generation & execution
    # ------------------------------------------------------------------
    def query_model(self):
        """Generate this frame's (optimized) query model."""
        generator = Generator(self._kg.prefixes)
        return generator.generate(self)

    def _generate_model(self, strategy: str):
        if strategy == "optimized":
            return self.query_model()
        if strategy == "naive":
            return NaiveGenerator(self._kg.prefixes).generate(self)
        raise RDFFrameError("unknown strategy %r" % strategy)

    def to_sparql(self, strategy: str = "optimized",
                  validate: bool = True) -> str:
        """Generate the SPARQL query for this frame.

        ``strategy`` is ``'optimized'`` (the RDFFrames algorithm) or
        ``'naive'`` (the one-subquery-per-operator baseline of Section 6.3).
        """
        return translate(self._generate_model(strategy), validate=validate)

    def execute(self, client, return_format: str = "dataframe",
                strategy: str = "optimized", limit: Opt[int] = None,
                offset: int = 0):
        """Generate, execute, and fetch results as a dataframe.

        Clients exposing ``execute_model`` (the in-process
        :class:`~repro.client.EngineClient`) receive the query model
        directly — the engine compiles it straight to algebra, skipping
        SPARQL text generation and parsing.  Other clients (HTTP
        endpoints) get SPARQL text, the wire format.

        ``limit``/``offset`` request one page of the result: they append
        a :meth:`head` window, which the engine's ``LimitPushdown`` pass
        turns into a streaming plan — the page is produced with
        O(offset + limit) local row pulls instead of a full
        materialization.

        Example
        -------
        >>> from repro.client import EngineClient
        >>> from repro.core import KnowledgeGraph
        >>> from repro.data import DBPEDIA_URI, build_dataset
        >>> from repro.sparql import Engine
        >>> client = EngineClient(Engine(build_dataset(scale=0.02)))
        >>> counts = (KnowledgeGraph(graph_uri=DBPEDIA_URI)
        ...           .feature_domain_range("dbpp:starring", "film", "actor")
        ...           .group_by(["actor"]).count("film", "n"))
        >>> df = counts.execute(client)      # one pushed-down GROUP BY
        >>> list(df.columns)
        ['actor', 'n']
        """
        frame = self
        if limit is not None or offset:
            frame = frame.head(limit, offset)
        model = frame._generate_model(strategy)
        if hasattr(client, "execute_model"):
            result = client.execute_model(model)
        else:
            result = client.execute(translate(model))
        if return_format in ("dataframe", "df", "pandas_df"):
            return result
        if return_format in ("records", "tuples"):
            return result.to_records()
        raise RDFFrameError("unknown return format %r" % return_format)


class GroupedRDFFrame(RDFFrame):
    """An RDFFrame produced by ``group_by`` — aggregations attach here.

    The special handling of grouped frames during query generation
    (nesting Cases 1 and 2) is internal; from the user's perspective this
    class just adds the aggregation methods.
    """

    def aggregation(self, function: str, src_column: str,
                    new_column: Opt[str] = None,
                    unique: bool = False) -> "GroupedRDFFrame":
        """Apply ``function`` to ``src_column`` within each group."""
        new_column = new_column or "%s_%s" % (src_column, function)
        operator = ops.AggregationOperator(function, src_column, new_column,
                                           distinct=unique)
        return self._extend(operator, new_columns=[new_column],
                            frame_class=GroupedRDFFrame)

    def count(self, column: str, new_column: Opt[str] = None,
              unique: bool = False) -> "GroupedRDFFrame":
        """COUNT (optionally DISTINCT) of ``column`` per group."""
        function = "distinct_count" if unique else "count"
        return self.aggregation(function, column,
                                new_column or column + "_count")

    def sum(self, column: str, new_column: Opt[str] = None):
        return self.aggregation("sum", column, new_column)

    def average(self, column: str, new_column: Opt[str] = None):
        return self.aggregation("average", column, new_column)

    avg = average
    mean = average

    def min(self, column: str, new_column: Opt[str] = None):
        return self.aggregation("min", column, new_column)

    def max(self, column: str, new_column: Opt[str] = None):
        return self.aggregation("max", column, new_column)

    def sample(self, column: str, new_column: Opt[str] = None):
        return self.aggregation("sample", column, new_column)
