"""RDFFrames core: the paper's primary contribution.

The user API (KnowledgeGraph + RDFFrame), the lazy operator Recorder, the
query model, the optimized and naive query generators, and the translator.
"""

from .compiler import CompilationError, ModelCompiler, compile_model
from .conditions import ConditionError, condition_to_sparql
from .generator import GenerationError, Generator
from .knowledge_graph import KnowledgeGraph
from .naive_generator import NaiveGenerator, naive_transform
from .operators import (AGGREGATE_FUNCTIONS, FULL_OUTER_JOIN, INCOMING,
                        INNER_JOIN, JOIN_TYPES, LEFT_OUTER_JOIN, OUTGOING,
                        RIGHT_OUTER_JOIN)
from .query_model import Aggregation, OptionalBlock, QueryModel
from .rdfframe import (OPTIONAL, GroupedRDFFrame, InnerJoin, LeftOuterJoin,
                       OuterJoin, RDFFrame, RDFFrameError, RightOuterJoin)
from .translator import TranslationError, translate

__all__ = [
    "KnowledgeGraph", "RDFFrame", "GroupedRDFFrame", "RDFFrameError",
    "Generator", "GenerationError", "NaiveGenerator", "naive_transform",
    "QueryModel", "OptionalBlock", "Aggregation",
    "compile_model", "ModelCompiler", "CompilationError",
    "translate", "TranslationError",
    "condition_to_sparql", "ConditionError",
    "OPTIONAL", "INCOMING", "OUTGOING",
    "InnerJoin", "OuterJoin", "LeftOuterJoin", "RightOuterJoin",
    "INNER_JOIN", "FULL_OUTER_JOIN", "LEFT_OUTER_JOIN", "RIGHT_OUTER_JOIN",
    "JOIN_TYPES", "AGGREGATE_FUNCTIONS",
]
