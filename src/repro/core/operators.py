"""Operator records for the lazy RDFFrames API.

RDFFrames uses lazy evaluation (Section 1, "RDFFrames in a Nutshell"): API
calls do not touch the database; the Recorder appends one of these records
to the frame's FIFO queue, and query generation consumes the queue when
``execute`` is called.

Each record is an immutable description of one user call, carrying exactly
the call order and parameters — the paper observes this is all the
information query generation needs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

# Navigation directions for expand (paper Section 3.2).
OUTGOING = "out"
INCOMING = "in"

# Join types (paper Section 3.2, join operator).
INNER_JOIN = "inner"
LEFT_OUTER_JOIN = "left"
RIGHT_OUTER_JOIN = "right"
FULL_OUTER_JOIN = "outer"

JOIN_TYPES = (INNER_JOIN, LEFT_OUTER_JOIN, RIGHT_OUTER_JOIN, FULL_OUTER_JOIN)

AGGREGATE_FUNCTIONS = ("count", "sum", "min", "max", "average", "sample",
                       "distinct_count")


class Operator:
    """Base class of all recorded operators."""

    name = "operator"

    def __repr__(self):
        parts = ", ".join("%s=%r" % (k, v) for k, v in sorted(vars(self).items()))
        return "%s(%s)" % (type(self).__name__, parts)


class SeedOperator(Operator):
    """``G.seed(col1, col2, col3)`` — the initial triple pattern.

    Each of the three positions is either a column name (a variable) or a
    concrete term written in prefixed/absolute form.  ``columns`` lists the
    positions that are variables, in subject-predicate-object order.
    """

    name = "seed"

    def __init__(self, subject: str, predicate: str, obj: str,
                 columns: Sequence[str]):
        self.subject = subject
        self.predicate = predicate
        self.object = obj
        self.columns = list(columns)


class ExpandOperator(Operator):
    """``D.expand(src, pred, new_col, dir, is_optional)`` — one navigation step."""

    name = "expand"

    def __init__(self, src_column: str, predicate: str, new_column: str,
                 direction: str = OUTGOING, is_optional: bool = False):
        if direction not in (OUTGOING, INCOMING):
            raise ValueError("direction must be %r or %r" % (OUTGOING, INCOMING))
        self.src_column = src_column
        self.predicate = predicate
        self.new_column = new_column
        self.direction = direction
        self.is_optional = is_optional


class FilterOperator(Operator):
    """``D.filter({col: [cond, ...], ...})``.

    ``conditions`` preserves the user's dict as an ordered list of
    ``(column, condition_string)`` pairs.  Condition strings use the paper's
    mini-language: ``'>=50'``, ``'=dbpr:United_States'``, ``'isURI'``,
    ``'In(dblprc:vldb, dblprc:sigmod)'``, or a raw SPARQL expression.
    """

    name = "filter"

    def __init__(self, conditions: Sequence[Tuple[str, str]]):
        self.conditions = list(conditions)


class SelectColsOperator(Operator):
    """``D.select_cols(cols)`` — projection."""

    name = "select_cols"

    def __init__(self, columns: Sequence[str]):
        self.columns = list(columns)


class GroupByOperator(Operator):
    """``D.group_by(cols)`` — must be followed by an aggregation."""

    name = "group_by"

    def __init__(self, columns: Sequence[str]):
        if not columns:
            raise ValueError("group_by requires at least one column")
        self.columns = list(columns)


class AggregationOperator(Operator):
    """An aggregation applied to a grouped frame (count/sum/min/max/avg)."""

    name = "aggregation"

    def __init__(self, function: str, src_column: Optional[str],
                 new_column: str, distinct: bool = False):
        function = function.lower()
        if function not in AGGREGATE_FUNCTIONS and function != "count_star":
            raise ValueError("unknown aggregation %r" % function)
        self.function = function
        self.src_column = src_column
        self.new_column = new_column
        self.distinct = distinct or function == "distinct_count"


class AggregateAllOperator(Operator):
    """``D.aggregate(fn, col, new_col)`` — whole-frame aggregation to one row."""

    name = "aggregate"

    def __init__(self, function: str, src_column: str, new_column: str,
                 distinct: bool = False):
        function = function.lower()
        if function not in AGGREGATE_FUNCTIONS:
            raise ValueError("unknown aggregation %r" % function)
        self.function = function
        self.src_column = src_column
        self.new_column = new_column
        self.distinct = distinct or function == "distinct_count"


class JoinOperator(Operator):
    """``D.join(D2, col, col2, jtype, new_col)``."""

    name = "join"

    def __init__(self, other, column: str, other_column: Optional[str],
                 join_type: str, new_column: Optional[str]):
        if join_type not in JOIN_TYPES:
            raise ValueError("unknown join type %r (one of %s)"
                             % (join_type, ", ".join(JOIN_TYPES)))
        self.other = other                      # the other RDFFrame
        self.column = column
        self.other_column = other_column or column
        self.join_type = join_type
        self.new_column = new_column or column


class SortOperator(Operator):
    """``D.sort([(col, 'asc'|'desc'), ...])``."""

    name = "sort"

    def __init__(self, keys: Sequence[Tuple[str, str]]):
        cleaned = []
        for column, order in keys:
            order = order.lower()
            if order not in ("asc", "desc"):
                raise ValueError("sort order must be 'asc' or 'desc'")
            cleaned.append((column, order))
        self.keys = cleaned


class HeadOperator(Operator):
    """``D.head(k, i)`` — LIMIT k OFFSET i.

    ``limit=None`` means no LIMIT (an OFFSET-only window: skip the first
    ``offset`` rows, keep the rest).
    """

    name = "head"

    def __init__(self, limit, offset: int = 0):
        if (limit is not None and limit < 0) or offset < 0:
            raise ValueError("head requires non-negative limit/offset")
        self.limit = limit
        self.offset = offset


class DistinctOperator(Operator):
    """``D.distinct()`` — collapse duplicate rows (SELECT DISTINCT)."""

    name = "distinct"


class CacheOperator(Operator):
    """``D.cache()`` — marks a shared subplan boundary.

    Query generation is purely logical, so cache is a marker: branches
    created after it repeat the prefix operators (as in the paper's
    Listing 4, where the shared pattern appears in every subquery).
    """

    name = "cache"
