"""Direct compilation of RDFFrames query models to engine algebra.

The local execution path used to be ``QueryModel -> SPARQL text ->
tokenizer -> parser -> algebra``: the model was serialized only to be
immediately re-parsed.  This module compiles a
:class:`~repro.core.query_model.QueryModel` *straight* to the engine's
:mod:`~repro.sparql.algebra`, producing the same tree the
translate-then-parse round trip would — component by component, in the
same order the translator renders and the parser folds them:

    triples -> BGP, GRAPH-scoped triples -> GraphPattern, subqueries ->
    nested Project (joined in), OPTIONAL blocks / optional subqueries ->
    LeftJoin, UNION branches -> Union (joined in), filters wrap the group;
    then Group (+HAVING) -> Project -> Distinct -> OrderBy -> Slice.

Terms and filter expressions inside a model are stored as rendered SPARQL
fragments (``'?movie'``, ``'dbpp:starring'``, ``'?year >= 2000'``), so the
compiler leans on the engine's own tokenizer/parser for those *fragments*
only — orders of magnitude less text than a full query, and the results
are memoized per compiler.

SPARQL text remains the wire format for HTTP endpoints; this path is for
the in-process engine (:meth:`Engine.plan` accepts a model directly).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..rdf.namespaces import DEFAULT_PREFIXES
from ..sparql import algebra as alg
from ..sparql.expressions import AndExpr, Expression, VarExpr
from ..sparql.parser import ParseError, Parser
from .query_model import Aggregation, OptionalBlock, QueryModel


class CompilationError(ValueError):
    """Raised when a query model cannot be compiled to algebra."""


#: Model aggregation function -> algebra aggregate function.
_AGG_FUNCTIONS = {
    "count": "count",
    "sum": "sum",
    "min": "min",
    "max": "max",
    "average": "avg",
    "avg": "avg",
    "sample": "sample",
    "group_concat": "group_concat",
    "count_star": "count",
    "distinct_count": "count",
}


class ModelCompiler:
    """Compiles one query model (and its nested models) to algebra."""

    def __init__(self, prefixes: Optional[Dict[str, str]] = None):
        self.prefixes = dict(DEFAULT_PREFIXES)
        if prefixes:
            self.prefixes.update(prefixes)
        self._term_cache: Dict[str, object] = {}
        self._expression_cache: Dict[str, Expression] = {}

    # ------------------------------------------------------------------
    def compile(self, model: QueryModel) -> alg.Query:
        """Compile a top-level model to a complete algebra query."""
        self.prefixes.update(model.prefixes)
        node = self._compile_select(model)
        return alg.Query(node, from_graphs=list(model.from_graphs),
                         prefixes=dict(self.prefixes))

    # ------------------------------------------------------------------
    # SELECT assembly (mirrors translator._render_query + the parser's
    # _parse_select_query modifier order: Group -> Project -> Distinct ->
    # OrderBy -> Slice)
    # ------------------------------------------------------------------
    def _compile_select(self, model: QueryModel) -> alg.AlgebraNode:
        self.prefixes.update(model.prefixes)
        pattern = self._compile_body(model)
        if model.is_grouped:
            aggregates = [self._compile_aggregation(a)
                          for a in model.aggregations]
            having = self._compile_having(model)
            pattern = alg.Group(pattern, model.group_columns, aggregates,
                                having)
            variables: Optional[List[str]] = (
                list(model.group_columns)
                + [a.alias for a in model.aggregations])
            node: alg.AlgebraNode = alg.Project(pattern, variables)
        elif model.select_columns is not None:
            node = alg.Project(pattern, list(model.select_columns))
        else:
            node = alg.Project(pattern, None)  # SELECT *
        if model.distinct:
            node = alg.Distinct(node)
        if model.order_keys:
            node = alg.OrderBy(node, list(model.order_keys))
        if model.limit is not None or model.offset:
            node = alg.Slice(node, model.limit, model.offset or 0)
        return node

    def _compile_aggregation(self, aggregation: Aggregation) -> alg.Aggregate:
        function = _AGG_FUNCTIONS.get(aggregation.function)
        if function is None:
            raise CompilationError("unknown aggregate function %r"
                                   % aggregation.function)
        # Mirror Aggregation.call_sparql exactly: '*' iff src_column is
        # None, DISTINCT only for an explicit column.
        if aggregation.src_column is None:
            expression: Optional[Expression] = None
        else:
            expression = VarExpr(aggregation.src_column)
        return alg.Aggregate(function, expression, aggregation.alias,
                             aggregation.distinct and expression is not None)

    def _compile_having(self, model: QueryModel) -> Optional[Expression]:
        """HAVING over the aggregate *aliases* — the evaluator's Group
        operator exposes them, so no synthetic aggregate rewriting (the
        text round trip's alias-to-call substitution) is needed here."""
        if not model.having:
            return None
        condition = self._expression(model.having[0])
        for text in model.having[1:]:
            condition = AndExpr(condition, self._expression(text))
        return condition

    # ------------------------------------------------------------------
    # Graph pattern body (mirrors translator._render_pattern_body + the
    # parser's group-graph-pattern fold)
    # ------------------------------------------------------------------
    def _compile_body(self, model: QueryModel) -> alg.AlgebraNode:
        node: Optional[alg.AlgebraNode] = None
        if model.triples:
            node = alg.BGP([self._triple(t) for t in model.triples])
        by_graph: Dict[str, List] = {}
        for graph_uri, s, p, o in model.scoped_triples:
            by_graph.setdefault(graph_uri, []).append((s, p, o))
        for graph_uri, triples in by_graph.items():
            scoped = alg.GraphPattern(
                graph_uri, alg.BGP([self._triple(t) for t in triples]))
            node = self._join(node, scoped)
        for subquery in model.subqueries:
            node = self._join(node, self._compile_select(subquery))
        for block in model.optionals:
            node = alg.LeftJoin(node or alg.BGP([]),
                                self._compile_optional(block))
        for subquery in model.optional_subqueries:
            node = alg.LeftJoin(node or alg.BGP([]),
                                self._compile_select(subquery))
        if model.union_models:
            union: alg.AlgebraNode = self._compile_select(
                model.union_models[0])
            for member in model.union_models[1:]:
                union = alg.Union(union, self._compile_select(member))
            node = self._join(node, union)
        for expression in model.filters:
            node = alg.Filter(self._expression(expression),
                              node or alg.BGP([]))
        return node if node is not None else alg.BGP([])

    def _compile_optional(self, block: OptionalBlock) -> alg.AlgebraNode:
        node: Optional[alg.AlgebraNode] = None
        if block.triples:
            node = alg.BGP([self._triple(t) for t in block.triples])
        for subquery in block.subqueries:
            node = self._join(node, self._compile_select(subquery))
        for nested in block.optionals:
            node = alg.LeftJoin(node or alg.BGP([]),
                                self._compile_optional(nested))
        for expression in block.filters:
            node = alg.Filter(self._expression(expression),
                              node or alg.BGP([]))
        node = node if node is not None else alg.BGP([])
        if block.graph_uri is not None:
            node = alg.GraphPattern(block.graph_uri, node)
        return node

    @staticmethod
    def _join(left: Optional[alg.AlgebraNode],
              right: alg.AlgebraNode) -> alg.AlgebraNode:
        if left is None:
            return right
        if isinstance(left, alg.BGP) and isinstance(right, alg.BGP):
            # Same adjacent-BGP fusion the parser applies.
            return alg.BGP(left.triples + right.triples)
        return alg.Join(left, right)

    # ------------------------------------------------------------------
    # Term / expression fragments (memoized)
    # ------------------------------------------------------------------
    def _triple(self, triple):
        s, p, o = triple
        return (self._term(s), self._term(p), self._term(o))

    def _fragment_parser(self, text: str) -> Parser:
        parser = Parser(text)
        parser.prefixes = self.prefixes
        return parser

    def _term(self, text: str):
        term = self._term_cache.get(text)
        if term is None:
            try:
                parser = self._fragment_parser(text)
                term = parser._parse_term(position="query model")
                parser.expect("EOF")
            except (ParseError, ValueError) as exc:
                raise CompilationError(
                    "cannot compile model term %r: %s" % (text, exc))
            self._term_cache[text] = term
        return term

    def _expression(self, text: str) -> Expression:
        expression = self._expression_cache.get(text)
        if expression is None:
            try:
                parser = self._fragment_parser(text)
                expression = parser._parse_expression()
                parser.expect("EOF")
            except (ParseError, ValueError) as exc:
                raise CompilationError(
                    "cannot compile model expression %r: %s" % (text, exc))
            self._expression_cache[text] = expression
        return expression


def compile_model(model: QueryModel,
                  prefixes: Optional[Dict[str, str]] = None) -> alg.Query:
    """Compile a query model directly to an algebra :class:`~.algebra.Query`
    (no SPARQL text round trip)."""
    if not isinstance(model, QueryModel):
        raise CompilationError("expected a QueryModel, got %r" % (model,))
    return ModelCompiler(prefixes).compile(model)
