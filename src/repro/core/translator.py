"""Translation of a query model to SPARQL text.

Section 4.3 of the paper: "The query model is designed to make translation
to SPARQL as direct and simple as possible" — each component maps to the
corresponding construct, inner query models are rendered recursively with
subquery syntax, GRAPH blocks wrap patterns bound to specific graphs when
a query reads more than one graph, and the result is validated (we parse
the generated text with the engine's own SPARQL parser and check that the
projected variables match the model's visible columns).
"""

from __future__ import annotations

import re
from typing import List, Optional, Set

from ..rdf.namespaces import PrefixMap
from .query_model import Aggregation, OptionalBlock, QueryModel

INDENT = "    "

#: A prefixed-name prefix inside an expression string (quoted literals and
#: <...> IRIs are stripped before this runs, so ``"a:b"`` inside a string
#: literal never counts).
_EXPR_PNAME_RE = re.compile(r"(?<![\w?$])([A-Za-z_][\w.-]*):")
_STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')
_IRI_RE = re.compile(r"<[^<>\s]*>")


def rename_expression_alias(expression: str, alias: str,
                            replacement: str) -> str:
    """Replace ``?alias`` in an expression with an aggregate call."""
    return re.sub(r"\?%s\b" % re.escape(alias), replacement, expression)


class TranslationError(ValueError):
    """Raised when a query model cannot be rendered to valid SPARQL."""


def translate(model: QueryModel, validate: bool = True) -> str:
    """Render a query model as a complete SPARQL query string."""
    body = _render_query(model, depth=0, top_level=True)
    prefixes = _render_prefixes(model)
    query = prefixes + body
    if validate:
        _validate(query, model)
    return query


def _render_prefixes(model: QueryModel) -> str:
    """Emit PREFIX declarations for the prefixes the model's recorded
    terms and expressions actually use.

    Driven by the model's own components — not a substring scan of the
    rendered body, which could match text inside literals/IRIs and was
    O(prefixes x body size).
    """
    used = _collect_used_prefixes(model, set())
    prefix_map = PrefixMap(model.prefixes)
    lines = ["PREFIX %s: <%s>" % (prefix, base)
             for prefix, base in prefix_map.items() if prefix in used]
    return "\n".join(lines) + "\n" if lines else ""


def _term_prefix(term: str) -> Optional[str]:
    """The prefix of a prefixed-name term, else None (variables, <IRI>s,
    plain literals, numbers).  A typed literal's datatype may itself be a
    prefixed name (``'"2000"^^xsd:gYear'``) and counts as a use."""
    if not term:
        return None
    if term[0] in "\"'":
        # Only the ^^datatype of a quoted literal can reference a prefix.
        marker = term.rfind("^^")
        if marker == -1:
            return None
        datatype = term[marker + 2:]
        if datatype.startswith("<"):
            return None
        prefix, sep, _ = datatype.partition(":")
        return prefix if sep else None
    if term[0] in "?$<" or term[0].isdigit():
        return None
    prefix, sep, _ = term.partition(":")
    return prefix if sep else None


def _expression_prefixes(expression: str) -> Set[str]:
    """Prefixes referenced by a SPARQL expression string, ignoring
    anything inside string literals or <...> IRIs."""
    stripped = _IRI_RE.sub("<>", _STRING_RE.sub('""', expression))
    return set(_EXPR_PNAME_RE.findall(stripped))


def _collect_used_prefixes(model, used: Set[str]) -> Set[str]:
    """Walk a model (or optional block) and collect every prefix its
    recorded terms and expressions mention."""
    triples = list(getattr(model, "triples", ()))
    for scoped in getattr(model, "scoped_triples", ()):
        triples.append(scoped[1:])
    for triple in triples:
        for term in triple:
            prefix = _term_prefix(term)
            if prefix is not None:
                used.add(prefix)
    for expression in getattr(model, "filters", ()):
        used |= _expression_prefixes(expression)
    for expression in getattr(model, "having", ()):
        used |= _expression_prefixes(expression)
    for block in getattr(model, "optionals", ()):
        _collect_used_prefixes(block, used)
    nested = (list(getattr(model, "subqueries", ()))
              + list(getattr(model, "optional_subqueries", ()))
              + list(getattr(model, "union_models", ())))
    for subquery in nested:
        _collect_used_prefixes(subquery, used)
    return used


def _render_query(model: QueryModel, depth: int, top_level: bool = False) -> str:
    pad = INDENT * depth
    lines: List[str] = []
    lines.append(pad + "SELECT " + _render_select(model))
    if top_level:
        for graph in model.from_graphs:
            lines.append(pad + "FROM <%s>" % graph)
    lines.append(pad + "WHERE {")
    lines.extend(_render_pattern_body(model, depth + 1))
    lines.append(pad + "}")
    if model.group_columns:
        lines.append(pad + "GROUP BY " + " ".join(
            "?" + c for c in model.group_columns))
    if model.having:
        # Render HAVING against the aggregate calls themselves (the alias
        # is not in scope inside HAVING in standard SPARQL), as the paper's
        # generated queries do: HAVING ( COUNT(DISTINCT ?movie) >= 50 ).
        rendered = []
        for expression in model.having:
            for aggregation in model.aggregations:
                expression = rename_expression_alias(
                    expression, aggregation.alias, aggregation.call_sparql())
            rendered.append(expression)
        lines.append(pad + "HAVING ( %s )" % " && ".join(rendered))
    if model.order_keys:
        keys = " ".join("%s(?%s)" % (direction.upper(), column)
                        for column, direction in model.order_keys)
        lines.append(pad + "ORDER BY " + keys)
    if model.limit is not None:
        lines.append(pad + "LIMIT %d" % model.limit)
    if model.offset:
        lines.append(pad + "OFFSET %d" % model.offset)
    return "\n".join(lines)


def _render_select(model: QueryModel) -> str:
    parts: List[str] = []
    if model.is_grouped:
        parts.extend("?" + c for c in model.group_columns)
        parts.extend(a.to_sparql() for a in model.aggregations)
    elif model.select_columns is not None:
        parts.extend("?" + c for c in model.select_columns)
    prefix = "DISTINCT " if model.distinct else ""
    if not parts:
        return prefix + "*"
    return prefix + " ".join(parts)


def _render_pattern_body(model: QueryModel, depth: int) -> List[str]:
    pad = INDENT * depth
    lines: List[str] = []
    for s, p, o in model.triples:
        lines.append("%s%s %s %s ." % (pad, s, p, o))
    # GRAPH-scoped triples, grouped per graph.
    by_graph = {}
    for graph, s, p, o in model.scoped_triples:
        by_graph.setdefault(graph, []).append((s, p, o))
    for graph, triples in by_graph.items():
        lines.append("%sGRAPH <%s> {" % (pad, graph))
        for s, p, o in triples:
            lines.append("%s%s %s %s ." % (pad + INDENT, s, p, o))
        lines.append(pad + "}")
    for subquery in model.subqueries:
        lines.append(pad + "{")
        lines.append(_render_query(subquery, depth + 1))
        lines.append(pad + "}")
    for block in model.optionals:
        lines.extend(_render_optional(block, depth))
    for subquery in model.optional_subqueries:
        lines.append(pad + "OPTIONAL {")
        lines.append(_render_query(subquery, depth + 1))
        lines.append(pad + "}")
    if model.union_models:
        rendered = []
        for member in model.union_models:
            member_lines = [pad + "{", _render_query(member, depth + 1),
                            pad + "}"]
            rendered.append("\n".join(member_lines))
        lines.append(("\n%sUNION\n" % pad).join(rendered))
    for expression in model.filters:
        lines.append("%sFILTER ( %s )" % (pad, expression))
    return lines


def _render_optional(block: OptionalBlock, depth: int) -> List[str]:
    pad = INDENT * depth
    inner_pad = pad + INDENT
    lines = [pad + "OPTIONAL {"]
    body_depth = depth + 1
    if block.graph_uri is not None:
        lines.append("%sGRAPH <%s> {" % (inner_pad, block.graph_uri))
        body_depth += 1
        inner_pad += INDENT
    for s, p, o in block.triples:
        lines.append("%s%s %s %s ." % (inner_pad, s, p, o))
    for subquery in block.subqueries:
        lines.append(inner_pad + "{")
        lines.append(_render_query(subquery, body_depth + 1))
        lines.append(inner_pad + "}")
    for nested in block.optionals:
        lines.extend(_render_optional(nested, body_depth))
    for expression in block.filters:
        lines.append("%sFILTER ( %s )" % (inner_pad, expression))
    if block.graph_uri is not None:
        lines.append(pad + INDENT + "}")
    lines.append(pad + "}")
    return lines


def _validate(query: str, model: QueryModel) -> None:
    """Parse the generated text with the engine's parser (syntax check) and
    verify the projection matches the model's visible columns."""
    from ..sparql.parser import ParseError, parse

    try:
        parsed = parse(query)
    except ParseError as exc:
        raise TranslationError(
            "generated SPARQL failed to parse: %s\n%s" % (exc, query))
    expected = model.visible_columns()
    if model.select_columns is not None or model.is_grouped:
        from ..sparql import algebra as alg

        node = parsed.pattern
        while isinstance(node, (alg.Distinct, alg.Slice, alg.OrderBy)):
            node = node.pattern
        if isinstance(node, alg.Project):
            node = node.pattern  # check the pattern below the projection
        produced = node.in_scope()
        missing = [c for c in expected if c not in produced]
        if missing:
            raise TranslationError(
                "generated query does not bind expected columns %s\n%s"
                % (missing, query))
