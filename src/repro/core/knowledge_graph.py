"""The KnowledgeGraph entry point: seed and exploration operators.

A :class:`KnowledgeGraph` names an RDF graph (by URI) and carries the
prefix bindings used to resolve the user's prefixed names.  Its methods are
the paper's *initialization* operators — every RDFFrame pipeline starts
with one of them — plus the *exploration* operators used to discover the
classes, predicates, and data distributions of an unfamiliar graph
(Section 3.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .operators import SeedOperator
from .rdfframe import RDFFrame


class KnowledgeGraph:
    """A handle to one named RDF graph.

    Parameters
    ----------
    graph_uri:
        The graph's URI (used in the generated query's FROM clause);
        ``None`` queries the endpoint's default graph.
    prefixes:
        Extra prefix bindings (merged over the common vocabularies).
    """

    def __init__(self, graph_uri: Optional[str] = None,
                 prefixes: Optional[Dict[str, str]] = None):
        self.graph_uri = graph_uri
        self.prefixes = dict(prefixes or {})

    def __repr__(self):
        return "KnowledgeGraph(%r)" % self.graph_uri

    # ------------------------------------------------------------------
    # Seed operators
    # ------------------------------------------------------------------
    def seed(self, subject: str, predicate: str, obj: str) -> RDFFrame:
        """The generic seed: an RDFFrame from one triple pattern.

        Arguments containing ``:`` (or wrapped in ``<>``/quotes) are
        concrete terms; bare names become columns.

        Example
        -------
        >>> from repro.core import KnowledgeGraph
        >>> graph = KnowledgeGraph(graph_uri="http://dbpedia.org")
        >>> frame = graph.seed("instance", "rdf:type", "dbpo:Film")
        >>> frame.columns   # one column: all film instances
        ['instance']
        """
        columns = [name for name in (subject, predicate, obj)
                   if _is_column(name)]
        if not columns:
            raise ValueError("seed needs at least one column position")
        operator = SeedOperator(subject, predicate, obj, columns)
        return RDFFrame(self, (operator,), tuple(columns))

    def feature_domain_range(self, predicate: str, domain_col: str,
                             range_col: str) -> RDFFrame:
        """All (subject, object) pairs connected by ``predicate``.

        When ``predicate`` itself is a bare name, it becomes a column too
        (useful for whole-graph extraction, as in the KG-embedding case
        study's ``feature_domain_range(s, p, o)``).

        Example
        -------
        The paper's running example:

        >>> from repro.core import KnowledgeGraph
        >>> graph = KnowledgeGraph(graph_uri="http://dbpedia.org")
        >>> movies = graph.feature_domain_range("dbpp:starring",
        ...                                     "movie", "actor")
        >>> movies.columns
        ['movie', 'actor']
        """
        return self.seed(domain_col, predicate, range_col)

    def entities(self, class_name: str, new_column: str) -> RDFFrame:
        """All instances of an RDFS/OWL class.

        Example
        -------
        >>> from repro.core import KnowledgeGraph
        >>> graph = KnowledgeGraph(graph_uri="http://dblp.l3s.de")
        >>> papers = graph.entities("swrc:InProceedings", "paper")
        >>> papers.columns
        ['paper']
        """
        return self.seed(new_column, "rdf:type", class_name)

    def features(self, class_name: str, instance_col: str = "instance",
                 feature_col: str = "feature") -> RDFFrame:
        """Instances of a class together with the predicates (features)
        defined on them — an exploration aid for heterogeneous graphs.

        Uses a variable-predicate expand: the generated pattern is
        ``?instance ?feature ?value``."""
        frame = self.entities(class_name, instance_col)
        return frame.expand(instance_col,
                            [("?" + feature_col, feature_col + "_value")])

    # ------------------------------------------------------------------
    # Exploration operators
    # ------------------------------------------------------------------
    def classes_and_freq(self, class_col: str = "class",
                         count_col: str = "frequency") -> RDFFrame:
        """Every ``rdf:type`` class with its instance count — the paper's
        exploration operator for identifying entity types."""
        instances = self.seed("instance", "rdf:type", class_col)
        return instances.group_by([class_col]).count("instance", count_col)

    def predicates_and_freq(self, predicate_col: str = "predicate",
                            count_col: str = "frequency") -> RDFFrame:
        """Every predicate with its triple count (data distribution view)."""
        triples = self.seed("subject", predicate_col, "object")
        return triples.group_by([predicate_col]).count("subject", count_col)

    def num_entities(self, class_name: str,
                     count_col: str = "count") -> RDFFrame:
        """The number of instances of one class."""
        return self.entities(class_name, "instance") \
            .count("instance", count_col, unique=True)

    def search(self, keyword: str, entity_col: str = "entity",
               label_col: str = "label",
               predicate: str = "rdfs:label",
               case_insensitive: bool = True) -> RDFFrame:
        """Keyword search over entity labels.

        The paper lists "expanding the exploration operators ... to include
        keyword searches" as future work; this implements it as a regex
        filter over a label predicate::

            graph.search('drama')   # entities whose rdfs:label matches

        Returns a frame with ``entity_col`` and ``label_col`` columns.
        """
        escaped = _escape_regex(keyword)
        flags = ', "i"' if case_insensitive else ""
        condition = 'regex(str(?%s), "%s"%s)' % (label_col, escaped, flags)
        return self.seed(entity_col, predicate, label_col) \
            .filter({label_col: [condition]})


def _escape_regex(keyword: str) -> str:
    """Escape a keyword for embedding in a SPARQL regex string literal."""
    special = "\\.^$*+?()[]{}|"
    escaped = []
    for char in keyword:
        if char in special:
            escaped.append("\\\\" + char)
        elif char == '"':
            escaped.append('\\"')
        else:
            escaped.append(char)
    return "".join(escaped)


def _is_column(name: str) -> bool:
    name = str(name).strip()
    return not (":" in name or name.startswith("<") or name.startswith('"')
                or name.startswith("?"))
