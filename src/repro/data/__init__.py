"""Deterministic synthetic knowledge-graph generators (the public-KG stand-ins)."""

from .dbpedia import DBPEDIA_URI, generate_dbpedia
from .dblp import DBLP_URI, TOPICS, generate_dblp
from .yago import YAGO_URI, generate_yago
from .loader import GRAPH_URIS, build_dataset, clear_cache

__all__ = [
    "generate_dbpedia", "generate_dblp", "generate_yago",
    "build_dataset", "clear_cache",
    "DBPEDIA_URI", "DBLP_URI", "YAGO_URI", "GRAPH_URIS", "TOPICS",
]
