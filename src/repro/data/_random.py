"""Deterministic randomness helpers for the synthetic graph generators.

All generators are seeded so every run (and therefore every benchmark and
test) sees the identical graph.  Zipf sampling gives the skewed data
distributions the paper notes are typical of real knowledge graphs.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class Rng:
    """A thin wrapper over :class:`random.Random` with Zipf helpers."""

    def __init__(self, seed: int):
        self._random = random.Random(seed)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def choice(self, items: Sequence[T]) -> T:
        return self._random.choice(items)

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        k = min(k, len(items))
        return self._random.sample(items, k)

    def shuffle(self, items: list) -> None:
        self._random.shuffle(items)

    def zipf_index(self, n: int, exponent: float = 1.1) -> int:
        """A Zipf-distributed index in ``[0, n)`` (0 is the most popular)."""
        # Inverse-CDF sampling over the truncated Zipf distribution.
        weights = self._zipf_weights(n, exponent)
        target = self._random.random() * weights[-1]
        low, high = 0, n - 1
        while low < high:
            mid = (low + high) // 2
            if weights[mid] < target:
                low = mid + 1
            else:
                high = mid
        return low

    _weights_cache: dict = {}

    def _zipf_weights(self, n: int, exponent: float) -> List[float]:
        key = (n, exponent)
        cached = Rng._weights_cache.get(key)
        if cached is None:
            total = 0.0
            cumulative = []
            for rank in range(1, n + 1):
                total += 1.0 / rank ** exponent
                cumulative.append(total)
            cached = cumulative
            Rng._weights_cache[key] = cached
        return cached

    def zipf_choice(self, items: Sequence[T], exponent: float = 1.1) -> T:
        return items[self.zipf_index(len(items), exponent)]

    def poissonish(self, mean: float) -> int:
        """A cheap non-negative integer with the given mean (geometric-ish)."""
        count = 0
        threshold = mean / (mean + 1.0)
        while self._random.random() < threshold and count < mean * 10 + 20:
            count += 1
        return count
