"""A YAGO3-like synthetic knowledge graph.

Q4 and Q11 of the synthetic workload join DBpedia with YAGO3: "RDF
knowledge graphs ... links between graphs are created by using the URIs
from one graph in the other."  This generator therefore *shares a subset of
DBpedia's actor URIs*: some actors exist in both graphs (Q4's
intersection), some only in YAGO (Q11's union picks them up).
"""

from __future__ import annotations

from ..rdf.graph import Graph
from ..rdf.namespaces import DBPR, RDF, RDFS, YAGO
from ..rdf.terms import Literal
from ._random import Rng

YAGO_URI = "http://yago-knowledge.org"


def generate_yago(scale: float = 1.0, seed: int = 13,
                  shared_actor_count: int = None,
                  dbpedia_actor_count: int = None) -> Graph:
    """Build the YAGO-like graph.

    ``dbpedia_actor_count`` should match the DBpedia generator's actor
    count at the same scale so shared URIs actually overlap.
    """
    rng = Rng(seed)
    graph = Graph(YAGO_URI)
    if dbpedia_actor_count is None:
        dbpedia_actor_count = max(60, int(1200 * scale))
    if shared_actor_count is None:
        shared_actor_count = max(20, dbpedia_actor_count // 2)

    n_yago_only = max(30, int(500 * scale))
    n_movies = max(80, int(1500 * scale))

    # Actors shared with DBpedia (same URIs -> cross-graph joins work).
    shared = [DBPR["Actor_%d" % i] for i in range(shared_actor_count)]
    yago_only = [YAGO["YagoActor_%d" % i] for i in range(n_yago_only)]
    actors = shared + yago_only

    for actor in actors:
        graph.add(actor, RDF.type, YAGO.Actor)
        graph.add(actor, RDFS.label,
                  Literal("Yago label %s" % str(actor).rsplit("/", 1)[-1]))
        if rng.random() < 0.5:
            graph.add(actor, YAGO.wasBornIn, YAGO[rng.choice(
                ["United_States", "France", "India", "Japan", "Germany"])])

    for index in range(n_movies):
        movie = YAGO["YagoMovie_%d" % index]
        graph.add(movie, RDF.type, YAGO.Movie)
        for actor in {rng.zipf_choice(actors) for _ in range(1 + rng.randint(0, 2))}:
            graph.add(actor, YAGO.actedIn, movie)
    return graph
