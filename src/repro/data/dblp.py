"""A DBLP-like synthetic bibliographic knowledge graph.

The topic-modeling case study needs the DBLP predicates
``rdf:type swrc:InProceedings``, ``dc:creator``, ``dcterm:issued``,
``swrc:series``, and ``dc:title``.  This generator produces a paper/author
graph in that schema with:

* a core of "thought leader" authors who publish heavily in SIGMOD and
  VLDB (so the paper's >= 20-papers filter selects a stable non-empty set),
* a long tail of occasional authors,
* titles composed from latent topic vocabularies, so the downstream
  truncated-SVD topic model in the case study has real structure to find.
"""

from __future__ import annotations

from typing import List

from ..rdf.graph import Graph
from ..rdf.namespaces import DBLPRC, DC, DCTERMS, RDF, SWRC
from ..rdf.terms import Literal, URIRef
from ._random import Rng

DBLP_URI = "http://dblp.l3s.de"

CONFERENCES = ["sigmod", "vldb", "icde", "kdd", "www", "cikm", "edbt"]

#: Latent research topics: the case study's SVD should recover these.
TOPICS = {
    "query": "query optimization sparql execution plans cost cardinality "
             "estimation join ordering engine".split(),
    "ml": "machine learning model training feature deep neural embedding "
          "prediction inference".split(),
    "graph": "graph knowledge traversal pattern matching rdf triple "
             "subgraph reachability path".split(),
    "stream": "stream window continuous event processing realtime "
              "incremental latency throughput".split(),
    "storage": "storage index compression column layout cache memory disk "
               "log btree".split(),
    "privacy": "privacy differential secure encryption anonymization "
               "federated audit access".split(),
}
TOPIC_NAMES = sorted(TOPICS)


def generate_dblp(scale: float = 1.0, seed: int = 7) -> Graph:
    """Build the DBLP-like graph.  ``scale=1.0`` is ~60-80k triples."""
    rng = Rng(seed)
    graph = Graph(DBLP_URI)

    n_core_authors = max(10, int(40 * scale))
    n_tail_authors = max(100, int(2000 * scale))
    n_papers = max(400, int(9000 * scale))

    core = [URIRef("http://dblp.l3s.de/d2r/resource/authors/CoreAuthor_%d" % i)
            for i in range(n_core_authors)]
    tail = [URIRef("http://dblp.l3s.de/d2r/resource/authors/Author_%d" % i)
            for i in range(n_tail_authors)]

    for index in range(n_papers):
        paper = URIRef("http://dblp.l3s.de/d2r/resource/papers/Paper_%d" % index)
        graph.add(paper, RDF.type, SWRC.InProceedings)

        # Core authors dominate SIGMOD/VLDB; the tail spreads everywhere.
        # Plain lists, not sets: core/tail URIs never collide (disjoint
        # name spaces, sampling is without replacement) and set iteration
        # order would vary with PYTHONHASHSEED, making triple insertion
        # order — and every downstream row order — nondeterministic.
        if rng.random() < 0.35:
            conference = rng.choice(["sigmod", "vldb"])
            n_core = 1 + rng.randint(0, 2)
            creators = rng.sample(core, n_core)
            creators.extend(rng.sample(tail, rng.randint(0, 2)))
        else:
            conference = rng.choice(CONFERENCES)
            creators = rng.sample(tail, 1 + rng.randint(0, 3))
            if rng.random() < 0.10:
                creators.append(rng.choice(core))
        for creator in creators:
            graph.add(paper, DC.creator, creator)

        graph.add(paper, SWRC.series, DBLPRC[conference])
        year = 1995 + rng.zipf_index(25, exponent=0.6)  # skew to recent-ish
        year = 1995 + (2019 - year) % 25  # fold into [1995, 2019]
        graph.add(paper, DCTERMS.issued,
                  Literal("%04d-%02d-%02d" % (year, 1 + rng.randint(0, 11),
                                              1 + rng.randint(0, 27))))
        graph.add(paper, DC.title, Literal(_make_title(rng)))
    return graph


def _make_title(rng: Rng) -> str:
    """A paper title drawn mostly from one latent topic's vocabulary."""
    topic = rng.choice(TOPIC_NAMES)
    words = list(TOPICS[topic])
    n_words = 4 + rng.randint(0, 4)
    chosen = [rng.choice(words) for _ in range(n_words)]
    if rng.random() < 0.3:  # cross-topic noise
        other = rng.choice(TOPIC_NAMES)
        chosen.append(rng.choice(TOPICS[other]))
    chosen[0] = chosen[0].capitalize()
    return " ".join(chosen)
