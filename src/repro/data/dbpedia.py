"""A DBpedia-like synthetic knowledge graph.

The real evaluation uses the English DBpedia (~1B triples).  This generator
produces a schema-faithful, skewed, heterogeneous movie/person graph at
simulator scale, covering every predicate the paper's case studies and the
Q1-Q15 synthetic workload touch:

* films with ``dbpp:starring`` (Zipf-skewed actor popularity, so "prolific
  actor" thresholds behave like the paper's), ``rdfs:label``,
  ``dcterms:subject``, ``dbpp:country``, ``dbpo:genre`` (optional),
  ``dbpp:director``, ``dbpp:producer`` (optional), ``dbpo:language``,
  ``dbpp:studio``, ``dbpo:runtime``, ``dbpo:story``,
* actors with ``dbpp:birthPlace``, ``rdfs:label``, ``dbpo:birthDate``,
  plus a symmetric ``dbpp:collaborator`` graph (planted dense ensembles
  and a Zipf organic layer) for the clique-shaped join corpus,
* basketball players/teams (Q1-Q3, Q6-Q7), athletes (Q10, Q12),
* books and authors (Q15).

Multi-valued predicates are only those that are naturally multi-valued in
DBpedia (``dbpp:starring``); per-entity attributes are single-valued so
that bag-semantics comparisons across execution strategies are exact.
"""

from __future__ import annotations

from typing import List

from ..rdf.graph import Graph
from ..rdf.namespaces import DBPO, DBPP, DBPR, DCTERMS, RDF, RDFS
from ..rdf.terms import Literal, URIRef
from ._random import Rng

DBPEDIA_URI = "http://dbpedia.org"

COUNTRIES = ["United_States", "India", "France", "Italy", "Japan",
             "Germany", "Brazil", "Canada", "Spain", "Egypt"]
LANGUAGES = ["English", "Hindi", "French", "Italian", "Japanese",
             "German", "Portuguese", "Spanish", "Arabic"]
GENRES = ["Film_score", "Soundtrack", "Rock_music", "House_music",
          "Dubstep", "Drama", "Comedy", "Action", "Documentary",
          "Thriller", "Romance", "Horror"]
STUDIOS = ["Eskay_Movies", "Warner_Bros", "Paramount", "Yash_Raj_Films",
           "Universal", "Gaumont", "Toho", "UFA", "Studio_Babelsberg"]
STUDIO_COUNTRY = {
    "Eskay_Movies": "India", "Warner_Bros": "United_States",
    "Paramount": "United_States", "Yash_Raj_Films": "India",
    "Universal": "United_States", "Gaumont": "France", "Toho": "Japan",
    "UFA": "Germany", "Studio_Babelsberg": "Germany",
}
SUBJECTS = ["American_films", "Indian_films", "French_films",
            "1990s_films", "2000s_films", "2010s_films",
            "Black-and-white_films", "Independent_films"]
SPONSORS = ["AirFly", "MegaCola", "TechCorp", "AutoWorks", "BankOne"]
EDUCATIONS = ["Harvard_University", "Yale_University", "Oxford_University",
              "Cairo_University", "University_of_Tokyo"]
PUBLISHERS = ["Penguin", "HarperCollins", "Random_House", "Macmillan"]

_WORDS = ("dark silent golden lost broken rising hidden eternal savage "
          "midnight crimson frozen burning whispering forgotten iron glass "
          "velvet thunder shadow").split()


def _label(rng: Rng, index: int) -> str:
    return "%s %s %d" % (rng.choice(_WORDS).capitalize(),
                         rng.choice(_WORDS), index)


def generate_dbpedia(scale: float = 1.0, seed: int = 42) -> Graph:
    """Build the DBpedia-like graph.  ``scale=1.0`` is ~100-130k triples."""
    rng = Rng(seed)
    graph = Graph(DBPEDIA_URI)

    n_actors = max(60, int(1200 * scale))
    n_films = max(150, int(3000 * scale))
    n_players = max(40, int(800 * scale))
    n_teams = max(8, int(40 * scale))
    n_athletes = max(50, int(1000 * scale))
    n_authors = max(20, int(250 * scale))
    n_books = max(60, int(900 * scale))

    actors = _generate_actors(graph, rng, n_actors)
    _generate_films(graph, rng, n_films, actors)
    teams = _generate_teams(graph, rng, n_teams)
    _generate_players(graph, rng, n_players, teams)
    _generate_athletes(graph, rng, n_athletes, teams)
    authors = _generate_authors(graph, rng, n_authors)
    _generate_books(graph, rng, n_books, authors)
    # A fresh stream keeps every draw above byte-identical to earlier
    # versions of the generator: collaborations only append new triples.
    _generate_collaborations(graph, Rng(seed + 101), actors)
    return graph


# ----------------------------------------------------------------------
def _generate_actors(graph: Graph, rng: Rng, count: int) -> List[URIRef]:
    actors = []
    for index in range(count):
        actor = DBPR["Actor_%d" % index]
        actors.append(actor)
        graph.add(actor, RDF.type, DBPO.Actor)
        # Skew nationality: ~40% American so USA filters select a large,
        # realistic slice (DBpedia is US-heavy).
        country = ("United_States" if rng.random() < 0.4
                   else rng.choice(COUNTRIES[1:]))
        graph.add(actor, DBPP.birthPlace, DBPR[country])
        graph.add(actor, RDFS.label, Literal("Actor %s" % _label(rng, index)))
        year = 1930 + rng.randint(0, 70)
        graph.add(actor, DBPO.birthDate,
                  Literal("%04d-%02d-%02d" % (year, rng.randint(1, 12),
                                              rng.randint(1, 28))))
    return actors


def _generate_films(graph: Graph, rng: Rng, count: int,
                    actors: List[URIRef]) -> None:
    for index in range(count):
        film = DBPR["Film_%d" % index]
        graph.add(film, RDF.type, DBPO.Film)
        # Zipf-skewed casting: a few actors star in very many films, the
        # long tail in few — this is what makes "prolific actor" thresholds
        # meaningful.
        cast_size = 1 + rng.poissonish(2.0)
        # Dedupe preserving draw order: a set here would iterate in
        # term-hash order, making triple insertion (and therefore id
        # assignment and every downstream row order) vary with
        # PYTHONHASHSEED.
        cast: List[URIRef] = []
        for _ in range(cast_size):
            actor = rng.zipf_choice(actors)
            if actor not in cast:
                cast.append(actor)
        for actor in cast:
            graph.add(film, DBPP.starring, actor)
        graph.add(film, RDFS.label, Literal("Film %s" % _label(rng, index)))
        graph.add(film, DCTERMS.subject, DBPR[rng.choice(SUBJECTS)])
        studio = rng.choice(STUDIOS)
        graph.add(film, DBPP.studio, DBPR[studio])
        graph.add(film, DBPP.country, DBPR[STUDIO_COUNTRY[studio]])
        graph.add(film, DBPO.language, DBPR[rng.choice(LANGUAGES)])
        graph.add(film, DBPP.director, DBPR["Director_%d" % rng.randint(
            0, max(1, count // 10))])
        if rng.random() < 0.7:  # producer is optional in DBpedia
            graph.add(film, DBPP.producer, DBPR["Producer_%d" % rng.randint(
                0, max(1, count // 15))])
        if rng.random() < 0.6:  # genre is optional (the paper's example)
            graph.add(film, DBPO.genre, DBPR[rng.choice(GENRES)])
        graph.add(film, DBPO.story, DBPR["Story_%d" % index])
        graph.add(film, DBPO.runtime, Literal(60 + rng.randint(0, 120)))


def _generate_teams(graph: Graph, rng: Rng, count: int) -> List[URIRef]:
    teams = []
    for index in range(count):
        team = DBPR["BasketballTeam_%d" % index]
        teams.append(team)
        graph.add(team, RDF.type, DBPO.BasketballTeam)
        graph.add(team, DBPP.name, Literal("Team %s" % _label(rng, index)))
        if rng.random() < 0.7:  # sponsor optional
            graph.add(team, DBPO.sponsor, DBPR[rng.choice(SPONSORS)])
        if rng.random() < 0.8:  # president optional
            graph.add(team, DBPP.president, DBPR["President_%d" % index])
    return teams


def _generate_players(graph: Graph, rng: Rng, count: int,
                      teams: List[URIRef]) -> None:
    for index in range(count):
        player = DBPR["BasketballPlayer_%d" % index]
        graph.add(player, RDF.type, DBPO.BasketballPlayer)
        graph.add(player, DBPP.nationality, DBPR[rng.choice(COUNTRIES)])
        graph.add(player, DBPP.birthPlace, DBPR[rng.choice(COUNTRIES)])
        year = 1970 + rng.randint(0, 35)
        graph.add(player, DBPO.birthDate,
                  Literal("%04d-%02d-%02d" % (year, rng.randint(1, 12),
                                              rng.randint(1, 28))))
        graph.add(player, DBPP.team, rng.zipf_choice(teams, exponent=0.8))


def _generate_athletes(graph: Graph, rng: Rng, count: int,
                       teams: List[URIRef]) -> None:
    for index in range(count):
        athlete = DBPR["Athlete_%d" % index]
        graph.add(athlete, RDF.type, DBPO.Athlete)
        # Zipf-skewed birth places so Q10's per-place counts are skewed.
        graph.add(athlete, DBPP.birthPlace,
                  DBPR[COUNTRIES[rng.zipf_index(len(COUNTRIES))]])
        graph.add(athlete, DBPP.team, rng.zipf_choice(teams, exponent=0.8))


def _generate_collaborations(graph: Graph, rng: Rng,
                             actors: List[URIRef]) -> None:
    """Symmetric ``dbpp:collaborator`` edges between actors.

    Planted dense ensembles (every pair within a small group linked both
    ways) guarantee the clique-shaped join corpus queries have matches at
    any scale; the plants sit in the mid-tail of the actor range so they
    stay disjoint from the organic hubs.  The organic layer pairs a
    Zipf-popular *hub* with a uniform partner, giving the heavy-tailed
    degree distribution of real co-author/co-star graphs: hub degrees
    grow linearly with the actor count while typical degrees stay small.
    That skew is what the cyclic join corpus measures — pattern-at-a-time
    plans enumerate every two-hop wedge through a hub (quadratic in hub
    degree) before the closing edge can reject, while a generic join's
    per-level intersection is seeded from the *smallest* incident
    adjacency run, so hubs cost it nothing.
    """
    ensemble_size = 6
    n_ensembles = max(2, len(actors) // 150)
    base = len(actors) // 3
    for k in range(n_ensembles):
        start = base + k * ensemble_size
        members = actors[start:start + ensemble_size]
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                graph.add(a, DBPP.collaborator, b)
                graph.add(b, DBPP.collaborator, a)
    for _ in range(len(actors) * 4):
        a = rng.zipf_choice(actors)
        b = rng.choice(actors)
        if a is not b:
            graph.add(a, DBPP.collaborator, b)
            graph.add(b, DBPP.collaborator, a)


def _generate_authors(graph: Graph, rng: Rng, count: int) -> List[URIRef]:
    authors = []
    for index in range(count):
        author = DBPR["Author_%d" % index]
        authors.append(author)
        graph.add(author, RDF.type, DBPO.Writer)
        country = ("United_States" if rng.random() < 0.45
                   else rng.choice(COUNTRIES[1:]))
        graph.add(author, DBPP.birthPlace, DBPR[country])
        graph.add(author, DBPP.country, DBPR[country])
        graph.add(author, DBPP.education, DBPR[rng.choice(EDUCATIONS)])
        graph.add(author, RDFS.label, Literal("Author %s" % _label(rng, index)))
    return authors


def _generate_books(graph: Graph, rng: Rng, count: int,
                    authors: List[URIRef]) -> None:
    for index in range(count):
        book = DBPR["Book_%d" % index]
        graph.add(book, RDF.type, DBPO.Book)
        graph.add(book, DBPO.author, rng.zipf_choice(authors))
        graph.add(book, DBPP.title, Literal("Book %s" % _label(rng, index)))
        graph.add(book, DCTERMS.subject, DBPR[rng.choice(SUBJECTS)])
        if rng.random() < 0.7:
            graph.add(book, DBPP.country, DBPR[rng.choice(COUNTRIES)])
        if rng.random() < 0.6:
            graph.add(book, DBPO.publisher, DBPR[rng.choice(PUBLISHERS)])
