"""Dataset assembly and caching for tests, examples, and benchmarks.

``build_dataset(scale)`` returns a :class:`~repro.rdf.Dataset` holding the
three synthetic graphs under their canonical URIs.  Results are cached per
``(scale, seeds)`` so the many benchmark fixtures share one build.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..rdf.dataset import Dataset
from .dbpedia import DBPEDIA_URI, generate_dbpedia
from .dblp import DBLP_URI, generate_dblp
from .yago import YAGO_URI, generate_yago

_CACHE: Dict[Tuple, Dataset] = {}


def build_dataset(scale: float = 1.0, seed: int = 42,
                  include_yago: bool = True,
                  use_cache: bool = True) -> Dataset:
    """Build (or fetch from cache) the full synthetic dataset."""
    key = (round(scale, 6), seed, include_yago)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    dataset = Dataset()
    dataset.add_graph(generate_dbpedia(scale=scale, seed=seed))
    dataset.add_graph(generate_dblp(scale=scale, seed=seed + 1))
    if include_yago:
        dataset.add_graph(generate_yago(scale=scale, seed=seed + 2))
    if use_cache:
        _CACHE[key] = dataset
    return dataset


def clear_cache() -> None:
    _CACHE.clear()


GRAPH_URIS = {
    "dbpedia": DBPEDIA_URI,
    "dblp": DBLP_URI,
    "yago": YAGO_URI,
}
