"""N-Triples parsing and serialization.

The ``rdflib + pandas`` baseline in the paper loads N-Triples dumps and scans
them in Python.  This module provides the equivalent substrate: a strict
line-oriented N-Triples parser and serializer.
"""

from __future__ import annotations

import gzip
import io
import os
import re
from typing import Iterable, Iterator, TextIO, Tuple, Union

from .graph import Graph
from .terms import BlankNode, Literal, Node, Triple, URIRef

_IRI = r"<([^<>\"{}|^`\\\x00-\x20]*)>"
_BNODE = r"_:([A-Za-z0-9][A-Za-z0-9_.-]*)"
_LITERAL = r'"((?:[^"\\]|\\.)*)"(?:\^\^<([^<>]*)>|@([A-Za-z][A-Za-z0-9-]*))?'

_SUBJECT = re.compile(r"\s*(?:%s|%s)" % (_IRI, _BNODE))
_PREDICATE = re.compile(r"\s*%s" % _IRI)
_OBJECT = re.compile(r"\s*(?:%s|%s|%s)" % (_IRI, _BNODE, _LITERAL))
_END = re.compile(r"\s*\.\s*(#.*)?$")

_ESCAPES = {
    "\\t": "\t", "\\n": "\n", "\\r": "\r",
    '\\"': '"', "\\\\": "\\",
}
_ESCAPE_RE = re.compile(r'\\[tnr"\\]|\\u[0-9A-Fa-f]{4}|\\U[0-9A-Fa-f]{8}')


class NTriplesError(ValueError):
    """Raised on malformed N-Triples input."""

    def __init__(self, message: str, line_number: int, line: str):
        super().__init__("line %d: %s: %r" % (line_number, message, line[:120]))
        self.line_number = line_number
        self.line = line


def _unescape(text: str) -> str:
    def repl(match):
        token = match.group(0)
        if token in _ESCAPES:
            return _ESCAPES[token]
        return chr(int(token[2:], 16))
    return _ESCAPE_RE.sub(repl, text)


def parse_line(line: str, line_number: int = 0) -> Triple:
    """Parse one N-Triples statement into a triple."""
    match = _SUBJECT.match(line)
    if not match:
        raise NTriplesError("expected subject", line_number, line)
    subject: Node = (URIRef(match.group(1)) if match.group(1) is not None
                     else BlankNode(match.group(2)))
    pos = match.end()

    match = _PREDICATE.match(line, pos)
    if not match:
        raise NTriplesError("expected predicate IRI", line_number, line)
    predicate = URIRef(match.group(1))
    pos = match.end()

    match = _OBJECT.match(line, pos)
    if not match:
        raise NTriplesError("expected object", line_number, line)
    iri, bnode, lit, datatype, language = match.groups()
    if iri is not None:
        obj: Node = URIRef(iri)
    elif bnode is not None:
        obj = BlankNode(bnode)
    else:
        obj = Literal(_unescape(lit), datatype=datatype, language=language)
    pos = match.end()

    if not _END.match(line, pos):
        raise NTriplesError("expected terminating '.'", line_number, line)
    return (subject, predicate, obj)


def parse(source: Union[str, TextIO]) -> Iterator[Triple]:
    """Yield triples from an N-Triples document (string or file object)."""
    stream = io.StringIO(source) if isinstance(source, str) else source
    for line_number, line in enumerate(stream, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield parse_line(stripped, line_number)


def _open_source(source: Union[str, TextIO]):
    """Resolve a loader source to ``(line iterable, closer)``.

    A string naming an existing file (no newline in it, so document text
    can never be mistaken for a path) is opened from disk — gzip
    transparently, sniffed from the two magic bytes rather than the file
    name.  Anything else keeps the historical contract: strings are
    document text, file objects are streamed as-is.
    """
    if isinstance(source, str):
        if "\n" not in source and os.path.isfile(source):
            with open(source, "rb") as probe:
                magic = probe.read(2)
            if magic == b"\x1f\x8b":
                fobj = gzip.open(source, "rt", encoding="utf-8")
            else:
                fobj = open(source, "r", encoding="utf-8")
            return fobj, fobj
        return io.StringIO(source), None
    return source, None


def parse_into_graph(source: Union[str, TextIO], graph: Graph,
                     strict: bool = True) -> Union[int, Tuple[int, int]]:
    """Stream a document into a graph; returns the number of new triples.

    ``source`` may be document text, an open text stream, or a *path* to
    an N-Triples file (``.nt`` or gzipped, sniffed by magic bytes) —
    dumps are streamed line by line, never materialized.  Terms are
    encoded through the graph's dictionary and inserted with ``add_ids``
    directly, skipping per-triple term re-dispatch on the bulk path.

    With ``strict=False`` malformed lines are counted instead of fatal
    and the return value becomes a ``(triples_added,
    parse_errors_skipped)`` tuple — a 10M-line crawl dump with one bad
    line loads 10M-1 triples instead of dying at the bad one.
    """
    stream, closer = _open_source(source)
    encode = graph.dictionary.encode
    add_ids = graph.add_ids
    added = 0
    skipped = 0
    try:
        for line_number, line in enumerate(stream, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                s, p, o = parse_line(stripped, line_number)
            except NTriplesError:
                if strict:
                    raise
                skipped += 1
                continue
            if add_ids(encode(s), encode(p), encode(o)):
                added += 1
    finally:
        if closer is not None:
            closer.close()
    if strict:
        return added
    return added, skipped


def serialize_triple(triple: Triple) -> str:
    s, p, o = triple
    return "%s %s %s ." % (s.n3(), p.n3(), o.n3())


def serialize(triples: Iterable[Triple]) -> str:
    """Serialize triples to an N-Triples document string."""
    return "\n".join(serialize_triple(t) for t in triples) + "\n"


def write(triples: Iterable[Triple], stream: TextIO) -> int:
    """Write triples to a text stream; returns the count written."""
    count = 0
    for t in triples:
        stream.write(serialize_triple(t))
        stream.write("\n")
        count += 1
    return count
