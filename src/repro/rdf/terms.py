"""RDF term types: URIs, literals, blank nodes, variables, and triples.

This module implements the RDF data model from Section 5.1 of the paper:
an RDF triple is ``(s, p, o)`` in ``(I U B) x I x (I U B U L)`` where ``I``
is the set of URIs, ``B`` blank nodes, and ``L`` literals.  SPARQL variables
are included here because triple *patterns* share the same structure with
variables allowed in any position.

All terms are immutable, hashable value objects so they can be used as
dictionary keys in the graph indexes and in solution mappings.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

XSD = "http://www.w3.org/2001/XMLSchema#"

XSD_INTEGER = XSD + "integer"
XSD_DECIMAL = XSD + "decimal"
XSD_DOUBLE = XSD + "double"
XSD_BOOLEAN = XSD + "boolean"
XSD_STRING = XSD + "string"
XSD_DATE = XSD + "date"
XSD_DATETIME = XSD + "dateTime"

_NUMERIC_DATATYPES = frozenset({XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE})


class Term:
    """Base class for all RDF terms."""

    __slots__ = ()

    def n3(self) -> str:
        """Render the term in N-Triples / SPARQL surface syntax."""
        raise NotImplementedError


class URIRef(Term):
    """An RDF URI reference (IRI)."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        if not isinstance(value, str) or not value:
            raise ValueError("URIRef requires a non-empty string, got %r" % (value,))
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, val):  # immutability guard
        raise AttributeError("URIRef is immutable")

    def __eq__(self, other):
        return isinstance(other, URIRef) and self.value == other.value

    def __hash__(self):
        return hash(("uri", self.value))

    def __repr__(self):
        return "URIRef(%r)" % self.value

    def __str__(self):
        return self.value

    def n3(self) -> str:
        return "<%s>" % self.value


class BlankNode(Term):
    """An RDF blank node, identified by a local label."""

    __slots__ = ("label",)

    _counter = 0

    def __init__(self, label: Optional[str] = None):
        if label is None:
            BlankNode._counter += 1
            label = "b%d" % BlankNode._counter
        object.__setattr__(self, "label", label)

    def __setattr__(self, name, val):
        raise AttributeError("BlankNode is immutable")

    def __eq__(self, other):
        return isinstance(other, BlankNode) and self.label == other.label

    def __hash__(self):
        return hash(("bnode", self.label))

    def __repr__(self):
        return "BlankNode(%r)" % self.label

    def __str__(self):
        return "_:" + self.label

    def n3(self) -> str:
        return "_:" + self.label


class Literal(Term):
    """An RDF literal with optional datatype or language tag.

    The Python-native value is computed eagerly for numeric, boolean, and
    date-like datatypes so that SPARQL expression evaluation can operate on
    natural Python values.
    """

    __slots__ = ("lexical", "datatype", "language", "value")

    def __init__(self, lexical, datatype: Optional[str] = None,
                 language: Optional[str] = None):
        if language is not None and datatype is not None:
            raise ValueError("a literal cannot have both a language and a datatype")
        # Accept native Python values for convenience.
        if isinstance(lexical, bool):
            datatype = XSD_BOOLEAN
            lexical = "true" if lexical else "false"
        elif isinstance(lexical, int):
            datatype = XSD_INTEGER
            lexical = str(lexical)
        elif isinstance(lexical, float):
            datatype = XSD_DOUBLE
            lexical = repr(lexical)
        elif not isinstance(lexical, str):
            raise TypeError("unsupported literal value %r" % (lexical,))
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "language", language)
        object.__setattr__(self, "value", _parse_value(lexical, datatype))

    def __setattr__(self, name, val):
        raise AttributeError("Literal is immutable")

    def __eq__(self, other):
        return (isinstance(other, Literal)
                and self.lexical == other.lexical
                and self.datatype == other.datatype
                and self.language == other.language)

    def __hash__(self):
        return hash(("lit", self.lexical, self.datatype, self.language))

    def __repr__(self):
        return "Literal(%r, datatype=%r, language=%r)" % (
            self.lexical, self.datatype, self.language)

    def __str__(self):
        return self.lexical

    @property
    def is_numeric(self) -> bool:
        return self.datatype in _NUMERIC_DATATYPES

    def n3(self) -> str:
        escaped = (self.lexical.replace("\\", "\\\\").replace('"', '\\"')
                   .replace("\n", "\\n").replace("\r", "\\r").replace("\t", "\\t"))
        base = '"%s"' % escaped
        if self.language:
            return base + "@" + self.language
        if self.datatype and self.datatype != XSD_STRING:
            return base + "^^<" + self.datatype + ">"
        return base


class Variable(Term):
    """A SPARQL variable, e.g. ``?movie``.  The name excludes the ``?``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if name.startswith("?") or name.startswith("$"):
            name = name[1:]
        if not name:
            raise ValueError("variable name must be non-empty")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, val):
        raise AttributeError("Variable is immutable")

    def __eq__(self, other):
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self):
        return hash(("var", self.name))

    def __repr__(self):
        return "Variable(%r)" % self.name

    def __str__(self):
        return "?" + self.name

    def n3(self) -> str:
        return "?" + self.name


# A concrete RDF node (what may appear in a graph).
Node = Union[URIRef, BlankNode, Literal]
# What may appear in a triple pattern.
PatternTerm = Union[URIRef, BlankNode, Literal, Variable]

Triple = Tuple[Node, Node, Node]
TriplePattern = Tuple[PatternTerm, PatternTerm, PatternTerm]


def _parse_value(lexical: str, datatype: Optional[str]):
    """Compute the natural Python value for a literal, or keep the string."""
    if datatype == XSD_INTEGER:
        try:
            return int(lexical)
        except ValueError:
            return lexical
    if datatype in (XSD_DECIMAL, XSD_DOUBLE):
        try:
            return float(lexical)
        except ValueError:
            return lexical
    if datatype == XSD_BOOLEAN:
        return lexical.strip().lower() in ("true", "1")
    return lexical


def is_concrete(term: PatternTerm) -> bool:
    """True when a pattern term is a ground RDF node (not a variable)."""
    return not isinstance(term, Variable)


def literal_year(lit: Literal) -> Optional[int]:
    """Extract the year from an ``xsd:date``/``xsd:dateTime`` literal.

    SPARQL's ``year(xsd:dateTime(?date))`` idiom, used in the topic-modeling
    case study, reduces to this operation.
    """
    text = lit.lexical
    if len(text) >= 4 and text[:4].isdigit():
        return int(text[:4])
    return None
