"""Turtle parsing and serialization.

Public knowledge-graph dumps ship in Turtle at least as often as in
N-Triples (DBpedia's distributions are .ttl), and rdflib — whose role
:mod:`repro.rdf` plays — parses both.  This module implements the Turtle
fragment those dumps use:

* ``@prefix`` / ``@base`` directives (and the SPARQL-style ``PREFIX``),
* prefixed names and ``<...>`` IRIs,
* the ``a`` keyword,
* predicate lists (``;``) and object lists (``,``),
* literals: quoted (with ``@lang`` / ``^^datatype``), integers, decimals,
  doubles, booleans,
* blank node labels (``_:b``) and anonymous blank nodes (``[]``,
  including property lists ``[ p o ; q r ]``),
* comments.

Collections ``( ... )`` are not supported (absent from the target dumps).
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, TextIO, Tuple, Union

from .graph import Graph
from .namespaces import PrefixMap
from .terms import (BlankNode, Literal, Node, Triple, URIRef, XSD_BOOLEAN,
                    XSD_DECIMAL, XSD_DOUBLE, XSD_INTEGER)
from .namespaces import RDF


class TurtleError(ValueError):
    """Raised on malformed Turtle input."""

    def __init__(self, message: str, line: int):
        super().__init__("line %d: %s" % (line, message))
        self.line = line


_TOKEN_RE = re.compile(r"""
    (?P<COMMENT>\#[^\n]*)
  | (?P<IRI><[^<>"{}|^`\\\x00-\x20]*>)
  | (?P<STRING_LONG>\"\"\"(?:[^"\\]|\\.|"(?!""))*\"\"\")
  | (?P<STRING>"(?:[^"\\\n]|\\.)*")
  | (?P<KEYWORD>@prefix|@base|PREFIX(?![A-Za-z0-9_:])|BASE(?![A-Za-z0-9_:])
               |true(?![A-Za-z0-9_:])|false(?![A-Za-z0-9_:])|a(?![A-Za-z0-9_:]))
  | (?P<LANGTAG>@[A-Za-z][A-Za-z0-9-]*)
  | (?P<DTYPE>\^\^)
  | (?P<BNODE>_:[A-Za-z0-9][A-Za-z0-9_.-]*)
  | (?P<NUMBER>[+-]?(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?))
  | (?P<PNAME>[A-Za-z_][A-Za-z0-9_-]*:[A-Za-z0-9_][A-Za-z0-9_.-]*|[A-Za-z_][A-Za-z0-9_-]*:|:[A-Za-z0-9_][A-Za-z0-9_.-]*|:)
  | (?P<PUNCT>[;,.\[\]()])
  | (?P<WS>\s+)
""", re.VERBOSE)


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    tokens = []
    pos = 0
    line = 1
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise TurtleError("unexpected character %r" % text[pos], line)
        kind = match.lastgroup
        value = match.group(0)
        line += value.count("\n")
        pos = match.end()
        if kind in ("WS", "COMMENT"):
            continue
        if kind == "PNAME" and value.endswith("."):
            # Trailing dot is the statement terminator.
            stripped = value.rstrip(".")
            dots = len(value) - len(stripped)
            tokens.append(("PNAME", stripped, line))
            tokens.extend([("PUNCT", ".", line)] * dots)
            continue
        tokens.append((kind, value, line))
    tokens.append(("EOF", "", line))
    return tokens


class _TurtleParser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0
        self.prefixes: Dict[str, str] = {}
        self.base = ""
        self.triples: List[Triple] = []
        self._anon = 0

    # ------------------------------------------------------------------
    def peek(self):
        return self.tokens[self.pos]

    def next(self):
        token = self.tokens[self.pos]
        if token[0] != "EOF":
            self.pos += 1
        return token

    def expect_punct(self, value: str):
        kind, text, line = self.next()
        if kind != "PUNCT" or text != value:
            raise TurtleError("expected %r, got %r" % (value, text), line)

    # ------------------------------------------------------------------
    def parse(self) -> Iterator[Triple]:
        while self.peek()[0] != "EOF":
            kind, value, line = self.peek()
            if kind == "KEYWORD" and value in ("@prefix", "PREFIX"):
                self._parse_prefix(value == "@prefix")
            elif kind == "KEYWORD" and value in ("@base", "BASE"):
                self._parse_base(value == "@base")
            else:
                self._parse_statement()
        return iter(self.triples)

    def _parse_prefix(self, dotted: bool):
        self.next()
        kind, pname, line = self.next()
        if kind != "PNAME":
            raise TurtleError("expected prefix name", line)
        prefix = pname[:-1] if pname.endswith(":") else pname.split(":")[0]
        kind, iri, line = self.next()
        if kind != "IRI":
            raise TurtleError("expected IRI after prefix", line)
        self.prefixes[prefix] = self.base + iri[1:-1]
        if dotted:
            self.expect_punct(".")

    def _parse_base(self, dotted: bool):
        self.next()
        kind, iri, line = self.next()
        if kind != "IRI":
            raise TurtleError("expected IRI after base", line)
        self.base = iri[1:-1]
        if dotted:
            self.expect_punct(".")

    def _parse_statement(self):
        subject = self._parse_subject()
        self._parse_predicate_object_list(subject)
        self.expect_punct(".")

    def _parse_subject(self) -> Node:
        kind, value, line = self.peek()
        if kind == "PUNCT" and value == "[":
            return self._parse_blank_node_property_list()
        term = self._parse_term(expect="subject")
        if isinstance(term, Literal):
            raise TurtleError("literal subject", line)
        return term

    def _parse_predicate_object_list(self, subject: Node):
        while True:
            predicate = self._parse_predicate()
            while True:
                obj = self._parse_object()
                self.triples.append((subject, predicate, obj))
                kind, value, _ = self.peek()
                if kind == "PUNCT" and value == ",":
                    self.next()
                    continue
                break
            kind, value, _ = self.peek()
            if kind == "PUNCT" and value == ";":
                self.next()
                # Permit dangling ';' before '.' or ']'
                kind, value, _ = self.peek()
                if kind == "PUNCT" and value in (".", "]"):
                    break
                continue
            break

    def _parse_predicate(self) -> URIRef:
        kind, value, line = self.peek()
        if kind == "KEYWORD" and value == "a":
            self.next()
            return RDF.type
        term = self._parse_term(expect="predicate")
        if not isinstance(term, URIRef):
            raise TurtleError("predicate must be an IRI", line)
        return term

    def _parse_object(self) -> Node:
        kind, value, _ = self.peek()
        if kind == "PUNCT" and value == "[":
            return self._parse_blank_node_property_list()
        return self._parse_term(expect="object")

    def _parse_blank_node_property_list(self) -> BlankNode:
        self.expect_punct("[")
        self._anon += 1
        node = BlankNode("anon%d" % self._anon)
        kind, value, _ = self.peek()
        if not (kind == "PUNCT" and value == "]"):
            self._parse_predicate_object_list(node)
        self.expect_punct("]")
        return node

    def _parse_term(self, expect: str) -> Node:
        kind, value, line = self.next()
        if kind == "IRI":
            return URIRef(self.base + value[1:-1]
                          if not value[1:-1].startswith("http")
                          and self.base else value[1:-1])
        if kind == "PNAME":
            prefix, _, local = value.partition(":")
            if prefix not in self.prefixes:
                raise TurtleError("unknown prefix %r" % prefix, line)
            return URIRef(self.prefixes[prefix] + local)
        if kind == "BNODE":
            return BlankNode(value[2:])
        if kind in ("STRING", "STRING_LONG"):
            text = value[3:-3] if kind == "STRING_LONG" else value[1:-1]
            text = _unescape(text)
            next_kind, next_value, _ = self.peek()
            if next_kind == "LANGTAG":
                self.next()
                return Literal(text, language=next_value[1:])
            if next_kind == "DTYPE":
                self.next()
                datatype = self._parse_term(expect="datatype")
                if not isinstance(datatype, URIRef):
                    raise TurtleError("datatype must be an IRI", line)
                return Literal(text, datatype=str(datatype))
            return Literal(text)
        if kind == "NUMBER":
            if "e" in value.lower():
                return Literal(value, datatype=XSD_DOUBLE)
            if "." in value:
                return Literal(value, datatype=XSD_DECIMAL)
            return Literal(value, datatype=XSD_INTEGER)
        if kind == "KEYWORD" and value in ("true", "false"):
            return Literal(value, datatype=XSD_BOOLEAN)
        raise TurtleError("expected %s, got %r" % (expect, value), line)


_ESCAPES = {"\\t": "\t", "\\n": "\n", "\\r": "\r", '\\"': '"',
            "\\'": "'", "\\\\": "\\"}
_ESCAPE_RE = re.compile(r"\\[tnr\"'\\]|\\u[0-9A-Fa-f]{4}|\\U[0-9A-Fa-f]{8}")


def _unescape(text: str) -> str:
    def repl(match):
        token = match.group(0)
        if token in _ESCAPES:
            return _ESCAPES[token]
        return chr(int(token[2:], 16))
    return _ESCAPE_RE.sub(repl, text)


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def parse(source: Union[str, TextIO]) -> Iterator[Triple]:
    """Yield triples from a Turtle document (string or file object)."""
    text = source if isinstance(source, str) else source.read()
    return _TurtleParser(text).parse()


def parse_into_graph(source: Union[str, TextIO], graph: Graph) -> int:
    """Parse a Turtle document into a graph; returns new-triple count."""
    return graph.update(parse(source))


def serialize(triples, prefixes: Optional[Dict[str, str]] = None,
              group_subjects: bool = True) -> str:
    """Serialize triples to Turtle, grouping predicate/object lists per
    subject and abbreviating URIs with the given prefix map."""
    prefix_map = PrefixMap(prefixes or {})
    by_subject: Dict[Node, List[Tuple[Node, Node]]] = {}
    order: List[Node] = []
    for s, p, o in triples:
        if s not in by_subject:
            by_subject[s] = []
            order.append(s)
        by_subject[s].append((p, o))

    def render(term: Node) -> str:
        if isinstance(term, URIRef):
            if term == RDF.type:
                return "a"
            return prefix_map.shrink(term)
        return term.n3()

    body_lines: List[str] = []
    for subject in order:
        pairs = by_subject[subject]
        subject_text = (subject.n3() if isinstance(subject, BlankNode)
                        else prefix_map.shrink(subject))
        if group_subjects and len(pairs) > 1:
            body_lines.append(subject_text)
            for index, (p, o) in enumerate(pairs):
                terminator = " ;" if index < len(pairs) - 1 else " ."
                body_lines.append("    %s %s%s" % (render(p), render(o),
                                                   terminator))
        else:
            for p, o in pairs:
                body_lines.append("%s %s %s ." % (subject_text, render(p),
                                                  render(o)))
    body = "\n".join(body_lines)

    used = []
    for prefix, base in prefix_map.items():
        if ("%s:" % prefix) in body:
            used.append("@prefix %s: <%s> ." % (prefix, base))
    header = "\n".join(used)
    return (header + "\n\n" + body + "\n") if header else body + "\n"
