"""An indexed, in-memory RDF graph.

This is the storage substrate beneath the SPARQL engine (the role Virtuoso
plays in the paper).  Triples are indexed three ways (SPO, POS, OSP nested
dictionaries) so that a triple pattern with any combination of bound
positions can be answered by direct index lookups rather than scans.

The graph also maintains simple statistics (triple counts per predicate,
distinct subject/object counts) used by the join-order optimizer.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from .terms import Literal, Node, Triple, URIRef


class Graph:
    """A set of RDF triples with SPO/POS/OSP indexes.

    Parameters
    ----------
    uri:
        The graph URI used in ``FROM`` clauses, e.g. ``http://dbpedia.org``.
    """

    def __init__(self, uri: str = "urn:default"):
        self.uri = uri
        # index[s][p] -> set of o ; index maps use nested dicts of sets.
        self._spo: Dict[Node, Dict[Node, Set[Node]]] = {}
        self._pos: Dict[Node, Dict[Node, Set[Node]]] = {}
        self._osp: Dict[Node, Dict[Node, Set[Node]]] = {}
        self._size = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, subject: Node, predicate: Node, obj: Node) -> bool:
        """Add a triple; returns True if it was new."""
        objs = self._spo.setdefault(subject, {}).setdefault(predicate, set())
        if obj in objs:
            return False
        objs.add(obj)
        self._pos.setdefault(predicate, {}).setdefault(obj, set()).add(subject)
        self._osp.setdefault(obj, {}).setdefault(subject, set()).add(predicate)
        self._size += 1
        return True

    def add_triple(self, triple: Triple) -> bool:
        return self.add(*triple)

    def update(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns the number actually inserted."""
        added = 0
        for s, p, o in triples:
            if self.add(s, p, o):
                added += 1
        return added

    def remove(self, subject: Node, predicate: Node, obj: Node) -> bool:
        """Remove a triple; returns True if it was present."""
        try:
            self._spo[subject][predicate].remove(obj)
        except KeyError:
            return False
        if not self._spo[subject][predicate]:
            del self._spo[subject][predicate]
            if not self._spo[subject]:
                del self._spo[subject]
        self._pos[predicate][obj].discard(subject)
        if not self._pos[predicate][obj]:
            del self._pos[predicate][obj]
            if not self._pos[predicate]:
                del self._pos[predicate]
        self._osp[obj][subject].discard(predicate)
        if not self._osp[obj][subject]:
            del self._osp[obj][subject]
            if not self._osp[obj]:
                del self._osp[obj]
        self._size -= 1
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        s, p, o = triple
        return o in self._spo.get(s, {}).get(p, ())

    def triples(self, subject: Optional[Node] = None,
                predicate: Optional[Node] = None,
                obj: Optional[Node] = None) -> Iterator[Triple]:
        """Iterate triples matching a pattern; ``None`` matches anything.

        Uses the index whose bound prefix is longest, so every combination
        of bound positions avoids a full scan when possible.
        """
        if subject is not None:
            by_pred = self._spo.get(subject)
            if by_pred is None:
                return
            if predicate is not None:
                objs = by_pred.get(predicate)
                if objs is None:
                    return
                if obj is not None:
                    if obj in objs:
                        yield (subject, predicate, obj)
                    return
                for o in objs:
                    yield (subject, predicate, o)
                return
            if obj is not None:
                preds = self._osp.get(obj, {}).get(subject)
                if preds is None:
                    return
                for p in preds:
                    yield (subject, p, obj)
                return
            for p, objs in by_pred.items():
                for o in objs:
                    yield (subject, p, o)
            return
        if predicate is not None:
            by_obj = self._pos.get(predicate)
            if by_obj is None:
                return
            if obj is not None:
                for s in by_obj.get(obj, ()):
                    yield (s, predicate, obj)
                return
            for o, subjects in by_obj.items():
                for s in subjects:
                    yield (s, predicate, o)
            return
        if obj is not None:
            for s, preds in self._osp.get(obj, {}).items():
                for p in preds:
                    yield (s, p, obj)
            return
        for s, by_pred in self._spo.items():
            for p, objs in by_pred.items():
                for o in objs:
                    yield (s, p, o)

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    # ------------------------------------------------------------------
    # Statistics (used by the SPARQL optimizer)
    # ------------------------------------------------------------------
    def count(self, subject: Optional[Node] = None,
              predicate: Optional[Node] = None,
              obj: Optional[Node] = None) -> int:
        """Number of triples matching the pattern (index-backed fast paths)."""
        if subject is None and predicate is None and obj is None:
            return self._size
        if subject is not None and predicate is not None and obj is None:
            return len(self._spo.get(subject, {}).get(predicate, ()))
        if subject is None and predicate is not None and obj is not None:
            return len(self._pos.get(predicate, {}).get(obj, ()))
        if subject is None and predicate is not None and obj is None:
            by_obj = self._pos.get(predicate)
            if by_obj is None:
                return 0
            return sum(len(subjects) for subjects in by_obj.values())
        return sum(1 for _ in self.triples(subject, predicate, obj))

    def predicates(self) -> Iterator[Node]:
        return iter(self._pos)

    def subjects(self, predicate: Optional[Node] = None) -> Iterator[Node]:
        if predicate is None:
            return iter(self._spo)
        seen = set()
        by_obj = self._pos.get(predicate, {})
        for subjects in by_obj.values():
            seen.update(subjects)
        return iter(seen)

    def objects(self, predicate: Optional[Node] = None) -> Iterator[Node]:
        if predicate is None:
            return iter(self._osp)
        return iter(self._pos.get(predicate, {}))

    def predicate_stats(self) -> Dict[Node, int]:
        """Triple count per predicate."""
        return {p: sum(len(ss) for ss in by_obj.values())
                for p, by_obj in self._pos.items()}

    def classes(self) -> Dict[Node, int]:
        """Instance counts per ``rdf:type`` class — the paper's exploration
        operator for identifying entity types and their distributions."""
        from .namespaces import RDF
        result: Dict[Node, int] = {}
        for cls, subjects in self._pos.get(RDF.type, {}).items():
            result[cls] = len(subjects)
        return result

    def literal_count(self) -> int:
        return sum(1 for o in self._osp if isinstance(o, Literal))

    def __repr__(self):
        return "Graph(%r, %d triples)" % (self.uri, self._size)
