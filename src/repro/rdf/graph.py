"""An indexed, in-memory RDF graph, dictionary-encoded.

This is the storage substrate beneath the SPARQL engine (the role Virtuoso
plays in the paper).  Terms are interned into a :class:`TermDictionary` at
insertion time and the SPO/POS/OSP indexes are nested dictionaries of dense
*integer ids*, so that a triple pattern with any combination of bound
positions can be answered by direct index lookups on ints — no term-object
hashing on the hot path.  The evaluator consumes the id-level interface
(:meth:`Graph.triples_ids`); the term-level interface (:meth:`Graph.triples`
etc.) decodes at the boundary and is what loaders, serializers, and
exploration operators use.

The graph also exposes per-predicate statistics
(:meth:`Graph.predicate_profile`) used by the join-order optimizer, and
lazily-built *sorted runs* — sorted arrays of ids per ``(s, p)``, ``(p, o)``
and ``p`` — that the evaluator's multiway-intersection join steps iterate
as sorted seeds, probing the companion index sets for elimination
(:meth:`Graph.objects_run` and friends).  Runs are memoized like the
profiles and invalidated on mutation.  :func:`gallop` and
:func:`intersect_runs` are the classic binary-search formulation of the
same intersection — the property-tested reference the hash-probe step is
held equivalent to, exported for consumers that have runs but no set
views.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, \
    Tuple

from .dictionary import TermDictionary, shared_dictionary
from .terms import Literal, Node, Triple, URIRef

#: An id-level triple (subject id, predicate id, object id).
IdTriple = Tuple[int, int, int]

#: An immutable sorted run of term ids (strictly increasing).
SortedRun = Tuple[int, ...]

#: Objects sampled per predicate when building a predicate synopsis.
SYNOPSIS_SAMPLE = 64


def gallop(run: Sequence[int], value: int, lo: int = 0) -> int:
    """Index of the first element ``>= value`` in ``run[lo:]``.

    Gallops (doubling probe distance) from ``lo`` before binary-searching
    the bracketed range, so an intersection that walks two runs of very
    different lengths pays O(log gap) per probe instead of O(log n) — the
    standard exponential-search building block of merge-based set
    intersection.
    """
    n = len(run)
    if lo >= n or run[lo] >= value:
        return lo
    step = 1
    hi = lo + 1
    while hi < n and run[hi] < value:
        lo = hi
        step <<= 1
        hi += step
    return bisect_left(run, value, lo + 1, min(hi + 1, n))


def intersect_runs(runs: Sequence[Sequence[int]]) -> List[int]:
    """K-way intersection of sorted id runs via galloping search.

    Iterates the shortest run and eliminates candidates against the others
    leapfrog-style: each run keeps a cursor that only moves forward, so the
    total work is bounded by the shortest run's length times a logarithmic
    gallop per longer run.  This is the comparison-based reference for the
    evaluator's intersection steps (which produce the same candidates in
    the same ascending order via hash probes against the index sets —
    faster in CPython); use it where only sorted runs are available.
    Returns the intersection in ascending id order.
    """
    if not runs:
        return []
    runs = sorted(runs, key=len)
    base = runs[0]
    others = runs[1:]
    if not others:
        return list(base)
    out: List[int] = []
    append = out.append
    cursors = [0] * len(others)
    for value in base:
        keep = True
        for k, run in enumerate(others):
            pos = gallop(run, value, cursors[k])
            if pos >= len(run):
                return out  # this run is exhausted: nothing more matches
            cursors[k] = pos
            if run[pos] != value:
                keep = False
                break
        if keep:
            append(value)
    return out


class Graph:
    """A set of RDF triples with id-keyed SPO/POS/OSP indexes.

    Parameters
    ----------
    uri:
        The graph URI used in ``FROM`` clauses, e.g. ``http://dbpedia.org``.
    dictionary:
        The term dictionary used for encoding.  Defaults to the process-wide
        shared dictionary so that ids are join-compatible across graphs
        (required when several graphs live in one :class:`~.dataset.Dataset`).
    """

    def __init__(self, uri: str = "urn:default",
                 dictionary: Optional[TermDictionary] = None):
        self.uri = uri
        self.dictionary = dictionary if dictionary is not None \
            else shared_dictionary()
        # index[s][p] -> set of o ; nested dicts of sets, all int ids.
        self._spo: Dict[int, Dict[int, Set[int]]] = {}
        self._pos: Dict[int, Dict[int, Set[int]]] = {}
        self._osp: Dict[int, Dict[int, Set[int]]] = {}
        self._size = 0
        # Memoized per-predicate profiles; invalidated on mutation.
        self._profiles: Dict[int, Tuple[int, int, int]] = {}
        # Memoized sorted runs for the intersection join steps; invalidated
        # on mutation exactly like the profiles.  ``sorted_runs_built``
        # counts lazy builds (monotone), so callers can attribute build
        # cost to the query that triggered it.
        self._object_runs: Dict[Tuple[int, int], SortedRun] = {}
        self._subject_runs: Dict[Tuple[int, int], SortedRun] = {}
        self._predicate_subject_runs: Dict[int, SortedRun] = {}
        self._predicate_subject_sets: Dict[int, frozenset] = {}
        self._so_pair_lists: Dict[int, list] = {}
        self._so_pair_cols: Dict[int, tuple] = {}
        self._forward_maps: Dict[int, dict] = {}
        self.sorted_runs_built = 0
        # Statistics synopses for the cost-based planner: the
        # characteristic-sets partition (subjects classed by their exact
        # predicate set) and small per-predicate synopses with sampled
        # object fan-outs.  Lazily built and invalidated on mutation like
        # the sorted runs; ``synopses_built`` counts lazy builds and
        # ``version`` is a monotone mutation counter that statistics
        # consumers snapshot to detect staleness (an equal-size replace
        # changes ``version`` even though ``len`` is unchanged).
        self._char_sets: Optional[Dict[frozenset, Tuple[int, Dict[int, int]]]] = None
        self._pred_synopses: Dict[int, tuple] = {}
        self.synopses_built = 0
        self.version = 0
        # Attached durable store (see repro.storage): when set, every
        # mutation is teed into its write-ahead log *before* the indexes
        # change, so a failed append leaves memory and disk agreeing.
        self._store = None

    @classmethod
    def from_indexes(cls, uri: str, dictionary: TermDictionary,
                     spo: Dict[int, Dict[int, Set[int]]],
                     pos: Dict[int, Dict[int, Set[int]]],
                     osp: Dict[int, Dict[int, Set[int]]],
                     size: int, version: int = 0) -> "Graph":
        """Adopt pre-built nested indexes wholesale (trusted constructor).

        This is the snapshot loader's bulk-restore path: the three
        indexes are taken by reference, not copied, and must describe the
        same triple set with ids valid in ``dictionary``.  ``version`` is
        restored too, so cache fingerprints survive a reopen.
        """
        graph = cls(uri, dictionary=dictionary)
        graph._spo = spo
        graph._pos = pos
        graph._osp = osp
        graph._size = size
        graph.version = version
        return graph

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, subject: Node, predicate: Node, obj: Node) -> bool:
        """Add a triple; returns True if it was new."""
        encode = self.dictionary.encode
        return self.add_ids(encode(subject), encode(predicate), encode(obj))

    def add_ids(self, s: int, p: int, o: int) -> bool:
        """Add a triple given already-encoded ids; returns True if new."""
        by_pred = self._spo.get(s)
        objs = by_pred.get(p) if by_pred is not None else None
        if objs is not None and o in objs:
            return False
        if self._store is not None:
            # Log before mutating: if the append raises, no index has
            # changed and memory still agrees with the durable log.
            self._store._record_add(self, s, p, o, self.version + 1)
        if objs is None:
            if by_pred is None:
                by_pred = self._spo[s] = {}
            objs = by_pred[p] = set()
        objs.add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self._size += 1
        self.version += 1
        if self._profiles:
            self._profiles.pop(p, None)
        self._invalidate_runs(s, p, o)
        return True

    def add_triple(self, triple: Triple) -> bool:
        return self.add(*triple)

    def update(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns the number actually inserted."""
        added = 0
        for s, p, o in triples:
            if self.add(s, p, o):
                added += 1
        return added

    def remove(self, subject: Node, predicate: Node, obj: Node) -> bool:
        """Remove a triple; returns True if it was present."""
        lookup = self.dictionary.lookup
        s, p, o = lookup(subject), lookup(predicate), lookup(obj)
        if s is None or p is None or o is None:
            return False
        try:
            objs = self._spo[s][p]
        except KeyError:
            return False
        if o not in objs:
            return False
        if self._store is not None:
            # Same log-before-mutate ordering as add_ids.
            self._store._record_remove(self, s, p, o, self.version + 1)
        objs.remove(o)
        if not self._spo[s][p]:
            del self._spo[s][p]
            if not self._spo[s]:
                del self._spo[s]
        self._pos[p][o].discard(s)
        if not self._pos[p][o]:
            del self._pos[p][o]
            if not self._pos[p]:
                del self._pos[p]
        self._osp[o][s].discard(p)
        if not self._osp[o][s]:
            del self._osp[o][s]
            if not self._osp[o]:
                del self._osp[o]
        self._size -= 1
        self.version += 1
        if self._profiles:
            self._profiles.pop(p, None)
        self._invalidate_runs(s, p, o)
        return True

    def _invalidate_runs(self, s: int, p: int, o: int) -> None:
        """Drop the sorted runs a ``(s, p, o)`` mutation can have changed."""
        if self._object_runs:
            self._object_runs.pop((s, p), None)
        if self._subject_runs:
            self._subject_runs.pop((p, o), None)
        if self._predicate_subject_runs:
            self._predicate_subject_runs.pop(p, None)
        if self._predicate_subject_sets:
            self._predicate_subject_sets.pop(p, None)
        if self._so_pair_lists:
            self._so_pair_lists.pop(p, None)
        if self._so_pair_cols:
            self._so_pair_cols.pop(p, None)
        if self._forward_maps:
            self._forward_maps.pop(p, None)
        if self._pred_synopses:
            self._pred_synopses.pop(p, None)
        # The characteristic-set partition keys on whole predicate sets, so
        # any mutation can move its subject between classes.
        self._char_sets = None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        lookup = self.dictionary.lookup
        s, p, o = (lookup(t) for t in triple)
        if s is None or p is None or o is None:
            return False
        return o in self._spo.get(s, {}).get(p, ())

    def triples_ids(self, subject: Optional[int] = None,
                    predicate: Optional[int] = None,
                    obj: Optional[int] = None) -> Iterator[IdTriple]:
        """Iterate id triples matching an id pattern; ``None`` matches
        anything.  This is the evaluator's hot path: no term objects are
        touched, and the index whose bound prefix is longest is used so
        every combination of bound positions avoids a full scan.
        """
        if subject is not None:
            by_pred = self._spo.get(subject)
            if by_pred is None:
                return
            if predicate is not None:
                objs = by_pred.get(predicate)
                if objs is None:
                    return
                if obj is not None:
                    if obj in objs:
                        yield (subject, predicate, obj)
                    return
                for o in objs:
                    yield (subject, predicate, o)
                return
            if obj is not None:
                preds = self._osp.get(obj, {}).get(subject)
                if preds is None:
                    return
                for p in preds:
                    yield (subject, p, obj)
                return
            for p, objs in by_pred.items():
                for o in objs:
                    yield (subject, p, o)
            return
        if predicate is not None:
            by_obj = self._pos.get(predicate)
            if by_obj is None:
                return
            if obj is not None:
                for s in by_obj.get(obj, ()):
                    yield (s, predicate, obj)
                return
            for o, subjects in by_obj.items():
                for s in subjects:
                    yield (s, predicate, o)
            return
        if obj is not None:
            for s, preds in self._osp.get(obj, {}).items():
                for p in preds:
                    yield (s, p, obj)
            return
        for s, by_pred in self._spo.items():
            for p, objs in by_pred.items():
                for o in objs:
                    yield (s, p, o)

    # -- direct id-level accessors (evaluator hot paths) ----------------
    # These return internal index containers; callers must treat them as
    # read-only.  They exist so the BGP matcher's per-row probe is a dict
    # lookup instead of a generator instantiation.

    def spo_index(self):
        """The raw ``s -> {p -> objects}`` index (read-only contract).

        The dict object is stable for the graph's lifetime (mutations
        edit it in place); :meth:`forward_map` is the per-predicate view
        the vectorized BGP steps compile against."""
        return self._spo

    def pos_index(self):
        """The raw ``p -> {o -> subjects}`` index (read-only contract)."""
        return self._pos

    def forward_map(self, p: int) -> dict:
        """Memoized ``s -> objects`` map for one predicate (read-only
        contract, invalidated on mutation like the sorted runs).

        A forward probe through :meth:`spo_index` costs two dict lookups
        per row (subject, then predicate); hoisting the predicate level
        into a dedicated map halves that on the vectorized BGP steps'
        hottest line.  Values are the *live* object sets of the SPO
        index, so the map costs one dict entry per distinct subject and
        no set copies."""
        m = self._forward_maps.get(p)
        if m is None:
            spo = self._spo
            m = {}
            for o, subjects in self._pos.get(p, {}).items():
                for s in subjects:
                    if s not in m:
                        m[s] = spo[s][p]
            if m:
                self._forward_maps[p] = m
        return m

    def objects_for(self, s: int, p: int):
        """The set of object ids for (subject id, predicate id), or ()."""
        by_pred = self._spo.get(s)
        if by_pred is None:
            return ()
        return by_pred.get(p, ())

    def subjects_for(self, p: int, o: int):
        """The set of subject ids for (predicate id, object id), or ()."""
        by_obj = self._pos.get(p)
        if by_obj is None:
            return ()
        return by_obj.get(o, ())

    def predicates_for(self, s: int, o: int):
        """The set of predicate ids linking (subject id, object id), or ()."""
        by_subj = self._osp.get(o)
        if by_subj is None:
            return ()
        return by_subj.get(s, ())

    def count_objects_for(self, s: int, p: int) -> int:
        """Number of distinct object ids for (subject id, predicate id).

        An O(1) index lookup.  Because the graph stores triples with set
        semantics, this is simultaneously the number of ``(s, p, ?o)``
        matches and the number of *distinct* ``?o`` bindings — which is
        what lets the evaluator answer ``GROUP BY ?s (COUNT(?o))`` over a
        single triple pattern without producing any rows.
        """
        by_pred = self._spo.get(s)
        if by_pred is None:
            return 0
        return len(by_pred.get(p, ()))

    def count_subjects_for(self, p: int, o: int) -> int:
        """Number of distinct subject ids for (predicate id, object id).

        The mirror of :meth:`count_objects_for`, backed by the POS index.
        """
        by_obj = self._pos.get(p)
        if by_obj is None:
            return 0
        return len(by_obj.get(o, ()))

    def object_group_counts(self, p: int) -> Iterator[Tuple[int, int]]:
        """``(object id, subject count)`` pairs for a predicate id.

        Iterates the POS index directly — O(distinct objects), never
        touching individual triples.  The yield order equals the
        first-seen object order of :meth:`so_pairs` (both walk the same
        index), which is what lets the evaluator's index-backed GROUP BY
        fast path emit groups in exactly the order the row-producing
        path would.
        """
        by_obj = self._pos.get(p)
        if by_obj is None:
            return
        for o, subjects in by_obj.items():
            yield o, len(subjects)

    def subject_group_counts(self, p: int) -> Iterator[Tuple[int, int]]:
        """``(subject id, object count)`` pairs for a predicate id.

        The subject-keyed mirror of :meth:`object_group_counts`.  Yield
        order is the first-seen *subject* order of the object-major
        :meth:`so_pairs` scan (same index walk, same order guarantee for
        the evaluator's GROUP BY fast path); each count is an O(1) SPO
        lookup, so the sweep costs one set-membership test per triple and
        allocates nothing per pair.
        """
        by_obj = self._pos.get(p)
        if by_obj is None:
            return
        spo = self._spo
        seen: Set[int] = set()
        add = seen.add
        for subjects in by_obj.values():
            for s in subjects:
                if s not in seen:
                    add(s)
                    yield s, len(spo[s][p])

    def contains_ids(self, s: int, p: int, o: int) -> bool:
        return o in self._spo.get(s, {}).get(p, ())

    # -- sorted runs (multiway intersection joins) ----------------------
    # Lazily-built, memoized sorted id arrays over the same index entries
    # the set accessors above expose.  The evaluator's intersection BGP
    # steps gallop over them (:func:`intersect_runs`); memoization means a
    # hot (s, p) pays the sort once until the entry mutates.  Empty results
    # are returned as () but never cached, so probing absent keys cannot
    # grow the caches.

    def objects_run(self, s: int, p: int) -> SortedRun:
        """Sorted object ids for ``(subject id, predicate id)``, or ()."""
        key = (s, p)
        run = self._object_runs.get(key)
        if run is None:
            objs = self._spo.get(s, {}).get(p)
            if not objs:
                return ()
            run = tuple(sorted(objs))
            self._object_runs[key] = run
            self.sorted_runs_built += 1
        return run

    def subjects_run(self, p: int, o: int) -> SortedRun:
        """Sorted subject ids for ``(predicate id, object id)``, or ()."""
        key = (p, o)
        run = self._subject_runs.get(key)
        if run is None:
            subs = self._pos.get(p, {}).get(o)
            if not subs:
                return ()
            run = tuple(sorted(subs))
            self._subject_runs[key] = run
            self.sorted_runs_built += 1
        return run

    def predicate_subjects_run(self, p: int) -> SortedRun:
        """Sorted ids of subjects with at least one ``p`` triple, or ().

        This is the run behind ``?s p ?anything`` membership: the
        intersection steps use it to require that a candidate subject
        *has* a predicate before the pattern's fan-out is expanded.
        """
        run = self._predicate_subject_runs.get(p)
        if run is None:
            by_obj = self._pos.get(p)
            if not by_obj:
                return ()
            subjects: Set[int] = set()
            for subs in by_obj.values():
                subjects.update(subs)
            run = tuple(sorted(subjects))
            self._predicate_subject_runs[p] = run
            self.sorted_runs_built += 1
        return run

    def predicate_subjects_set(self, p: int) -> frozenset:
        """The hashed companion of :meth:`predicate_subjects_run` — the
        membership-probe face of the same lazily-built entry (also
        invalidated on mutation).  The intersection steps probe it when
        the presence run is not the iteration seed."""
        members = self._predicate_subject_sets.get(p)
        if members is None:
            members = frozenset(self.predicate_subjects_run(p))
            if not members:
                return members
            self._predicate_subject_sets[p] = members
        return members

    def so_pairs_list(self, p: int) -> list:
        """Memoized :meth:`so_pairs` materialization (read-only contract).

        A constant-predicate scan step materializes the predicate's
        pairs at compile time; caching here amortizes that across
        queries the same way the sorted runs are amortized.  Empty
        results are not cached so probing absent predicates cannot grow
        the cache."""
        pairs = self._so_pair_lists.get(p)
        if pairs is None:
            pairs = list(self.so_pairs(p))
            if pairs:
                self._so_pair_lists[p] = pairs
        return pairs

    def so_pair_columns(self, p: int) -> tuple:
        """The predicate's pairs as two parallel id-list columns
        (subjects, objects), memoized like :meth:`so_pairs_list` and in
        the same order (read-only contract).  This is the compile-time
        input of a vectorized constant-predicate scan step."""
        cols = self._so_pair_cols.get(p)
        if cols is None:
            pairs = self.so_pairs_list(p)
            cols = ([s for s, _ in pairs], [o for _, o in pairs])
            if pairs:
                self._so_pair_cols[p] = cols
        return cols

    def so_pairs(self, p: int) -> Iterator[Tuple[int, int]]:
        """Iterate (subject id, object id) pairs for a predicate id."""
        by_obj = self._pos.get(p)
        if by_obj is None:
            return
        for o, subjects in by_obj.items():
            for s in subjects:
                yield (s, o)

    def triples(self, subject: Optional[Node] = None,
                predicate: Optional[Node] = None,
                obj: Optional[Node] = None) -> Iterator[Triple]:
        """Iterate term-level triples matching a pattern; ``None`` matches
        anything.  Decodes at the boundary; a bound term that was never
        interned matches nothing."""
        lookup = self.dictionary.lookup
        ids = []
        for term in (subject, predicate, obj):
            if term is None:
                ids.append(None)
            else:
                tid = lookup(term)
                if tid is None:
                    return
                ids.append(tid)
        decode = self.dictionary.decode
        for s, p, o in self.triples_ids(*ids):
            yield (decode(s), decode(p), decode(o))

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    # ------------------------------------------------------------------
    # Statistics (used by the SPARQL optimizer)
    # ------------------------------------------------------------------
    def count(self, subject: Optional[Node] = None,
              predicate: Optional[Node] = None,
              obj: Optional[Node] = None) -> int:
        """Number of triples matching the pattern (index-backed fast paths)."""
        if subject is None and predicate is None and obj is None:
            return self._size
        lookup = self.dictionary.lookup
        s = lookup(subject) if subject is not None else None
        p = lookup(predicate) if predicate is not None else None
        o = lookup(obj) if obj is not None else None
        if (subject is not None and s is None) \
                or (predicate is not None and p is None) \
                or (obj is not None and o is None):
            return 0
        if s is not None and p is not None and o is None:
            return len(self._spo.get(s, {}).get(p, ()))
        if s is None and p is not None and o is not None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is None and p is not None and o is None:
            by_obj = self._pos.get(p)
            if by_obj is None:
                return 0
            return sum(len(subjects) for subjects in by_obj.values())
        return sum(1 for _ in self.triples_ids(s, p, o))

    def predicates(self) -> Iterator[Node]:
        decode = self.dictionary.decode
        return (decode(p) for p in self._pos)

    def subjects(self, predicate: Optional[Node] = None) -> Iterator[Node]:
        decode = self.dictionary.decode
        if predicate is None:
            return (decode(s) for s in self._spo)
        pid = self.dictionary.lookup(predicate)
        if pid is None:
            return iter(())
        seen: Set[int] = set()
        for subjects in self._pos.get(pid, {}).values():
            seen.update(subjects)
        return (decode(s) for s in seen)

    def objects(self, predicate: Optional[Node] = None) -> Iterator[Node]:
        decode = self.dictionary.decode
        if predicate is None:
            return (decode(o) for o in self._osp)
        pid = self.dictionary.lookup(predicate)
        if pid is None:
            return iter(())
        return (decode(o) for o in self._pos.get(pid, {}))

    def predicate_profile(self, predicate: Node) -> Tuple[int, int, int]:
        """``(triples, distinct_subjects, distinct_objects)`` for a predicate.

        This is the public statistics interface the join-order optimizer
        consumes (via :class:`~repro.sparql.optimizer.GraphStatistics`).
        Profiles are memoized per predicate and invalidated when a triple
        with that predicate is added or removed, so repeated estimation
        during a query is O(1) after the first touch.
        """
        pid = self.dictionary.lookup(predicate)
        if pid is None:
            return (0, 0, 0)
        return self._profile_id(pid)

    def _profile_id(self, pid: int) -> Tuple[int, int, int]:
        profile = self._profiles.get(pid)
        if profile is None:
            by_obj = self._pos.get(pid, {})
            triples = 0
            subjects: Set[int] = set()
            for subs in by_obj.values():
                triples += len(subs)
                subjects.update(subs)
            profile = (triples, len(subjects), len(by_obj))
            self._profiles[pid] = profile
        return profile

    def characteristic_sets(self) -> Dict[frozenset, Tuple[int, Dict[int, int]]]:
        """The characteristic-sets synopsis (read-only contract).

        Partitions subjects by their exact predicate-id set and records,
        per class, ``(subject_count, {pid: triples})`` — enough to answer
        both star-shape counts (how many subjects carry *all* of a set of
        predicates: sum counts over superset classes) and per-class mean
        object fan-out (``triples[pid] / subject_count``).  The per-class
        triple counts partition each predicate's totals exactly, so any
        per-predicate figure derived from this synopsis equals the
        corresponding :meth:`predicate_profile` figure.  Lazily built in
        one SPO sweep, memoized, and invalidated by any mutation.
        """
        sets = self._char_sets
        if sets is None:
            sets = {}
            for by_pred in self._spo.values():
                key = frozenset(by_pred)
                entry = sets.get(key)
                if entry is None:
                    entry = sets[key] = (0, {})
                counts = entry[1]
                for p, objs in by_pred.items():
                    counts[p] = counts.get(p, 0) + len(objs)
                sets[key] = (entry[0] + 1, counts)
            self._char_sets = sets
            self.synopses_built += 1
        return sets

    def predicate_synopsis(
            self, pid: int) -> Tuple[int, int, int, float, int, float, float]:
        """A small per-predicate synopsis for the cost-based planner.

        Returns ``(triples, distinct_subjects, distinct_objects,
        sampled_mean_subjects_per_object, sampled_max_subjects_per_object,
        edge_biased_subjects_per_object, edge_biased_objects_per_subject)``.
        The first three are exact (shared with :meth:`predicate_profile`);
        the fan-out moments are measured over a bounded, deterministic
        *systematic* sample of the POS index — every k-th object in
        insertion order, with the stride chosen so the sample spans the
        whole index — so building one stays O(distinct objects) after the
        profile while regions inserted early (e.g. a generator's seeded
        substructures) cannot dominate the sample.

        The two *edge-biased* moments are the expected fan-out seen when
        arriving at a node along a uniformly random triple — i.e.
        ``E[deg^2]/E[deg]`` — which is the correct expansion factor for a
        join that reaches the node through another pattern (high-degree
        hubs are reached proportionally more often).  On heavy-tailed
        graphs these are much larger than the plain means, and that gap
        is exactly what makes pattern-at-a-time plans blow up on cyclic
        queries.  Both are estimated by averaging the endpoint's degree
        over a bounded sample of edges (edge sampling *is* the bias).
        Memoized per predicate and invalidated when a triple with that
        predicate mutates.  An absent predicate yields all zeros.
        """
        syn = self._pred_synopses.get(pid)
        if syn is None:
            triples, distinct_s, distinct_o = self._profile_id(pid)
            if triples == 0:
                return (0, 0, 0, 0.0, 0, 0.0, 0.0)
            by_obj = self._pos.get(pid, {})
            stride = max(1, len(by_obj) // SYNOPSIS_SAMPLE)
            sampled = 0
            total = 0
            sq_total = 0
            worst = 0
            fwd_edges = 0
            fwd_total = 0
            spo = self._spo
            for position, subs in enumerate(by_obj.values()):
                if position % stride:
                    continue
                width = len(subs)
                total += width
                sq_total += width * width
                if width > worst:
                    worst = width
                for s in subs:
                    if fwd_edges >= SYNOPSIS_SAMPLE:
                        break
                    fwd_edges += 1
                    fwd_total += len(spo[s][pid])
                sampled += 1
                if sampled >= SYNOPSIS_SAMPLE:
                    break
            mean = total / sampled if sampled else 0.0
            biased_in = sq_total / total if total else 0.0
            biased_out = fwd_total / fwd_edges if fwd_edges else 0.0
            syn = (triples, distinct_s, distinct_o, mean, worst,
                   biased_in, biased_out)
            self._pred_synopses[pid] = syn
            self.synopses_built += 1
        return syn

    def predicate_stats(self) -> Dict[Node, int]:
        """Triple count per predicate."""
        decode = self.dictionary.decode
        return {decode(p): sum(len(ss) for ss in by_obj.values())
                for p, by_obj in self._pos.items()}

    def classes(self) -> Dict[Node, int]:
        """Instance counts per ``rdf:type`` class — the paper's exploration
        operator for identifying entity types and their distributions."""
        from .namespaces import RDF
        type_id = self.dictionary.lookup(RDF.type)
        if type_id is None:
            return {}
        decode = self.dictionary.decode
        return {decode(cls): len(subjects)
                for cls, subjects in self._pos.get(type_id, {}).items()}

    def literal_count(self) -> int:
        """Number of *triples* whose object is a literal.

        Note: this counts triples, not distinct literal values — two triples
        sharing the same literal object count twice.  (Earlier revisions
        counted distinct literal objects, which under-reported literal
        density for exploration.)  Use ``distinct_literal_count`` for the
        distinct-value variant.
        """
        decode = self.dictionary.decode
        total = 0
        for o, by_subj in self._osp.items():
            if isinstance(decode(o), Literal):
                total += sum(len(preds) for preds in by_subj.values())
        return total

    def distinct_literal_count(self) -> int:
        """Number of distinct literal terms appearing in object position."""
        decode = self.dictionary.decode
        return sum(1 for o in self._osp if isinstance(decode(o), Literal))

    def __repr__(self):
        return "Graph(%r, %d triples)" % (self.uri, self._size)
