"""A dataset of named graphs.

SPARQL queries name the graphs they read with ``FROM <uri>`` and may scope
patterns with ``GRAPH <uri> { ... }``.  The paper's synthetic workload joins
DBpedia with YAGO3, which requires exactly this machinery.

All graphs in a dataset must share one :class:`~.dictionary.TermDictionary`
(the default: every graph uses the process-wide shared dictionary), so that
the evaluator can join id-encoded solutions produced from different graphs
without re-encoding.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .dictionary import TermDictionary, shared_dictionary
from .graph import Graph


class Dataset:
    """A collection of named :class:`Graph` objects, keyed by graph URI."""

    def __init__(self):
        self._graphs: Dict[str, Graph] = {}

    def add_graph(self, graph: Graph) -> Graph:
        for other in self._graphs.values():
            if other.dictionary is not graph.dictionary:
                raise ValueError(
                    "graph %r uses a different TermDictionary than the "
                    "dataset's existing graphs; all graphs in a dataset "
                    "must share one dictionary for id-level joins" % graph.uri)
        self._graphs[graph.uri] = graph
        return graph

    def create_graph(self, uri: str) -> Graph:
        """Get-or-create the graph named ``uri``."""
        if uri not in self._graphs:
            dictionary = None
            for other in self._graphs.values():
                dictionary = other.dictionary
                break
            self._graphs[uri] = Graph(uri, dictionary=dictionary)
        return self._graphs[uri]

    def graph(self, uri: str) -> Graph:
        try:
            return self._graphs[uri]
        except KeyError:
            raise KeyError("no graph named %r in dataset (have: %s)" % (
                uri, ", ".join(sorted(self._graphs)) or "<none>"))

    def __contains__(self, uri: str) -> bool:
        return uri in self._graphs

    def __iter__(self) -> Iterator[Graph]:
        return iter(self._graphs.values())

    def __len__(self) -> int:
        return len(self._graphs)

    def uris(self) -> List[str]:
        return sorted(self._graphs)

    def union_view(self, uris: Optional[List[str]] = None) -> "GraphUnion":
        """A read-only union of several graphs, used when a query has
        multiple ``FROM`` clauses without ``GRAPH`` scoping."""
        graphs = [self.graph(u) for u in uris] if uris else list(self)
        return GraphUnion(graphs)


class GraphUnion:
    """Read-only union of graphs exposing the Graph matching interface
    (term-level and id-level), with set semantics across members."""

    def __init__(self, graphs: List[Graph]):
        self.graphs = graphs
        self.uri = "urn:union:" + "+".join(g.uri for g in graphs)
        self.dictionary: TermDictionary = (
            graphs[0].dictionary if graphs else shared_dictionary())
        # Sorted runs merged across members, memoized per union view.  A
        # union view is created per query resolution, so the cache cannot
        # go stale across mutations; single-member unions delegate to the
        # member's persistent (mutation-invalidated) run cache instead.
        self._runs: Dict[Tuple, Tuple[int, ...]] = {}
        self.sorted_runs_built = 0
        self.synopses_built = 0

    def __len__(self) -> int:
        return sum(len(g) for g in self.graphs)

    @property
    def version(self) -> int:
        """Monotone mutation counter: the sum of member versions.

        Any member mutation changes this — including an equal-size
        replace, which leaves ``len()`` unchanged.  Statistics consumers
        snapshot it to detect stale synopses (the :class:`GraphUnion`
        fix: previously only a size change was observable).
        """
        return sum(g.version for g in self.graphs)

    # -- sorted runs (multiway intersection joins) ----------------------
    def _merged_run(self, key: Tuple, sets) -> Tuple[int, ...]:
        run = self._runs.get(key)
        if run is None:
            merged = set()
            for member in sets:
                merged.update(member)
            if not merged:
                return ()
            run = tuple(sorted(merged))
            self._runs[key] = run
            self.sorted_runs_built += 1
        return run

    def objects_run(self, s, p):
        graphs = self.graphs
        if len(graphs) == 1:
            return graphs[0].objects_run(s, p)
        return self._merged_run(("o", s, p),
                                (g.objects_for(s, p) for g in graphs))

    def subjects_run(self, p, o):
        graphs = self.graphs
        if len(graphs) == 1:
            return graphs[0].subjects_run(p, o)
        return self._merged_run(("s", p, o),
                                (g.subjects_for(p, o) for g in graphs))

    def predicate_subjects_run(self, p):
        graphs = self.graphs
        if len(graphs) == 1:
            return graphs[0].predicate_subjects_run(p)
        return self._merged_run(("ps", p),
                                (g.predicate_subjects_run(p)
                                 for g in graphs))

    def predicate_subjects_set(self, p):
        graphs = self.graphs
        if len(graphs) == 1:
            return graphs[0].predicate_subjects_set(p)
        key = ("pss", p)
        members = self._runs.get(key)
        if members is None:
            members = frozenset(self.predicate_subjects_run(p))
            if not members:
                return members
            self._runs[key] = members
        return members

    def triples_ids(self, subject=None, predicate=None, obj=None):
        """Id-level union iteration with cross-graph dedup."""
        if len(self.graphs) == 1:
            yield from self.graphs[0].triples_ids(subject, predicate, obj)
            return
        seen = set()
        for g in self.graphs:
            for t in g.triples_ids(subject, predicate, obj):
                if t not in seen:
                    seen.add(t)
                    yield t

    # -- direct id-level accessors (same contract as Graph's) -----------
    def spo_index(self):
        """Single-member unions expose the member's raw index; real
        unions return ``None`` and callers take the per-row path."""
        graphs = self.graphs
        return graphs[0].spo_index() if len(graphs) == 1 else None

    def pos_index(self):
        graphs = self.graphs
        return graphs[0].pos_index() if len(graphs) == 1 else None

    def forward_map(self, p):
        graphs = self.graphs
        return graphs[0].forward_map(p) if len(graphs) == 1 else None

    def objects_for(self, s, p):
        graphs = self.graphs
        if len(graphs) == 1:
            return graphs[0].objects_for(s, p)
        out = set()
        for g in graphs:
            out.update(g.objects_for(s, p))
        return out

    def subjects_for(self, p, o):
        graphs = self.graphs
        if len(graphs) == 1:
            return graphs[0].subjects_for(p, o)
        out = set()
        for g in graphs:
            out.update(g.subjects_for(p, o))
        return out

    def predicates_for(self, s, o):
        graphs = self.graphs
        if len(graphs) == 1:
            return graphs[0].predicates_for(s, o)
        out = set()
        for g in graphs:
            out.update(g.predicates_for(s, o))
        return out

    def count_objects_for(self, s, p) -> int:
        """Distinct object ids for (s, p) across the union (dedup exact)."""
        graphs = self.graphs
        if len(graphs) == 1:
            return graphs[0].count_objects_for(s, p)
        return len(self.objects_for(s, p))

    def count_subjects_for(self, p, o) -> int:
        """Distinct subject ids for (p, o) across the union (dedup exact)."""
        graphs = self.graphs
        if len(graphs) == 1:
            return graphs[0].count_subjects_for(p, o)
        return len(self.subjects_for(p, o))

    def contains_ids(self, s, p, o) -> bool:
        return any(g.contains_ids(s, p, o) for g in self.graphs)

    def so_pairs_list(self, p):
        """Memoized pair list, same contract as :meth:`Graph.so_pairs_list`
        (single member delegates; real unions memoize per view)."""
        graphs = self.graphs
        if len(graphs) == 1:
            return graphs[0].so_pairs_list(p)
        key = ("sop", p)
        pairs = self._runs.get(key)
        if pairs is None:
            pairs = tuple(self.so_pairs(p))
            if not pairs:
                return ()
            self._runs[key] = pairs
        return pairs

    def so_pair_columns(self, p):
        graphs = self.graphs
        if len(graphs) == 1:
            return graphs[0].so_pair_columns(p)
        return None  # multi-member unions build columns at compile time

    def so_pairs(self, p):
        graphs = self.graphs
        if len(graphs) == 1:
            yield from graphs[0].so_pairs(p)
            return
        seen = set()
        for g in graphs:
            for pair in g.so_pairs(p):
                if pair not in seen:
                    seen.add(pair)
                    yield pair

    def triples(self, subject=None, predicate=None, obj=None):
        lookup = self.dictionary.lookup
        ids = []
        for term in (subject, predicate, obj):
            if term is None:
                ids.append(None)
            else:
                tid = lookup(term)
                if tid is None:
                    return
                ids.append(tid)
        decode = self.dictionary.decode
        for s, p, o in self.triples_ids(*ids):
            yield (decode(s), decode(p), decode(o))

    def count(self, subject=None, predicate=None, obj=None) -> int:
        if len(self.graphs) == 1:
            return self.graphs[0].count(subject, predicate, obj)
        lookup = self.dictionary.lookup
        ids = []
        for term in (subject, predicate, obj):
            if term is None:
                ids.append(None)
            else:
                tid = lookup(term)
                if tid is None:
                    return 0
                ids.append(tid)
        return sum(1 for _ in self.triples_ids(*ids))

    def predicate_profile(self, predicate) -> Tuple[int, int, int]:
        """Member-wise sum of per-graph profiles.

        An upper bound when graphs overlap (duplicated triples or shared
        entities are counted once per member graph); the optimizer only
        needs relative magnitudes, so the approximation is fine and avoids
        a dedup scan.
        """
        triples = distinct_s = distinct_o = 0
        for g in self.graphs:
            t, s, o = g.predicate_profile(predicate)
            triples += t
            distinct_s += s
            distinct_o += o
        return (triples, distinct_s, distinct_o)

    def characteristic_sets(self):
        """Member-wise merge of the per-graph characteristic sets.

        Classes with the same predicate set are summed across members; a
        subject split across members (or carrying different predicates in
        each) lands in one class per member, so counts are an upper bound
        exactly like :meth:`predicate_profile`.  Single-member unions
        delegate to the member's mutation-invalidated synopsis; real
        unions memoize per view (views are created per query resolution).
        """
        graphs = self.graphs
        if len(graphs) == 1:
            return graphs[0].characteristic_sets()
        key = ("cs",)
        sets = self._runs.get(key)
        if sets is None:
            sets = {}
            for g in graphs:
                for cls, (count, counts) in g.characteristic_sets().items():
                    entry = sets.get(cls)
                    if entry is None:
                        sets[cls] = (count, dict(counts))
                    else:
                        merged = entry[1]
                        for p, n in counts.items():
                            merged[p] = merged.get(p, 0) + n
                        sets[cls] = (entry[0] + count, merged)
            self._runs[key] = sets
            self.synopses_built += 1
        return sets

    def predicate_synopsis(self, pid):
        """Member-wise merge of per-graph predicate synopses: exact
        figures are summed (an upper bound when members overlap), the
        sampled mean is weighted by each member's distinct objects, the
        edge-biased fan-out moments by each member's triple count (edges),
        and the sampled max is the max across members."""
        graphs = self.graphs
        if len(graphs) == 1:
            return graphs[0].predicate_synopsis(pid)
        key = ("syn", pid)
        syn = self._runs.get(key)
        if syn is None:
            triples = distinct_s = distinct_o = worst = 0
            weighted = 0.0
            weighted_in = 0.0
            weighted_out = 0.0
            for g in graphs:
                t, ds, do, mean, mx, b_in, b_out = g.predicate_synopsis(pid)
                triples += t
                distinct_s += ds
                distinct_o += do
                weighted += mean * do
                weighted_in += b_in * t
                weighted_out += b_out * t
                if mx > worst:
                    worst = mx
            mean = weighted / distinct_o if distinct_o else 0.0
            biased_in = weighted_in / triples if triples else 0.0
            biased_out = weighted_out / triples if triples else 0.0
            syn = (triples, distinct_s, distinct_o, mean, worst,
                   biased_in, biased_out)
            self._runs[key] = syn
            self.synopses_built += 1
        return syn

    def predicate_stats(self):
        stats = {}
        for g in self.graphs:
            for p, n in g.predicate_stats().items():
                stats[p] = stats.get(p, 0) + n
        return stats
