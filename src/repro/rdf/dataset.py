"""A dataset of named graphs.

SPARQL queries name the graphs they read with ``FROM <uri>`` and may scope
patterns with ``GRAPH <uri> { ... }``.  The paper's synthetic workload joins
DBpedia with YAGO3, which requires exactly this machinery.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .graph import Graph


class Dataset:
    """A collection of named :class:`Graph` objects, keyed by graph URI."""

    def __init__(self):
        self._graphs: Dict[str, Graph] = {}

    def add_graph(self, graph: Graph) -> Graph:
        self._graphs[graph.uri] = graph
        return graph

    def create_graph(self, uri: str) -> Graph:
        """Get-or-create the graph named ``uri``."""
        if uri not in self._graphs:
            self._graphs[uri] = Graph(uri)
        return self._graphs[uri]

    def graph(self, uri: str) -> Graph:
        try:
            return self._graphs[uri]
        except KeyError:
            raise KeyError("no graph named %r in dataset (have: %s)" % (
                uri, ", ".join(sorted(self._graphs)) or "<none>"))

    def __contains__(self, uri: str) -> bool:
        return uri in self._graphs

    def __iter__(self) -> Iterator[Graph]:
        return iter(self._graphs.values())

    def __len__(self) -> int:
        return len(self._graphs)

    def uris(self) -> List[str]:
        return sorted(self._graphs)

    def union_view(self, uris: Optional[List[str]] = None) -> "GraphUnion":
        """A read-only union of several graphs, used when a query has
        multiple ``FROM`` clauses without ``GRAPH`` scoping."""
        graphs = [self.graph(u) for u in uris] if uris else list(self)
        return GraphUnion(graphs)


class GraphUnion:
    """Read-only union of graphs exposing the Graph matching interface."""

    def __init__(self, graphs: List[Graph]):
        self.graphs = graphs
        self.uri = "urn:union:" + "+".join(g.uri for g in graphs)

    def __len__(self) -> int:
        return sum(len(g) for g in self.graphs)

    def triples(self, subject=None, predicate=None, obj=None):
        seen = set() if len(self.graphs) > 1 else None
        for g in self.graphs:
            for t in g.triples(subject, predicate, obj):
                if seen is None:
                    yield t
                elif t not in seen:
                    seen.add(t)
                    yield t

    def count(self, subject=None, predicate=None, obj=None) -> int:
        if len(self.graphs) == 1:
            return self.graphs[0].count(subject, predicate, obj)
        return sum(1 for _ in self.triples(subject, predicate, obj))

    def predicate_stats(self):
        stats = {}
        for g in self.graphs:
            for p, n in g.predicate_stats().items():
                stats[p] = stats.get(p, 0) + n
        return stats
