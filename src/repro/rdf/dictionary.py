"""Dictionary encoding of RDF terms — dense integer ids for the data plane.

Real RDF engines (Virtuoso included, which is what the paper benchmarks
against) never join on term *objects*: terms are interned into a dictionary
at load time and the whole query pipeline — indexes, statistics, joins,
DISTINCT — operates on fixed-width integer ids.  Term objects are
re-materialized only at the result-serialization boundary.  This module
provides that dictionary.

Ids are dense (0..n-1) and assignment order is insertion order, so a
dictionary can double as an id -> term decode *array* (a plain list) with
O(1) lookups and no hashing.

A single module-level dictionary is shared by default by every
:class:`~repro.rdf.graph.Graph`, which makes ids directly comparable across
graphs: cross-graph joins (``FROM <a> FROM <b>``, ``GRAPH`` scoping, the
paper's DBpedia x YAGO case study) stay in id space with no re-encoding.
Term equality (``__eq__``/``__hash__`` on the term value objects) is the
interning key, so id equality is exactly term equality.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

from .terms import Node


class TermDictionary:
    """A bijective term <-> dense-int-id mapping (insert-only)."""

    __slots__ = ("_ids", "_terms", "_lock")

    def __init__(self):
        self._ids: Dict[Node, int] = {}
        self._terms: List[Node] = []
        # Interning must be race-free under the concurrent serving tier
        # (expression evaluation interns freshly computed literals): two
        # threads encoding the same new term concurrently must agree on
        # one id.  Double-checked locking keeps the hot already-interned
        # path lock-free; only genuinely new terms take the lock.
        self._lock = threading.Lock()

    # -- encode --------------------------------------------------------
    def encode(self, term: Node) -> int:
        """Intern ``term``, returning its id (assigning a fresh one if new)."""
        tid = self._ids.get(term)
        if tid is None:
            with self._lock:
                tid = self._ids.get(term)
                if tid is None:
                    tid = len(self._terms)
                    # Append before publishing in _ids: a lock-free reader
                    # that sees the id can always decode it.
                    self._terms.append(term)
                    self._ids[term] = tid
        return tid

    def encode_triple(self, subject: Node, predicate: Node,
                      obj: Node) -> Tuple[int, int, int]:
        return (self.encode(subject), self.encode(predicate), self.encode(obj))

    def encode_many(self, terms: Iterable[Node]) -> List[int]:
        """Intern a batch of terms under one lock acquisition.

        The bulk-load path (snapshot recovery interns an entire string
        table at once): semantics are exactly ``[self.encode(t) for t in
        terms]`` minus the per-call locking and attribute traffic.
        """
        with self._lock:
            ids = self._ids
            terms_list = self._terms
            get = ids.get
            append = terms_list.append
            out = []
            for term in terms:
                tid = get(term)
                if tid is None:
                    tid = len(terms_list)
                    append(term)
                    ids[term] = tid
                out.append(tid)
        return out

    def lookup(self, term: Node) -> Optional[int]:
        """The id of ``term`` if already interned, else ``None``.

        Query constants go through ``lookup`` rather than ``encode``: a
        constant that was never loaded cannot match any triple, and probing
        must not grow the dictionary.
        """
        return self._ids.get(term)

    # -- decode --------------------------------------------------------
    def decode(self, tid: int) -> Node:
        """The term for an id previously returned by :meth:`encode`."""
        return self._terms[tid]

    def decode_many(self, tids: Iterable[Optional[int]]) -> List[Optional[Node]]:
        terms = self._terms
        return [None if tid is None else terms[tid] for tid in tids]

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: Node) -> bool:
        return term in self._ids

    def __repr__(self):
        return "TermDictionary(%d terms)" % len(self._terms)


#: Process-wide default dictionary.  Sharing one dictionary across graphs is
#: what keeps ids join-compatible between the graphs of a Dataset.
_SHARED = TermDictionary()


def shared_dictionary() -> TermDictionary:
    """The default dictionary used by graphs constructed without one."""
    return _SHARED
