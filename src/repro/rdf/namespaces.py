"""Namespace and prefix management.

RDFFrames users write predicates in prefixed form (``dbpp:starring``); this
module resolves prefixed names against a prefix map, and offers the common
vocabularies used by the paper's workloads (DBpedia, DBLP/SWRC, RDF(S)).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from .terms import URIRef


class Namespace:
    """A URI namespace; attribute and item access mint :class:`URIRef` terms.

    >>> DBPP = Namespace("http://dbpedia.org/property/")
    >>> DBPP.starring
    URIRef('http://dbpedia.org/property/starring')
    """

    def __init__(self, base: str):
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def term(self, name: str) -> URIRef:
        return URIRef(self._base + name)

    def __getattr__(self, name: str) -> URIRef:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.term(name)

    def __getitem__(self, name: str) -> URIRef:
        return self.term(name)

    def __contains__(self, uri) -> bool:
        return str(uri).startswith(self._base)

    def __repr__(self):
        return "Namespace(%r)" % self._base


# Standard vocabularies.
RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
DC = Namespace("http://purl.org/dc/elements/1.1/")
DCTERMS = Namespace("http://purl.org/dc/terms/")

# Vocabularies used by the paper's workloads.
DBPP = Namespace("http://dbpedia.org/property/")
DBPO = Namespace("http://dbpedia.org/ontology/")
DBPR = Namespace("http://dbpedia.org/resource/")
SWRC = Namespace("http://swrc.ontoware.org/ontology#")
DBLPRC = Namespace("http://dblp.l3s.de/d2r/resource/conferences/")
YAGO = Namespace("http://yago-knowledge.org/resource/")

#: Prefix bindings assumed by default in every :class:`PrefixMap`.
DEFAULT_PREFIXES: Dict[str, str] = {
    "rdf": RDF.base,
    "rdfs": RDFS.base,
    "xsd": XSD.base,
    "owl": OWL.base,
    "foaf": FOAF.base,
    "dc": DC.base,
    "dcterms": DCTERMS.base,
    "dcterm": DCTERMS.base,
    "dbpp": DBPP.base,
    "dbpo": DBPO.base,
    "dbpr": DBPR.base,
    "swrc": SWRC.base,
    "dblprc": DBLPRC.base,
    "yago": YAGO.base,
}


class PrefixMap:
    """A bidirectional prefix <-> namespace mapping.

    Used both by the RDFFrames API (to resolve user-supplied prefixed names)
    and by the SPARQL translator (to emit PREFIX declarations).
    """

    def __init__(self, prefixes: Dict[str, str] = None,
                 include_defaults: bool = True):
        self._map: Dict[str, str] = {}
        if include_defaults:
            self._map.update(DEFAULT_PREFIXES)
        if prefixes:
            self._map.update(prefixes)

    def bind(self, prefix: str, base: str) -> None:
        self._map[prefix] = base

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._map

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(sorted(self._map.items()))

    def items(self):
        return sorted(self._map.items())

    def resolve(self, name: str) -> URIRef:
        """Resolve ``prefix:local`` (or a full ``<uri>``/``http://…``) to a URIRef."""
        if name.startswith("<") and name.endswith(">"):
            return URIRef(name[1:-1])
        if name.startswith("http://") or name.startswith("https://"):
            return URIRef(name)
        prefix, sep, local = name.partition(":")
        if not sep:
            raise ValueError("not a prefixed name: %r" % name)
        if prefix not in self._map:
            raise KeyError("unknown prefix %r in %r" % (prefix, name))
        return URIRef(self._map[prefix] + local)

    def shrink(self, uri: URIRef) -> str:
        """Render a URI in prefixed form when a binding matches, else ``<uri>``."""
        text = str(uri)
        best_prefix, best_base = None, ""
        for prefix, base in self._map.items():
            if text.startswith(base) and len(base) > len(best_base):
                best_prefix, best_base = prefix, base
        if best_prefix is not None:
            local = text[len(best_base):]
            if local and all(c.isalnum() or c in "_-." for c in local):
                return "%s:%s" % (best_prefix, local)
        return "<%s>" % text

    def used_prefixes(self, text: str) -> Dict[str, str]:
        """Return the subset of bindings whose prefix appears in a query text."""
        used = {}
        for prefix, base in self._map.items():
            if (prefix + ":") in text:
                used[prefix] = base
        return used
