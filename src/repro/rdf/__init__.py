"""RDF data model substrate: terms, graphs, datasets, and N-Triples I/O."""

from .terms import (
    BlankNode,
    Literal,
    Node,
    Term,
    Triple,
    TriplePattern,
    URIRef,
    Variable,
    is_concrete,
    literal_year,
)
from .namespaces import (
    DBLPRC,
    DBPO,
    DBPP,
    DBPR,
    DC,
    DCTERMS,
    FOAF,
    OWL,
    RDF,
    RDFS,
    SWRC,
    XSD,
    YAGO,
    Namespace,
    PrefixMap,
    DEFAULT_PREFIXES,
)
from .dictionary import TermDictionary, shared_dictionary
from .graph import Graph, gallop, intersect_runs
from .dataset import Dataset, GraphUnion
from . import ntriples
from . import turtle

__all__ = [
    "BlankNode", "Literal", "Node", "Term", "Triple", "TriplePattern",
    "URIRef", "Variable", "is_concrete", "literal_year",
    "Namespace", "PrefixMap", "DEFAULT_PREFIXES",
    "RDF", "RDFS", "XSD", "OWL", "FOAF", "DC", "DCTERMS",
    "DBPP", "DBPO", "DBPR", "SWRC", "DBLPRC", "YAGO",
    "Graph", "Dataset", "GraphUnion", "ntriples", "turtle",
    "TermDictionary", "shared_dictionary", "gallop", "intersect_runs",
]
