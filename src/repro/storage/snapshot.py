"""Checksummed binary snapshots of a set of graphs + their dictionary.

A snapshot file is::

    magic "RPRSNAP1"
    section 'H'  header   : format version, generation, last WAL seqno,
                            graph count, term count
    section 'D'  dictionary: term_count kind-tagged length-prefixed
                            string records, in id order
    section 'G'  graph (one per graph, sorted by uri):
                            uri, version, triple count, then the three
                            index orderings (SPO, POS, OSP) as
                            length-prefixed packed column runs (sort
                            column delta-encoded; see
                            :func:`~repro.storage.format.encode_sorted_triples`)
    section 'E'  end marker (empty payload)

Every section is framed ``tag | length | payload | crc32`` (see
:mod:`~repro.storage.format`); any framing, checksum, magic, or count
failure raises :class:`~repro.sparql.errors.CorruptSnapshotError`, and
the store falls back to the previous generation.

Storing all three orderings trades ~3x snapshot bytes for a bulk
restore of each nested index: whole id columns come back via
``frombuffer`` + ``cumsum`` and are validated *eagerly* at load time
(checksums, id range, duplicate rows), but the Python-object
``{a: {b: {c, ...}}}`` structure itself is **deferred**: the loader
returns :class:`SnapshotGraph` instances whose three indexes
materialize independently on first touch, the way a production engine
restarts fast and warms pages on demand.  Materialization is
per-group (not per-triple) Python work from the sorted columns.  No
term re-parsing, no re-interning per occurrence, nothing rebuilt
before a query asks for it — which is what makes
reopen-from-snapshot an order of magnitude faster than rebuilding
from N-Triples text (the ``durability`` benchmark section holds
restart-to-first-answer to >= 10x and reports the full warm cost
alongside).

Writes go through a :class:`~repro.storage.fileio.StorageIO` section by
section, then commit via atomic rename, so the crash matrix can kill the
writer at any byte and recovery still finds either the old complete
snapshot or the new complete snapshot — never a half state.
"""

from __future__ import annotations

import gc
import os
import re
import threading
from contextlib import contextmanager
from struct import Struct
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..rdf.dictionary import TermDictionary
from ..rdf.graph import Graph
from ..sparql.errors import CorruptSnapshotError
from .fileio import StorageIO
from .format import (FormatError, decode_varint, decode_varstr,
                     decode_sorted_triples, decode_term,
                     encode_sorted_triples, encode_term, frame_section,
                     read_section, write_varint, write_varstr)

__all__ = ["write_snapshot", "load_snapshot", "list_snapshots",
           "snapshot_path", "SNAPSHOT_MAGIC", "SNAPSHOT_VERSION",
           "LoadedSnapshot", "SnapshotGraph"]

SNAPSHOT_MAGIC = b"RPRSNAP1"
SNAPSHOT_VERSION = 1

_U32 = Struct("<I")
_NAME = re.compile(r"^snapshot-(\d{6,})\.snap$")


def snapshot_path(directory: str, generation: int) -> str:
    return os.path.join(directory, "snapshot-%06d.snap" % generation)


def list_snapshots(directory: str) -> List[Tuple[int, str]]:
    """``(generation, path)`` for every snapshot file, oldest first."""
    found = []
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    for name in names:
        match = _NAME.match(name)
        if match:
            found.append((int(match.group(1)),
                          os.path.join(directory, name)))
    found.sort()
    return found


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
def write_snapshot(io: StorageIO, directory: str, generation: int,
                   graphs: Sequence[Graph], dictionary: TermDictionary,
                   last_seqno: int) -> str:
    """Write one complete snapshot and atomically publish it.

    The dictionary is captured first (``len(dictionary)`` terms); graph
    index sweeps afterwards can only see ids below that bound because
    ids are assigned at interning time, so the capture is internally
    consistent even if the caller races a concurrent reader (writers
    must be quiesced — the store holds its mutation lock).
    """
    term_count = len(dictionary)
    final_path = snapshot_path(directory, generation)
    tmp_path = final_path + ".tmp"

    header = bytearray()
    write_varint(header, SNAPSHOT_VERSION)
    write_varint(header, generation)
    write_varint(header, last_seqno)
    write_varint(header, len(graphs))
    write_varint(header, term_count)

    handle = io.open_write(tmp_path)
    try:
        handle.write(SNAPSHOT_MAGIC)
        handle.write(frame_section(b"H", bytes(header)))

        table = bytearray()
        decode = dictionary.decode
        for tid in range(term_count):
            encode_term(table, decode(tid))
        handle.write(frame_section(b"D", bytes(table)))

        for graph in sorted(graphs, key=lambda g: g.uri):
            handle.write(frame_section(b"G", _encode_graph(graph)))
        handle.write(frame_section(b"E", b""))
        handle.fsync()
    finally:
        handle.close()
    io.replace(tmp_path, final_path)
    io.fsync_dir(directory)
    return final_path


def _encode_graph(graph: Graph) -> bytes:
    count = len(graph)
    ids = np.fromiter((x for t in graph.triples_ids() for x in t),
                      dtype=np.int64, count=count * 3).reshape(count, 3)
    s, p, o = ids[:, 0], ids[:, 1], ids[:, 2]
    out = bytearray()
    write_varstr(out, graph.uri)
    write_varint(out, graph.version)
    write_varint(out, count)
    # lexsort keys are listed least-significant first
    for a, b, c in ((s, p, o), (p, o, s), (o, s, p)):
        order = np.lexsort((c, b, a))
        run = encode_sorted_triples(a[order], b[order], c[order])
        write_varint(out, len(run))
        out += run
    return bytes(out)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
@contextmanager
def _gc_paused():
    """Pause the cyclic collector during bulk object construction.

    Recovery builds hundreds of thousands of term objects, sets, and
    dicts in a tight loop; every generation-0 threshold crossing makes
    the collector rescan all live containers (including the graphs
    already resident in the process), which turns an O(n) build into
    repeated O(heap) sweeps — measured 3-6x slowdowns at a million
    triples.  Nothing constructed here can become garbage mid-build, so
    collection is pure overhead.  Restores the collector's prior state
    even on failure; a no-op when it was already disabled.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


class _DeferredIndex:
    """Non-data descriptor behind ``_spo``/``_pos``/``_osp`` on a
    :class:`SnapshotGraph`: the first touch builds that one nested index
    from the decoded snapshot columns and caches it in the instance
    dict, which shadows the descriptor — so every later access is a
    plain attribute lookup with zero residual overhead."""

    __slots__ = ("_name", "_slot")

    def __init__(self, name: str, slot: int):
        self._name = name
        self._slot = slot

    def __get__(self, graph, objtype=None):
        if graph is None:
            return self
        return graph._materialize_index(self._name, self._slot)


class SnapshotGraph(Graph):
    """A snapshot-loaded graph whose indexes materialize on demand.

    The loader validates everything up front (section checksums, id
    range, duplicate rows) and keeps the sorted id columns; the
    Python-object nested indexes are built per ordering on first
    access — a restart serves its first query after paying only for
    the index that query needs, and a graph nothing touches costs no
    index build at all.  Mutations work transparently (``add``/``remove``
    touch the indexes, which materializes them first), as does WAL
    replay.  ``indexes_materialized`` counts completed builds (0..3)
    so benchmarks and tests can attribute warm-up cost.
    """

    _spo = _DeferredIndex("_spo", 0)
    _pos = _DeferredIndex("_pos", 1)
    _osp = _DeferredIndex("_osp", 2)

    @classmethod
    def deferred(cls, uri: str, dictionary: TermDictionary,
                 columns: List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
                 size: int, version: int) -> "SnapshotGraph":
        """Adopt decoded, validated column triples (SPO, POS, OSP order)."""
        graph = cls(uri, dictionary=dictionary)
        state = graph.__dict__
        # Expose the class-level descriptors: __init__ installed eager
        # empty indexes in the instance dict, which would shadow them.
        del state["_spo"], state["_pos"], state["_osp"]
        graph._snapshot_columns = list(columns)
        graph._snapshot_lock = threading.Lock()
        graph.indexes_materialized = 0
        graph._size = size
        graph.version = version
        return graph

    def _materialize_index(self, name: str, slot: int):
        with self._snapshot_lock:
            state = self.__dict__
            index = state.get(name)
            if index is None:
                a, b, c = self._snapshot_columns[slot]
                with _gc_paused():
                    index = _nested_index(a, b, c, self._size)
                self._snapshot_columns[slot] = None   # free the columns
                state[name] = index
                self.indexes_materialized += 1
        return index


class LoadedSnapshot:
    """What :func:`load_snapshot` recovered."""

    def __init__(self, generation: int, last_seqno: int,
                 graphs: List[Graph]):
        self.generation = generation
        self.last_seqno = last_seqno
        self.graphs = graphs


def load_snapshot(path: str, dictionary: TermDictionary
                  ) -> LoadedSnapshot:
    """Load a snapshot, interning its terms into ``dictionary``.

    When ``dictionary`` already holds terms (reopening into a shared
    dictionary), snapshot ids are remapped through it; a fresh
    dictionary gets the identity mapping and skips the remap entirely.
    Raises :class:`~repro.sparql.errors.CorruptSnapshotError` on *any*
    structural or checksum failure — the caller decides whether an older
    generation can stand in.
    """
    try:
        with open(path, "rb") as fobj:
            data = fobj.read()
    except OSError as exc:
        raise CorruptSnapshotError("cannot read snapshot %s: %s"
                                   % (path, exc)) from exc
    try:
        with _gc_paused():
            return _parse_snapshot(data, dictionary, path)
    except (FormatError, ValueError, IndexError, OverflowError,
            MemoryError) as exc:
        raise CorruptSnapshotError("corrupt snapshot %s: %s"
                                   % (path, exc)) from exc


def _parse_snapshot(data: bytes, dictionary: TermDictionary,
                    path: str) -> LoadedSnapshot:
    if data[:len(SNAPSHOT_MAGIC)] != SNAPSHOT_MAGIC:
        raise FormatError("bad snapshot magic")
    pos = len(SNAPSHOT_MAGIC)

    tag, payload, pos = read_section(data, pos)
    if tag != b"H":
        raise FormatError("expected header section, found %r" % tag)
    cursor = 0
    version, cursor = decode_varint(payload, cursor)
    if version != SNAPSHOT_VERSION:
        raise FormatError("unsupported snapshot format version %d"
                          % version)
    generation, cursor = decode_varint(payload, cursor)
    last_seqno, cursor = decode_varint(payload, cursor)
    graph_count, cursor = decode_varint(payload, cursor)
    term_count, cursor = decode_varint(payload, cursor)

    tag, payload, pos = read_section(data, pos)
    if tag != b"D":
        raise FormatError("expected dictionary section, found %r" % tag)
    remap = _load_dictionary(payload, term_count, dictionary)

    graphs: List[Graph] = []
    saw_end = False
    while pos < len(data):
        tag, payload, pos = read_section(data, pos)
        if tag == b"E":
            saw_end = True
            break
        if tag != b"G":
            raise FormatError("unexpected section %r" % tag)
        graphs.append(_load_graph(payload, dictionary, remap,
                                  term_count))
    if not saw_end:
        raise FormatError("snapshot end marker missing", len(data),
                          torn=True)
    if len(graphs) != graph_count:
        raise FormatError("header promises %d graphs, found %d"
                          % (graph_count, len(graphs)))
    return LoadedSnapshot(generation, last_seqno, graphs)


def _load_dictionary(payload: bytes, term_count: int,
                     dictionary: TermDictionary
                     ) -> Optional[np.ndarray]:
    """Intern the string table; returns old->new id remap (None =
    identity: the table landed on exactly its own ids)."""
    fresh = len(dictionary) == 0
    terms = []
    append = terms.append
    cursor = 0
    for _ in range(term_count):
        term, cursor = decode_term(payload, cursor)
        append(term)
    if cursor != len(payload):
        raise FormatError("%d trailing bytes after dictionary table"
                          % (len(payload) - cursor), cursor)
    remap = dictionary.encode_many(terms)
    if fresh:
        return None
    remap_arr = np.asarray(remap, dtype=np.int64)
    if np.array_equal(remap_arr, np.arange(term_count, dtype=np.int64)):
        return None
    return remap_arr


def _load_graph(payload: bytes, dictionary: TermDictionary,
                remap: Optional[np.ndarray], term_count: int) -> Graph:
    cursor = 0
    uri, cursor = decode_varstr(payload, cursor)
    version, cursor = decode_varint(payload, cursor)
    count, cursor = decode_varint(payload, cursor)
    columns = []
    for _ in range(3):
        length, cursor = decode_varint(payload, cursor)
        end = cursor + length
        if end > len(payload):
            raise FormatError("triple run exceeds graph section", cursor,
                              torn=True)
        a, b, c = decode_sorted_triples(payload[cursor:end], count)
        cursor = end
        if count and max(int(a[-1]), int(b.max()),
                         int(c.max())) >= term_count:
            raise FormatError("triple id beyond the %d-term dictionary"
                              % term_count)
        # Duplicate rows would make the deferred index under-count; the
        # columns are fully sorted, so duplicates must be adjacent.
        if count > 1 and bool(np.any((a[1:] == a[:-1])
                                     & (b[1:] == b[:-1])
                                     & (c[1:] == c[:-1]))):
            raise FormatError("index holds duplicate triples")
        if remap is not None:
            # Remapped ids need not preserve the sort order the grouped
            # index build relies on — restore it.
            a, b, c = remap[a], remap[b], remap[c]
            order = np.lexsort((c, b, a))
            a, b, c = a[order], b[order], c[order]
        columns.append((a, b, c))
    if cursor != len(payload):
        raise FormatError("%d trailing bytes after graph section"
                          % (len(payload) - cursor), cursor)
    return SnapshotGraph.deferred(uri, dictionary, columns, count,
                                  version)


def _nested_index(a: np.ndarray, b: np.ndarray, c: np.ndarray,
                  count: int) -> Dict[int, Dict[int, set]]:
    """Rebuild one nested ``{a: {b: {c, ...}}}`` index from sorted
    columns.  Sort order means every ``(a, b)`` group is a contiguous
    slice: group boundaries come from one vectorized comparison, the
    ``c`` buckets are built by C-level ``set()`` over list slices, and
    the inner dicts by ``zip`` — per-*group* Python work instead of
    per-triple ``setdefault`` probing.  The degenerate-but-common
    fanout-1 shapes (every ``(a, b)`` group a singleton; every ``a``
    under one ``b``) skip the slice machinery entirely: set and dict
    displays inside one comprehension are ~5x cheaper per group."""
    if count == 0:
        return {}
    change = np.flatnonzero((a[1:] != a[:-1]) | (b[1:] != b[:-1])) + 1
    groups = len(change) + 1
    if groups == count:
        # Every (a, b) pair occurs once: c buckets are singletons.
        buckets = [{x} for x in c.tolist()]
        a_heads = a
        a_keys = a.tolist()
        b_keys = b.tolist()
    else:
        starts = np.concatenate((np.zeros(1, dtype=np.int64), change))
        ends = np.concatenate((change,
                               np.asarray([count], dtype=np.int64)))
        c_list = c.tolist()
        buckets = list(map(set, map(c_list.__getitem__,
                                    map(slice, starts.tolist(),
                                        ends.tolist()))))
        if sum(map(len, buckets)) != count:
            raise FormatError("index holds duplicate triples")
        a_heads = a[starts]
        a_keys = a_heads.tolist()
        b_keys = b[starts].tolist()
    outer = np.flatnonzero(a_heads[1:] != a_heads[:-1]) + 1
    if len(outer) + 1 == groups:
        # Every a key has exactly one b key: inner dicts are singletons.
        return {ak: {bk: bucket}
                for ak, bk, bucket in zip(a_keys, b_keys, buckets)}
    group_starts = [0] + outer.tolist()
    group_ends = outer.tolist() + [groups]
    index: Dict[int, Dict[int, set]] = {}
    for gs, ge in zip(group_starts, group_ends):
        index[a_keys[gs]] = dict(zip(b_keys[gs:ge], buckets[gs:ge]))
    return index
