"""Crash-safe persistent storage for the RDF graph substrate.

Everything above this package treats a :class:`~repro.rdf.graph.Graph` as
an in-memory structure rebuilt per process.  This package makes that
structure *durable*: a :class:`GraphStore` owns a directory holding

* checksummed binary **snapshots** — the term dictionary as a
  length-prefixed string table and each graph's triples as delta-encoded
  sorted runs, every section framed with a CRC32
  (:mod:`~repro.storage.snapshot`),
* an append-only **write-ahead log** of add/remove records with
  per-record checksums and monotone sequence numbers
  (:mod:`~repro.storage.wal`), teed into by ``Graph.add``/``remove``
  while a store is attached, and
* **recovery**: ``open()`` loads the newest valid snapshot, replays the
  WAL tail, truncates at a torn final record, and degrades gracefully —
  a corrupt snapshot falls back to the previous generation, an
  unreadable record *between* intact ones surfaces a classified
  :class:`~repro.sparql.errors.WalTruncatedError` instead of a partial,
  silently-wrong graph (:mod:`~repro.storage.store`).

The package is proven against the crash-injection plane in
:mod:`~repro.storage.fileio`: every byte boundary of every write the
store performs can be turned into a simulated crash, and the crash-matrix
suite holds recovery to the "pre- or post-mutation state, never in
between" invariant.
"""

from .fileio import (CrashPoint, CrashingIO, SimulatedCrash, StorageIO,
                     bit_flip_points, corrupt_bytes, flip_bit,
                     truncate_file)
from .format import (FormatError, decode_varint, decode_varint_stream,
                     encode_varint)
from .snapshot import list_snapshots, load_snapshot, write_snapshot
from .store import GraphStore, RecoveryReport
from .wal import WalRecord, WriteAheadLog, replay_wal

__all__ = [
    "GraphStore", "RecoveryReport",
    "WriteAheadLog", "WalRecord", "replay_wal",
    "write_snapshot", "load_snapshot", "list_snapshots",
    "StorageIO", "CrashingIO", "CrashPoint", "SimulatedCrash",
    "flip_bit", "corrupt_bytes", "truncate_file", "bit_flip_points",
    "FormatError", "encode_varint", "decode_varint",
    "decode_varint_stream",
]
