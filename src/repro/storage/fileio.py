"""The store's file-system seam, instrumented for crash injection.

Every byte the durable store puts on disk goes through a
:class:`StorageIO` object, so the crash-matrix suite can substitute
:class:`CrashingIO` and kill the process (by raising
:class:`SimulatedCrash`) at *any byte boundary of any write*, before any
rename, or before any fsync — the full space of states a real power cut
can leave behind under the "written bytes are durable" model the
simulation uses (fsync batching is a throughput knob here, not a
correctness one; see :mod:`~repro.storage.wal`).

The discipline mirrors :mod:`repro.sparql.faults`: schedules are plain
data (:class:`CrashPoint`), enumeration is deterministic, and nothing
depends on ``PYTHONHASHSEED`` or wall-clock time, so a failing crash
point replays bit-identically from its ``(op_index, partial)`` pair
alone.  :func:`flip_bit` / :func:`corrupt_bytes` / :func:`truncate_file`
are the post-hoc corruption injectors (bit rot, torn pages) used to
exercise the checksum and fallback paths, and :func:`bit_flip_points`
draws a seeded sample of flip offsets for sweep tests.
"""

from __future__ import annotations

import os
import random
from typing import List, NamedTuple, Optional, Tuple

__all__ = ["SimulatedCrash", "CrashPoint", "StorageIO", "CrashingIO",
           "FileHandle", "flip_bit", "corrupt_bytes", "truncate_file",
           "bit_flip_points"]


class SimulatedCrash(Exception):
    """An injected process death.  Raised by :class:`CrashingIO` when its
    schedule says so; the store must never catch it — the test harness
    does, then reopens the directory to verify recovery."""

    def __init__(self, message: str, op_index: int, partial: int):
        super().__init__(message)
        self.op_index = op_index
        self.partial = partial


class CrashPoint(NamedTuple):
    """Kill the process at mutating op ``op_index`` (0-based, in the
    order :class:`CrashingIO` counts them), after ``partial`` bytes of
    that op have reached the file.  For non-write ops (rename, remove,
    truncate, fsync) ``partial`` is ignored: the op simply never
    happens."""

    op_index: int
    partial: int = 0


class FileHandle:
    """A write handle whose every mutation is routed through its IO."""

    __slots__ = ("_io", "_fobj", "path")

    def __init__(self, io: "StorageIO", fobj, path: str):
        self._io = io
        self._fobj = fobj
        self.path = path

    def write(self, data: bytes) -> None:
        self._io._write(self._fobj, data, self.path)

    def fsync(self) -> None:
        self._io._fsync(self._fobj, self.path)

    def tell(self) -> int:
        return self._fobj.tell()

    def close(self) -> None:
        self._fobj.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class StorageIO:
    """Real file-system operations (the production IO).

    Only *mutating* operations live here; reads are plain ``open()``
    everywhere — a crash cannot corrupt a read, and recovery is
    deliberately read-only until it knows what it is doing.
    """

    def open_write(self, path: str) -> FileHandle:
        """Create/truncate ``path`` for writing."""
        return FileHandle(self, open(path, "wb"), path)

    def open_append(self, path: str) -> FileHandle:
        return FileHandle(self, open(path, "ab"), path)

    # -- primitive mutations (the instrumented seam) -------------------
    def _write(self, fobj, data: bytes, path: str) -> None:
        fobj.write(data)

    def _fsync(self, fobj, path: str) -> None:
        fobj.flush()
        os.fsync(fobj.fileno())

    def replace(self, src: str, dst: str) -> None:
        """Atomic rename (the commit point of a snapshot)."""
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        os.remove(path)

    def truncate(self, path: str, size: int) -> None:
        """Cut ``path`` down to ``size`` bytes (torn-tail cleanup)."""
        with open(path, "r+b") as fobj:
            fobj.truncate(size)

    def fsync_dir(self, path: str) -> None:
        """Durably record directory-entry changes (best effort — some
        platforms refuse to fsync a directory fd)."""
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)


class CrashingIO(StorageIO):
    """A :class:`StorageIO` that records every mutating op and can die.

    With ``crash_point=None`` it is a pure recorder: run a workload once
    and read :attr:`ops` to enumerate every crash point it admits (each
    entry is ``(kind, path, size)``; writes admit ``size + 1`` partial
    positions, the other kinds exactly one).  With a
    :class:`CrashPoint`, the scheduled op performs only its partial
    prefix — ``data[:partial]`` reaches the file for a write, nothing
    happens for a rename/remove/truncate/fsync — and
    :class:`SimulatedCrash` is raised.  Every op *after* the crash also
    raises, so a store that incorrectly swallows the first crash cannot
    quietly keep writing.
    """

    def __init__(self, crash_point: Optional[CrashPoint] = None):
        self.crash_point = crash_point
        self.ops: List[Tuple[str, str, int]] = []
        self.crashed = False

    def _op(self, kind: str, path: str, size: int = 0) -> Optional[int]:
        """Count one op; returns the partial byte budget when this op is
        the scheduled crash (None = proceed normally)."""
        if self.crashed:
            raise SimulatedCrash("I/O after simulated crash (%s %s)"
                                 % (kind, path), len(self.ops), 0)
        index = len(self.ops)
        self.ops.append((kind, path, size))
        point = self.crash_point
        if point is not None and index == point.op_index:
            self.crashed = True
            return max(0, min(point.partial, size))
        return None

    def _write(self, fobj, data: bytes, path: str) -> None:
        partial = self._op("write", path, len(data))
        if partial is None:
            fobj.write(data)
            return
        if partial:
            fobj.write(data[:partial])
        fobj.flush()
        raise SimulatedCrash("crash after %d/%d bytes of write to %s"
                             % (partial, len(data), path),
                             len(self.ops) - 1, partial)

    def _fsync(self, fobj, path: str) -> None:
        if self._op("fsync", path) is not None:
            raise SimulatedCrash("crash before fsync of %s" % path,
                                 len(self.ops) - 1, 0)
        super()._fsync(fobj, path)

    def replace(self, src: str, dst: str) -> None:
        if self._op("replace", dst) is not None:
            raise SimulatedCrash("crash before rename to %s" % dst,
                                 len(self.ops) - 1, 0)
        super().replace(src, dst)

    def remove(self, path: str) -> None:
        if self._op("remove", path) is not None:
            raise SimulatedCrash("crash before remove of %s" % path,
                                 len(self.ops) - 1, 0)
        super().remove(path)

    def truncate(self, path: str, size: int) -> None:
        if self._op("truncate", path) is not None:
            raise SimulatedCrash("crash before truncate of %s" % path,
                                 len(self.ops) - 1, 0)
        super().truncate(path, size)

    def fsync_dir(self, path: str) -> None:
        if self._op("fsync_dir", path) is not None:
            raise SimulatedCrash("crash before dir fsync of %s" % path,
                                 len(self.ops) - 1, 0)
        super().fsync_dir(path)


# ----------------------------------------------------------------------
# Post-hoc corruption injectors (bit rot, torn pages)
# ----------------------------------------------------------------------
def flip_bit(path: str, byte_index: int, bit: int = 0) -> None:
    """Flip one bit of an existing file in place."""
    with open(path, "r+b") as fobj:
        fobj.seek(byte_index)
        value = fobj.read(1)
        if not value:
            raise ValueError("byte index %d past end of %s"
                             % (byte_index, path))
        fobj.seek(byte_index)
        fobj.write(bytes([value[0] ^ (1 << (bit & 7))]))


def corrupt_bytes(path: str, offset: int, data: bytes) -> None:
    """Overwrite ``len(data)`` bytes of an existing file at ``offset``."""
    with open(path, "r+b") as fobj:
        fobj.seek(offset)
        fobj.write(data)


def truncate_file(path: str, size: int) -> None:
    """Tear the tail off a file (what an interrupted write leaves)."""
    with open(path, "r+b") as fobj:
        fobj.truncate(size)


def bit_flip_points(size: int, count: int, seed: int = 0
                    ) -> List[Tuple[int, int]]:
    """A deterministic sample of ``(byte_index, bit)`` flip targets.

    Drawn from ``random.Random(seed)`` so sweeps are reproducible and
    independent of ``PYTHONHASHSEED`` (the :mod:`repro.sparql.faults`
    discipline).
    """
    if size <= 0:
        return []
    rng = random.Random(("bitflip", seed).__repr__())
    return [(rng.randrange(size), rng.randrange(8))
            for _ in range(count)]
