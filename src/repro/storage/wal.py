"""Append-only write-ahead log of graph mutations.

A WAL segment file is::

    magic "RPRWAL01"
    record*   each:  varint(payload_len) | payload | crc32(payload, 4 LE)

with a record payload of::

    varint seqno | op byte ('A' add / 'R' remove) | varint version_after
    | varstr graph_uri | varstr N-Triples line

The triple itself travels as one N-Triples line produced by
:func:`repro.rdf.ntriples.serialize_triple` and replayed through
:func:`~repro.rdf.ntriples.parse_line` — the same codec the bulk loader
uses, so the round-trip property tests cover the WAL's text encoding for
free.

Segments are named ``wal-<16-digit start seqno>.log``; a checkpoint
starts a fresh segment at ``last_seqno + 1`` and older segments are
pruned once no retained snapshot needs them.  Sequence numbers are
assigned by the single writer and increase by exactly one per record,
which is what lets recovery tell a *torn tail* (data simply stops; safe
to truncate) from a *mid-log hole* (a later record proves committed data
existed past the damage; surfaced as
:class:`~repro.sparql.errors.WalTruncatedError`, never replayed around).

``fsync`` batching (``sync_every``) bounds how many acknowledged records
a real power cut can lose; the crash matrix instead runs under the
"written bytes are durable" model of :mod:`~repro.storage.fileio`, where
batching is purely a throughput knob.
"""

from __future__ import annotations

import os
import re
from struct import Struct
from typing import List, NamedTuple, Optional, Tuple

from ..sparql.errors import StorageError, WalTruncatedError
from .fileio import FileHandle, StorageIO
from .format import (FormatError, crc32, decode_varint, decode_varstr,
                     write_varint, write_varstr)

__all__ = ["WAL_MAGIC", "WalRecord", "WriteAheadLog", "ReplayResult",
           "replay_wal", "list_wal_segments", "wal_segment_path",
           "OP_ADD", "OP_REMOVE"]

WAL_MAGIC = b"RPRWAL01"
OP_ADD = "A"
OP_REMOVE = "R"

#: A record length decoded from garbage bytes is rejected past this.
MAX_RECORD_BYTES = 1 << 26
#: How far past a damaged record recovery scans for the next valid one.
RESYNC_WINDOW = 1 << 16

_U32 = Struct("<I")
_NAME = re.compile(r"^wal-(\d{16})\.log$")


def wal_segment_path(directory: str, start_seqno: int) -> str:
    return os.path.join(directory, "wal-%016d.log" % start_seqno)


def list_wal_segments(directory: str) -> List[Tuple[int, str]]:
    """``(start_seqno, path)`` for every segment, oldest first."""
    found = []
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    for name in names:
        match = _NAME.match(name)
        if match:
            found.append((int(match.group(1)),
                          os.path.join(directory, name)))
    found.sort()
    return found


class WalRecord(NamedTuple):
    """One logged mutation."""

    seqno: int
    op: str                 # OP_ADD or OP_REMOVE
    graph_uri: str
    triple_line: str        # one N-Triples line, no newline
    version: int            # graph.version *after* applying this record

    def encode(self) -> bytes:
        payload = bytearray()
        write_varint(payload, self.seqno)
        payload.append(ord(self.op))
        write_varint(payload, self.version)
        write_varstr(payload, self.graph_uri)
        write_varstr(payload, self.triple_line)
        out = bytearray()
        write_varint(out, len(payload))
        out += payload
        out += _U32.pack(crc32(bytes(payload)))
        return bytes(out)


def _read_record(data: bytes, pos: int) -> Tuple[WalRecord, int]:
    """Decode one framed record at ``pos``; raises :class:`FormatError`
    (``torn=True`` when the data ends inside the frame)."""
    length, body = decode_varint(data, pos)
    if length > MAX_RECORD_BYTES:
        raise FormatError("record length %d implausible" % length, pos)
    end = body + length
    if end + 4 > len(data):
        raise FormatError("record runs past end of data", pos, torn=True)
    payload = data[body:end]
    (stored,) = _U32.unpack_from(data, end)
    if crc32(payload) != stored:
        raise FormatError("record checksum mismatch", pos)
    cursor = 0
    seqno, cursor = decode_varint(payload, cursor)
    if cursor >= len(payload):
        raise FormatError("record payload truncated", pos)
    op = chr(payload[cursor])
    cursor += 1
    if op not in (OP_ADD, OP_REMOVE):
        raise FormatError("unknown wal op %r" % op, pos)
    version, cursor = decode_varint(payload, cursor)
    graph_uri, cursor = decode_varstr(payload, cursor)
    triple_line, cursor = decode_varstr(payload, cursor)
    if cursor != len(payload):
        raise FormatError("%d trailing bytes in wal record"
                          % (len(payload) - cursor), pos)
    return WalRecord(seqno, op, graph_uri, triple_line, version), end + 4


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
class WriteAheadLog:
    """The single-writer append side of the log.

    ``append`` assigns the next sequence number, frames the record, and
    fsyncs every ``sync_every`` records (``sync_every=1`` = synchronous,
    ``0`` = only on :meth:`flush`/:meth:`close`).  The log is
    **fail-stop**: once any append raises, every later append raises
    :class:`~repro.sparql.errors.StorageError` — a writer that lost track
    of what reached the disk must not keep acknowledging mutations.
    """

    def __init__(self, io: StorageIO, directory: str, start_seqno: int,
                 sync_every: int = 64):
        self._io = io
        self._directory = directory
        self._sync_every = sync_every
        self._last_seqno = start_seqno - 1
        self._pending = 0
        self._failed: Optional[str] = None
        self.path = wal_segment_path(directory, start_seqno)
        self.fsyncs = 0
        self.records = 0
        self.bytes_written = 0
        self._handle: Optional[FileHandle] = io.open_write(self.path)
        try:
            self._handle.write(WAL_MAGIC)
            self._handle.fsync()
            self.fsyncs += 1
            io.fsync_dir(directory)
        except BaseException:
            self._fail("segment header write failed")
            raise

    @property
    def last_seqno(self) -> int:
        return self._last_seqno

    def _fail(self, why: str) -> None:
        self._failed = why
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.close()
            except Exception:
                pass

    def append(self, op: str, graph_uri: str, triple_line: str,
               version: int) -> int:
        """Durably queue one mutation; returns its sequence number."""
        if self._failed is not None:
            raise StorageError("write-ahead log is fail-stopped (%s)"
                               % self._failed)
        if self._handle is None:
            raise StorageError("write-ahead log is closed")
        seqno = self._last_seqno + 1
        frame = WalRecord(seqno, op, graph_uri, triple_line,
                          version).encode()
        try:
            self._handle.write(frame)
            self._pending += 1
            if self._sync_every and self._pending >= self._sync_every:
                self._handle.fsync()
                self.fsyncs += 1
                self._pending = 0
        except BaseException:
            self._fail("append of seqno %d failed" % seqno)
            raise
        self._last_seqno = seqno
        self.records += 1
        self.bytes_written += len(frame)
        return seqno

    def flush(self) -> None:
        """fsync everything appended so far."""
        if self._failed is not None or self._handle is None:
            return
        if self._pending:
            try:
                self._handle.fsync()
                self.fsyncs += 1
                self._pending = 0
            except BaseException:
                self._fail("flush failed")
                raise

    def close(self) -> None:
        if self._handle is None:
            return
        try:
            self.flush()
        finally:
            handle, self._handle = self._handle, None
            if handle is not None:
                handle.close()


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
class ReplayResult:
    """What came back from scanning the log past a snapshot.

    ``records`` hold every replayable mutation with ``seqno >
    from_seqno``; ``last_seqno`` is the highest sequence recovered
    (``from_seqno`` when the log added nothing).  ``truncated_bytes``
    counts tail bytes dropped from the final segment (torn writes);
    ``resynced_bytes`` counts mid-log garbage skipped *without* losing
    any sequence number.  ``error`` is a
    :class:`~repro.sparql.errors.WalTruncatedError` when committed
    records were provably lost mid-log — the store raises it rather than
    serve a silently-wrong graph.
    """

    def __init__(self, from_seqno: int):
        self.records: List[WalRecord] = []
        self.last_seqno = from_seqno
        self.truncated_bytes = 0
        self.resynced_bytes = 0
        self.segments_read = 0
        self.error: Optional[WalTruncatedError] = None


def _resync(data: bytes, start: int
            ) -> Optional[Tuple[WalRecord, int]]:
    """Scan forward (bounded) for the next decodable record; returns
    ``(record, offset)`` or None."""
    end = min(len(data), start + RESYNC_WINDOW)
    for off in range(start + 1, end):
        try:
            record, _ = _read_record(data, off)
        except FormatError:
            continue
        return record, off
    return None


def replay_wal(directory: str, from_seqno: int,
               io: Optional[StorageIO] = None,
               truncate_torn: bool = True) -> ReplayResult:
    """Scan every WAL segment and recover the records past ``from_seqno``.

    Damage handling, in decreasing order of good news:

    * a valid record follows the damage carrying exactly the next
      expected sequence number — benign garbage, skip and resume;
    * no further record exists in the **final** segment — a torn tail:
      drop it (and physically truncate the file when ``truncate_torn``),
      reporting the byte count so the store can de-cohere caches;
    * a later record proves a sequence number was lost — fill in
      ``result.error`` with the last recoverable sequence number and stop
      replaying (the caller raises; a hole is never replayed around).
    """
    if io is None:
        io = StorageIO()
    result = ReplayResult(from_seqno)
    segments = list_wal_segments(directory)
    prev_seqno: Optional[int] = None

    for index, (start, path) in enumerate(segments):
        is_final = index == len(segments) - 1
        if not is_final and segments[index + 1][0] <= from_seqno + 1:
            continue        # every record here is inside the snapshot
        try:
            with open(path, "rb") as fobj:
                data = fobj.read()
        except OSError as exc:
            raise StorageError("cannot read wal segment %s: %s"
                               % (path, exc)) from exc
        result.segments_read += 1
        # A segment *name* is a durability claim: records up to
        # ``start - 1`` existed when it was created.  If neither the
        # snapshot nor the records read so far vouch for them, data is
        # missing even when no damaged record is ever seen (e.g. every
        # earlier segment was lost but this one is empty).
        if start > from_seqno + 1 \
                and (prev_seqno is None or start > prev_seqno + 1):
            result.error = WalTruncatedError(
                "wal segment %s begins at seqno %d but records up to %d "
                "are unaccounted for"
                % (path, start, start - 1),
                recovered_seqno=result.last_seqno)
            break
        n = len(data)
        if not n:
            continue        # empty placeholder from an earlier recovery
        if data[:len(WAL_MAGIC)] != WAL_MAGIC:
            if is_final and WAL_MAGIC.startswith(data):
                # crash while the segment header itself was being
                # written; no record can have committed here
                result.truncated_bytes += n
                if truncate_torn:
                    io.truncate(path, 0)
                continue
            result.error = WalTruncatedError(
                "wal segment %s has a corrupt header" % path,
                recovered_seqno=result.last_seqno)
            break

        pos = valid_end = len(WAL_MAGIC)
        while pos < n:
            try:
                record, nxt = _read_record(data, pos)
            except FormatError:
                found = _resync(data, pos)
                if found is None:
                    tail = n - valid_end
                    if is_final:
                        result.truncated_bytes += tail
                        if truncate_torn and tail:
                            io.truncate(path, valid_end)
                    else:
                        # let the next segment's first seqno decide
                        # whether anything was actually lost
                        result.resynced_bytes += tail
                    break
                record, off = found
                floor = prev_seqno if prev_seqno is not None else from_seqno
                if record.seqno > max(floor, from_seqno) + 1:
                    result.error = WalTruncatedError(
                        "wal damaged in %s before seqno %d"
                        % (path, record.seqno),
                        recovered_seqno=result.last_seqno)
                    break
                result.resynced_bytes += off - pos
                pos = off
                continue
            floor = prev_seqno if prev_seqno is not None else from_seqno
            if record.seqno > max(floor, from_seqno) + 1:
                result.error = WalTruncatedError(
                    "wal sequence gap in %s: expected %d, found %d"
                    % (path, floor + 1, record.seqno),
                    recovered_seqno=result.last_seqno)
                break
            if prev_seqno is not None and record.seqno <= prev_seqno:
                result.error = WalTruncatedError(
                    "wal sequence regressed in %s: %d after %d"
                    % (path, record.seqno, prev_seqno),
                    recovered_seqno=result.last_seqno)
                break
            prev_seqno = record.seqno
            if record.seqno > from_seqno:
                result.records.append(record)
                result.last_seqno = record.seqno
            pos = valid_end = nxt
        if result.error is not None:
            break
    return result
