"""The store's binary vocabulary: varints, framed sections, term codecs.

Three building blocks shared by the snapshot and WAL layers:

* **varints** — unsigned LEB128 (7 data bits per byte, high bit =
  continuation).  :func:`decode_varint_stream` decodes a whole payload
  in one pass over the raw bytes (no per-value function calls).
* **framed sections** — ``tag(1) | length(4, LE) | payload | crc32(4,
  LE)``.  The CRC covers the payload; a frame that does not check out
  raises :class:`FormatError` with the offending offset, and a frame cut
  off by EOF reports ``torn=True`` so callers can distinguish bit rot
  from an interrupted write.
* **term and triple codecs** — RDF terms as kind-tagged length-prefixed
  UTF-8 strings (the dictionary string table), and sorted id-triple runs
  as packed columnar arrays: the sort column delta-encoded, each column
  at the narrowest fixed width that fits, bulk-decoded with
  ``numpy.frombuffer`` + ``cumsum`` (see :func:`encode_sorted_triples`).
"""

from __future__ import annotations

import zlib
from struct import Struct
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..rdf.terms import BlankNode, Literal, Node, URIRef

__all__ = [
    "FormatError", "encode_varint", "decode_varint",
    "decode_varint_stream", "encode_varstr", "decode_varstr",
    "frame_section", "read_section", "iter_sections",
    "encode_term", "decode_term",
    "encode_sorted_triples", "decode_sorted_triples",
    "crc32",
]

_U32 = Struct("<I")

#: Framing overhead around a section payload: tag + length + crc32.
SECTION_OVERHEAD = 1 + 4 + 4


class FormatError(ValueError):
    """A malformed frame, varint, or term record.

    ``offset`` is the file/byte offset the failure was detected at;
    ``torn`` is True when the data simply *ends* mid-structure (the
    signature of an interrupted write) as opposed to failing a checksum
    or carrying an impossible value (the signature of corruption).
    """

    def __init__(self, message: str, offset: int = 0, torn: bool = False):
        super().__init__("%s (at byte %d)" % (message, offset))
        self.offset = offset
        self.torn = torn


def crc32(payload: bytes) -> int:
    return zlib.crc32(payload) & 0xFFFFFFFF


# ----------------------------------------------------------------------
# Varints
# ----------------------------------------------------------------------
def encode_varint(value: int) -> bytes:
    """Unsigned LEB128."""
    if value < 0:
        raise ValueError("varints are unsigned, got %d" % value)
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def write_varint(out: bytearray, value: int) -> None:
    """Append a varint to a bytearray (the hot encode path)."""
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def decode_varint(data: bytes, pos: int = 0) -> Tuple[int, int]:
    """Decode one varint; returns ``(value, next_pos)``."""
    value = 0
    shift = 0
    n = len(data)
    while True:
        if pos >= n:
            raise FormatError("varint runs past end of data", pos,
                              torn=True)
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise FormatError("varint wider than 64 bits", pos)


def decode_varint_stream(data: bytes, expect: Optional[int] = None
                         ) -> List[int]:
    """Decode every varint in ``data`` in one tight pass.

    This is the snapshot loader's inner loop: iterating a ``bytes``
    object yields ints at C speed, so the whole triple section decodes
    with one Python-level loop over bytes and no per-value call
    overhead.  ``expect`` (when given) validates the count.
    """
    out: List[int] = []
    append = out.append
    acc = 0
    shift = 0
    for byte in data:
        if byte & 0x80:
            acc |= (byte & 0x7F) << shift
            shift += 7
            if shift > 63:
                raise FormatError("varint wider than 64 bits", 0)
        else:
            append(acc | (byte << shift))
            acc = 0
            shift = 0
    if shift:
        raise FormatError("payload ends mid-varint", len(data), torn=True)
    if expect is not None and len(out) != expect:
        raise FormatError("expected %d varints, decoded %d"
                          % (expect, len(out)), len(data))
    return out


# ----------------------------------------------------------------------
# Length-prefixed strings
# ----------------------------------------------------------------------
def encode_varstr(text: str) -> bytes:
    raw = text.encode("utf-8")
    return encode_varint(len(raw)) + raw


def write_varstr(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    write_varint(out, len(raw))
    out += raw


def decode_varstr(data: bytes, pos: int = 0) -> Tuple[str, int]:
    length, pos = decode_varint(data, pos)
    end = pos + length
    if end > len(data):
        raise FormatError("string runs past end of data", pos, torn=True)
    try:
        return data[pos:end].decode("utf-8"), end
    except UnicodeDecodeError:
        raise FormatError("string is not valid UTF-8", pos)


# ----------------------------------------------------------------------
# Framed sections
# ----------------------------------------------------------------------
def frame_section(tag: bytes, payload: bytes) -> bytes:
    """``tag(1) | length(4 LE) | payload | crc32(payload)(4 LE)``."""
    if len(tag) != 1:
        raise ValueError("section tag must be one byte")
    return (tag + _U32.pack(len(payload)) + payload
            + _U32.pack(crc32(payload)))


def read_section(data: bytes, pos: int) -> Tuple[bytes, bytes, int]:
    """Read one framed section; returns ``(tag, payload, next_pos)``.

    Raises :class:`FormatError` — ``torn=True`` when the data ends
    inside the frame, ``torn=False`` on a checksum mismatch.
    """
    n = len(data)
    if pos + 5 > n:
        raise FormatError("section header runs past end of data", pos,
                          torn=True)
    tag = data[pos:pos + 1]
    (length,) = _U32.unpack_from(data, pos + 1)
    start = pos + 5
    end = start + length
    if end + 4 > n:
        raise FormatError("section payload runs past end of data", pos,
                          torn=True)
    payload = data[start:end]
    (stored,) = _U32.unpack_from(data, end)
    if crc32(payload) != stored:
        raise FormatError("section %r checksum mismatch" % tag, pos)
    return tag, payload, end + 4


def iter_sections(data: bytes, pos: int = 0
                  ) -> Iterator[Tuple[bytes, bytes]]:
    """Yield ``(tag, payload)`` for every section until end of data."""
    n = len(data)
    while pos < n:
        tag, payload, pos = read_section(data, pos)
        yield tag, payload


# ----------------------------------------------------------------------
# Term codec (the dictionary string table entries)
# ----------------------------------------------------------------------
_KIND_URI = 0x55       # 'U'
_KIND_BNODE = 0x42     # 'B'
_KIND_PLAIN = 0x4C     # 'L'  plain literal
_KIND_TYPED = 0x54     # 'T'  literal with datatype
_KIND_LANG = 0x47      # 'G'  literal with language tag


def encode_term(out: bytearray, term: Node) -> None:
    """Append one kind-tagged term record to ``out``."""
    if isinstance(term, URIRef):
        out.append(_KIND_URI)
        write_varstr(out, term.value)
    elif isinstance(term, Literal):
        if term.language is not None:
            out.append(_KIND_LANG)
            write_varstr(out, term.lexical)
            write_varstr(out, term.language)
        elif term.datatype is not None:
            out.append(_KIND_TYPED)
            write_varstr(out, term.lexical)
            write_varstr(out, term.datatype)
        else:
            out.append(_KIND_PLAIN)
            write_varstr(out, term.lexical)
    elif isinstance(term, BlankNode):
        out.append(_KIND_BNODE)
        write_varstr(out, term.label)
    else:
        raise ValueError("cannot persist term %r" % (term,))


def decode_term(data: bytes, pos: int) -> Tuple[Node, int]:
    if pos >= len(data):
        raise FormatError("term record runs past end of data", pos,
                          torn=True)
    kind = data[pos]
    pos += 1
    if kind == _KIND_URI:
        value, pos = decode_varstr(data, pos)
        return URIRef(value), pos
    if kind == _KIND_BNODE:
        label, pos = decode_varstr(data, pos)
        return BlankNode(label), pos
    if kind == _KIND_PLAIN:
        lexical, pos = decode_varstr(data, pos)
        return Literal(lexical), pos
    if kind == _KIND_TYPED:
        lexical, pos = decode_varstr(data, pos)
        datatype, pos = decode_varstr(data, pos)
        return Literal(lexical, datatype=datatype), pos
    if kind == _KIND_LANG:
        lexical, pos = decode_varstr(data, pos)
        language, pos = decode_varstr(data, pos)
        return Literal(lexical, language=language), pos
    raise FormatError("unknown term kind 0x%02X" % kind, pos - 1)


# ----------------------------------------------------------------------
# Delta-encoded sorted triple runs (columnar, fixed-width)
# ----------------------------------------------------------------------
_COLUMN_DTYPES = {1: np.dtype("<u1"), 2: np.dtype("<u2"),
                  4: np.dtype("<u4"), 8: np.dtype("<u8")}


def _column_width(max_value: int) -> int:
    if max_value <= 0xFF:
        return 1
    if max_value <= 0xFFFF:
        return 2
    if max_value <= 0xFFFFFFFF:
        return 4
    return 8


def encode_sorted_triples(a: Sequence[int], b: Sequence[int],
                          c: Sequence[int]) -> bytes:
    """Encode one sorted ordering of id triples as three packed columns.

    ``a`` is the sort column and must be non-decreasing; it is stored as
    first-order deltas.  ``b`` and ``c`` are stored absolute.  Each
    column is packed at the narrowest of 1/2/4/8 bytes per value
    (little-endian) that fits its maximum, recorded in a three-byte
    width header — so a dense run costs a handful of bytes per triple
    while the loader reconstructs whole columns with bulk ``frombuffer``
    + ``cumsum`` instead of a per-value decode loop.  That bulk decode
    is what keeps reopen-from-snapshot an order of magnitude cheaper
    than re-parsing N-Triples text.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    c = np.asarray(c, dtype=np.int64)
    if not (a.size == b.size == c.size):
        raise ValueError("column lengths differ")
    if a.size == 0:
        return b"\x01\x01\x01"
    da = np.diff(a, prepend=np.int64(0))
    if int(da.min()) < 0:
        raise ValueError("run is not sorted on its first column")
    if int(b.min()) < 0 or int(c.min()) < 0:
        raise ValueError("term ids cannot be negative")
    columns = []
    widths = bytearray()
    for column in (da, b, c):
        width = _column_width(int(column.max()))
        widths.append(width)
        columns.append(column.astype(_COLUMN_DTYPES[width]).tobytes())
    return bytes(widths) + b"".join(columns)


def decode_sorted_triples(payload: bytes, count: int
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`encode_sorted_triples`.

    Returns the three reconstructed columns ``(a, b, c)`` with ``a``
    non-decreasing ``int64`` (the delta ``cumsum`` accumulates in 64
    bits); ``b`` and ``c`` come back as zero-copy views at their
    stored width — ``tolist``/comparison/indexing consumers never need
    the widening, and skipping it saves two full-column copies on the
    recovery path.  The whole run decodes with three ``frombuffer``
    calls and one ``cumsum`` — no per-triple work.
    """
    if len(payload) < 3:
        raise FormatError("triple run header runs past end of data",
                          len(payload), torn=True)
    widths = payload[:3]
    for width in widths:
        if width not in _COLUMN_DTYPES:
            raise FormatError("impossible column width %d" % width)
    expected = 3 + count * (widths[0] + widths[1] + widths[2])
    if len(payload) != expected:
        raise FormatError(
            "triple run is %d bytes, %d triples need %d"
            % (len(payload), count, expected), len(payload),
            torn=len(payload) < expected)
    pos = 3
    columns = []
    for width in widths:
        end = pos + count * width
        columns.append(np.frombuffer(payload[pos:end],
                                     dtype=_COLUMN_DTYPES[width]))
        pos = end
    a = np.cumsum(columns[0], dtype=np.int64)
    return a, columns[1], columns[2]
