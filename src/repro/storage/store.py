"""The durable graph store: recovery, checkpointing, WAL teeing.

:class:`GraphStore` owns a directory of snapshot generations
(``snapshot-NNNNNN.snap``) and WAL segments (``wal-<seqno>.log``) and
stitches the other storage modules into the lifecycle the engine sees:

* :meth:`GraphStore.open` — recover: load the newest *valid* snapshot
  (corrupt generations are quarantined as ``*.corrupt`` and the previous
  one stands in), replay the WAL tail past it, truncate a torn final
  record, and start a fresh segment.  A mid-log hole raises
  :class:`~repro.sparql.errors.WalTruncatedError` instead of serving a
  silently-wrong graph.
* **teeing** — an attached :class:`~repro.rdf.graph.Graph` calls
  :meth:`_record_add` / :meth:`_record_remove` *before* touching its
  indexes, so a failed append leaves memory and disk agreeing (and the
  WAL is fail-stop after the first failure).
* :meth:`GraphStore.checkpoint` — fold the log into a new snapshot
  generation (atomic rename), roll the WAL, and prune generations and
  segments nothing retained still needs.

Cache coherence across restarts: graph ``version`` counters are
persisted in both snapshot and WAL records and restored on recovery, so
:class:`~repro.sparql.engine.Engine` fingerprints — and therefore
``ResultCache`` and plan-cache keys — stay valid.  When a torn tail cost
acknowledged-but-unsynced records, every recovered version is bumped past
anything the lost tail could have produced, so a cache primed before the
crash can never serve results for state that silently rolled back.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..rdf.dictionary import TermDictionary
from ..rdf.graph import Graph
from ..rdf.ntriples import parse_line, serialize_triple
from ..sparql.errors import StorageError
from .fileio import StorageIO
from .snapshot import list_snapshots, load_snapshot, write_snapshot
from .wal import OP_ADD, OP_REMOVE, WriteAheadLog, list_wal_segments, \
    replay_wal

__all__ = ["GraphStore", "RecoveryReport"]


class RecoveryReport:
    """What :meth:`GraphStore.open` found and did."""

    def __init__(self):
        self.created = False                 # nothing durable existed yet
        self.snapshot_generation: Optional[int] = None
        self.snapshot_seqno = 0              # last seqno inside the snapshot
        self.replayed_records = 0
        self.last_seqno = 0
        self.truncated_bytes = 0             # torn WAL tail dropped
        self.resynced_bytes = 0              # benign mid-log garbage skipped
        self.corrupt_snapshots: List[str] = []   # quarantined paths
        self.graphs: List[str] = []          # recovered graph URIs

    def __repr__(self):
        return ("RecoveryReport(generation=%r, replayed=%d, last_seqno=%d, "
                "truncated_bytes=%d, corrupt_snapshots=%d)"
                % (self.snapshot_generation, self.replayed_records,
                   self.last_seqno, self.truncated_bytes,
                   len(self.corrupt_snapshots)))


class GraphStore:
    """A directory-backed durable home for a set of graphs.

    >>> import tempfile
    >>> from repro.rdf.terms import URIRef
    >>> with tempfile.TemporaryDirectory() as home:
    ...     store = GraphStore(home)
    ...     report = store.open()
    ...     g = store.graph("http://example.org/g")
    ...     _ = g.add(URIRef("http://e/s"), URIRef("http://e/p"),
    ...               URIRef("http://e/o"))
    ...     store.close()                  # flushed: the add is durable
    ...     store2 = GraphStore(home)
    ...     report2 = store2.open()
    ...     len(store2.graph("http://example.org/g"))
    1

    Mutations on attached graphs are logged before they touch memory;
    :meth:`checkpoint` folds the log into a snapshot.  ``sync_every``
    batches WAL fsyncs (1 = synchronous); ``keep_generations`` snapshot
    generations are retained so recovery can fall back past a corrupt
    newest generation without losing WAL coverage.
    """

    def __init__(self, directory: str, io: Optional[StorageIO] = None,
                 sync_every: int = 64, keep_generations: int = 2,
                 dictionary: Optional[TermDictionary] = None):
        if keep_generations < 1:
            raise ValueError("keep_generations must be >= 1")
        self.directory = directory
        self._io = io if io is not None else StorageIO()
        self._sync_every = sync_every
        self._keep_generations = keep_generations
        self.dictionary = dictionary if dictionary is not None \
            else TermDictionary()
        self._graphs: Dict[str, Graph] = {}
        self._wal: Optional[WriteAheadLog] = None
        self._gen_seqnos: Dict[int, int] = {}   # generation -> last seqno
        self._lock = threading.Lock()
        self.counters = {
            "wal_records": 0, "wal_fsyncs": 0, "wal_bytes": 0,
            "checkpoints": 0, "recoveries": 0, "replayed_records": 0,
            "wal_truncated_bytes": 0, "wal_resynced_bytes": 0,
            "snapshots_quarantined": 0, "segments_pruned": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(self) -> RecoveryReport:
        """Recover the directory's durable state and start logging."""
        if self._wal is not None:
            raise StorageError("store is already open")
        os.makedirs(self.directory, exist_ok=True)
        report = RecoveryReport()

        # Leftover ``*.tmp`` files are snapshots whose write never
        # reached its atomic rename; they are garbage by construction.
        for name in sorted(os.listdir(self.directory)):
            if name.endswith(".tmp"):
                try:
                    self._io.remove(os.path.join(self.directory, name))
                except OSError:
                    pass

        from ..sparql.errors import CorruptSnapshotError
        loaded = None
        for generation, path in reversed(list_snapshots(self.directory)):
            try:
                loaded = load_snapshot(path, self.dictionary)
                break
            except CorruptSnapshotError:
                # Quarantine and fall back to the previous generation;
                # WAL retention keeps every segment the older snapshot
                # needs, so nothing is lost by stepping back.
                report.corrupt_snapshots.append(path)
                self.counters["snapshots_quarantined"] += 1
                try:
                    self._io.replace(path, path + ".corrupt")
                except OSError:
                    pass
        if loaded is not None:
            report.snapshot_generation = loaded.generation
            report.snapshot_seqno = loaded.last_seqno
            self._gen_seqnos[loaded.generation] = loaded.last_seqno
            for graph in loaded.graphs:
                self._graphs[graph.uri] = graph
        elif not list_wal_segments(self.directory):
            report.created = True

        replay = replay_wal(self.directory, report.snapshot_seqno,
                            io=self._io)
        if replay.error is not None:
            raise replay.error
        for record in replay.records:
            graph = self._graphs.get(record.graph_uri)
            if graph is None:
                graph = Graph(record.graph_uri,
                              dictionary=self.dictionary)
                self._graphs[record.graph_uri] = graph
            s, p, o = parse_line(record.triple_line)
            if record.op == OP_ADD:
                graph.add(s, p, o)
            else:
                graph.remove(s, p, o)
            # Replay restores the exact pre-crash version counter so
            # cache fingerprints taken before the restart stay honest.
            graph.version = record.version

        if replay.truncated_bytes:
            # A torn tail may have cost acknowledged records.  Each lost
            # record occupied at least one byte, so bumping every version
            # past ``truncated_bytes`` guarantees no fingerprint ever
            # equals one the lost tail could have produced — a cache
            # primed pre-crash cannot serve the rolled-back state.
            for graph in self._graphs.values():
                graph.version += replay.truncated_bytes + 1

        report.replayed_records = len(replay.records)
        report.last_seqno = replay.last_seqno
        report.truncated_bytes = replay.truncated_bytes
        report.resynced_bytes = replay.resynced_bytes
        report.graphs = sorted(self._graphs)
        self.counters["recoveries"] += 1
        self.counters["replayed_records"] += len(replay.records)
        self.counters["wal_truncated_bytes"] += replay.truncated_bytes
        self.counters["wal_resynced_bytes"] += replay.resynced_bytes

        self._wal = WriteAheadLog(self._io, self.directory,
                                  replay.last_seqno + 1,
                                  sync_every=self._sync_every)
        for graph in self._graphs.values():
            graph._store = self
        return report

    def close(self) -> None:
        """Flush and stop logging.  Attached graphs stay attached: a
        mutation after close fails with a classified
        :class:`~repro.sparql.errors.StorageError` rather than silently
        skipping the log."""
        wal, self._wal = self._wal, None
        if wal is not None:
            try:
                wal.close()
            finally:
                self._fold_wal_counters(wal)

    def __enter__(self) -> "GraphStore":
        if self._wal is None:
            self.open()
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def _fold_wal_counters(self, wal: WriteAheadLog) -> None:
        self.counters["wal_records"] += wal.records
        self.counters["wal_fsyncs"] += wal.fsyncs
        self.counters["wal_bytes"] += wal.bytes_written

    # ------------------------------------------------------------------
    # Graph access
    # ------------------------------------------------------------------
    @property
    def last_seqno(self) -> int:
        wal = self._wal
        return wal.last_seqno if wal is not None else 0

    def graphs(self) -> Dict[str, Graph]:
        """URI -> graph for everything the store owns (read-only view)."""
        return dict(self._graphs)

    def graph(self, uri: str) -> Graph:
        """The store's graph for ``uri``, created and attached if new."""
        graph = self._graphs.get(uri)
        if graph is None:
            graph = Graph(uri, dictionary=self.dictionary)
            self._graphs[uri] = graph
            graph._store = self
        return graph

    def attach(self, target: Union[Graph, Iterable[Graph]]) -> None:
        """Adopt pre-built graph(s): future mutations tee into the WAL.

        Existing contents are *not* retro-logged — call
        :meth:`checkpoint` after attaching to make them durable.  All
        attached graphs must share the store's dictionary; attaching to
        an empty fresh store adopts the graph's dictionary instead.
        """
        graphs = [target] if isinstance(target, Graph) else list(target)
        for graph in graphs:
            if graph.dictionary is not self.dictionary:
                if not self._graphs and len(self.dictionary) == 0:
                    self.dictionary = graph.dictionary
                else:
                    raise StorageError(
                        "graph %r does not share the store dictionary"
                        % graph.uri)
            existing = self._graphs.get(graph.uri)
            if existing is not None and existing is not graph:
                raise StorageError("store already owns a graph named %r"
                                   % graph.uri)
            self._graphs[graph.uri] = graph
            graph._store = self

    # ------------------------------------------------------------------
    # WAL teeing (called by Graph.add_ids / Graph.remove, pre-mutation)
    # ------------------------------------------------------------------
    def _record_add(self, graph: Graph, s: int, p: int, o: int,
                    version_after: int) -> None:
        self._append(OP_ADD, graph.uri, s, p, o, version_after)

    def _record_remove(self, graph: Graph, s: int, p: int, o: int,
                       version_after: int) -> None:
        self._append(OP_REMOVE, graph.uri, s, p, o, version_after)

    def _append(self, op: str, uri: str, s: int, p: int, o: int,
                version_after: int) -> None:
        wal = self._wal
        if wal is None:
            raise StorageError(
                "graph %r is attached to a closed store" % uri)
        decode = self.dictionary.decode
        line = serialize_triple((decode(s), decode(p), decode(o)))
        with self._lock:
            try:
                wal.append(op, uri, line, version_after)
            except OSError as exc:
                raise StorageError("write-ahead log append failed: %s"
                                   % exc) from exc

    def flush(self) -> None:
        """fsync every acknowledged WAL record."""
        wal = self._wal
        if wal is None:
            return
        with self._lock:
            try:
                wal.flush()
            except OSError as exc:
                raise StorageError("write-ahead log flush failed: %s"
                                   % exc) from exc

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Fold the WAL into a fresh snapshot generation; returns it.

        Write order is crash-safe end to end: the snapshot publishes via
        atomic rename *before* the WAL rolls, and old segments are
        pruned only after no retained snapshot could need them — a crash
        between any two steps recovers from whichever side completed.
        """
        wal = self._wal
        if wal is None:
            raise StorageError("store is not open")
        with self._lock:
            try:
                wal.flush()
                last = wal.last_seqno
                existing = list_snapshots(self.directory)
                generation = existing[-1][0] + 1 if existing else 1
                write_snapshot(self._io, self.directory, generation,
                               list(self._graphs.values()),
                               self.dictionary, last)
            except OSError as exc:
                raise StorageError("checkpoint failed: %s" % exc) from exc
            self._gen_seqnos[generation] = last
            wal.close()
            self._fold_wal_counters(wal)
            self._wal = WriteAheadLog(self._io, self.directory, last + 1,
                                      sync_every=self._sync_every)
            self.counters["checkpoints"] += 1
            self._prune()
        return generation

    def _prune(self) -> None:
        """Drop snapshot generations beyond ``keep_generations`` and WAL
        segments entirely covered by the oldest retained snapshot."""
        snaps = list_snapshots(self.directory)
        doomed = snaps[:-self._keep_generations]
        for generation, path in doomed:
            try:
                self._io.remove(path)
            except OSError:
                continue
            self._gen_seqnos.pop(generation, None)
        retained = snaps[len(doomed):]
        floor = None
        for generation, _ in retained:
            seqno = self._gen_seqnos.get(generation)
            if seqno is None:
                return      # unknown coverage: prune nothing (safe)
            floor = seqno if floor is None else min(floor, seqno)
        if floor is None:
            return
        segments = list_wal_segments(self.directory)
        for index, (start, path) in enumerate(segments[:-1]):
            if segments[index + 1][0] <= floor + 1:
                try:
                    self._io.remove(path)
                    self.counters["segments_pruned"] += 1
                except OSError:
                    pass

    def __repr__(self):
        return "GraphStore(%r, %d graphs, last_seqno=%d)" % (
            self.directory, len(self._graphs), self.last_seqno)
