"""A standalone benchmark harness: regenerate the paper's figures.

Runs the evaluation of Section 6 end-to-end and prints one table per
figure, in the same rows/series the paper reports.  Usage::

    python -m repro.harness                 # everything, default scale
    python -m repro.harness --figure fig5 --scale 0.3 --rounds 5
    python -m repro.harness --figure fig3 fig4

(For statistically careful numbers use the pytest-benchmark targets in
``benchmarks/``; this harness favours readability and a single command.)
"""

from __future__ import annotations

import argparse
import io
import sys
import time
from typing import Callable, Dict, List, Sequence

from .baselines import run_strategy
from .client import HttpClient
from .data import DBLP_URI, DBPEDIA_URI, build_dataset
from .rdf import ntriples
from .sparql import Endpoint, Engine
from .workload import CASE_STUDIES, SYNTHETIC_QUERIES


def _timeit(fn: Callable, rounds: int) -> float:
    """Best-of-N wall-clock seconds."""
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


class Harness:
    """Holds the dataset/engine/client shared by all figures."""

    def __init__(self, scale: float, rounds: int, max_rows: int = 10000,
                 out=sys.stdout):
        self.rounds = rounds
        self.out = out
        self._print("Building synthetic dataset (scale=%.2f)..." % scale)
        self.dataset = build_dataset(scale=scale)
        for graph in self.dataset:
            self._print("  %-28s %8d triples" % (graph.uri, len(graph)))
        self.engine = Engine(self.dataset)
        self.endpoint = Endpoint(self.engine, max_rows=max_rows)
        self.client = HttpClient(self.endpoint)
        self._dumps: Dict[str, str] = {}

    def _print(self, text: str = ""):
        self.out.write(text + "\n")
        self.out.flush()

    def _dump_for(self, graph_uri: str) -> str:
        if graph_uri not in self._dumps:
            graph = self.dataset.graph(graph_uri)
            self._dumps[graph_uri] = ntriples.serialize(graph.triples())
        return self._dumps[graph_uri]

    def _run_case(self, strategy: str, case_key: str):
        graph_uri = DBPEDIA_URI if case_key == "movie_genre" else DBLP_URI
        self.endpoint.clear_cache()
        return run_strategy(
            strategy, case_key, client=self.client,
            ntriples_source=io.StringIO(self._dump_for(graph_uri)))

    def _case_table(self, title: str, strategies: Sequence[str]):
        self._print()
        self._print(title)
        header = "%-16s" % "case study" + "".join(
            "%18s" % s for s in strategies)
        self._print(header)
        self._print("-" * len(header))
        for case in CASE_STUDIES:
            cells = []
            for strategy in strategies:
                seconds = _timeit(
                    lambda s=strategy, k=case.key: self._run_case(s, k),
                    self.rounds)
                cells.append("%16.3fs" % seconds)
            self._print("%-16s" % case.key + "  ".join(cells))

    # ------------------------------------------------------------------
    def figure3(self):
        self._case_table(
            "Figure 3 — design decisions (seconds, best of %d)" % self.rounds,
            ("naive", "navigation_pandas", "rdfframes"))

    def figure4(self):
        self._case_table(
            "Figure 4 — baselines (seconds, best of %d)" % self.rounds,
            ("rdflib_pandas", "sparql_pandas", "expert", "rdfframes"))

    def figure5(self):
        self._print()
        self._print("Figure 5 — synthetic workload, ratio to expert SPARQL "
                    "(best of %d)" % self.rounds)
        self._print("%-6s %12s %14s %11s" % ("query", "expert(s)",
                                             "RDFFrames/x", "Naive/x"))
        rows = []
        for query in SYNTHETIC_QUERIES:
            frame = query.frame()
            optimized_sparql = frame.to_sparql()
            naive_sparql = frame.to_sparql(strategy="naive")

            def run(text):
                self.endpoint.clear_cache()
                self.client.execute(text)

            expert = _timeit(lambda: run(query.expert_sparql), self.rounds)
            rdfframes = _timeit(lambda: run(optimized_sparql), self.rounds)
            naive = _timeit(lambda: run(naive_sparql), self.rounds)
            rows.append((query.qid, expert, rdfframes / expert,
                         naive / expert))
        for qid, expert, r1, r2 in sorted(rows, key=lambda r: r[3]):
            self._print("%-6s %12.3f %14.2f %11.2f" % (qid, expert, r1, r2))

    FIGURES = {"fig3": figure3, "fig4": figure4, "fig5": figure5}


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the RDFFrames paper's evaluation figures.")
    parser.add_argument("--figure", nargs="*", choices=sorted(Harness.FIGURES),
                        default=sorted(Harness.FIGURES),
                        help="which figures to run (default: all)")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="synthetic data scale factor (default 0.2)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per cell, best-of (default 3)")
    parser.add_argument("--max-rows", type=int, default=10000,
                        help="endpoint page cap (default 10000)")
    args = parser.parse_args(argv)

    harness = Harness(scale=args.scale, rounds=args.rounds,
                      max_rows=args.max_rows)
    for name in args.figure:
        Harness.FIGURES[name](harness)
    return 0


if __name__ == "__main__":
    sys.exit(main())
