"""Clients: how RDFFrames talks to an RDF engine or SPARQL endpoint.

The paper's Executor "sends the generated SPARQL query to an RDF engine or
SPARQL endpoint, handles all communication issues, and returns the results
to the user in a dataframe".  Two clients are provided:

* :class:`EngineClient` — in-process execution against an
  :class:`~repro.sparql.Engine` (the 'local RDF engine' path).
* :class:`HttpClient` — drives a simulated SPARQL-protocol
  :class:`~repro.sparql.Endpoint`, with *transparent pagination*: results
  are fetched chunk by chunk (each response capped by the endpoint's
  ``max_rows``) and assembled into a single dataframe, exactly as
  Section 4.3 describes; transient failures are retried.
"""

from __future__ import annotations

import time
from typing import Optional

from ..dataframe import DataFrame
from ..sparql.endpoint import Endpoint, EndpointError
from ..sparql.engine import Engine
from ..sparql.results import ResultSet

#: Return-format names mirroring the original library's HttpClientDataFormat.
PANDAS_DF = "dataframe"
RECORDS = "records"


class ClientError(RuntimeError):
    """Raised when a query cannot be executed by a client."""


class EngineClient:
    """Executes queries directly against an in-process engine.

    Supports both front-ends: SPARQL text via :meth:`execute` and
    RDFFrames query models via :meth:`execute_model` — the latter takes
    the engine's direct compile-to-algebra path, skipping SPARQL text
    generation and parsing entirely (:meth:`RDFFrame.execute
    <repro.core.rdfframe.RDFFrame.execute>` uses it automatically).
    """

    def __init__(self, engine: Engine, default_graph_uri: Optional[str] = None):
        self.engine = engine
        self.default_graph_uri = default_graph_uri

    def execute(self, query: str) -> DataFrame:
        """Run a SPARQL query and return the full result as a dataframe."""
        result = self.engine.query(query,
                                   default_graph_uri=self.default_graph_uri)
        return result.to_dataframe()

    def execute_model(self, model) -> DataFrame:
        """Run an RDFFrames query model on the direct plan path."""
        result = self.engine.query_model(
            model, default_graph_uri=self.default_graph_uri)
        return result.to_dataframe()

    def execute_terms(self, query: str) -> DataFrame:
        """Like :meth:`execute` but cells hold raw RDF terms."""
        result = self.engine.query(query,
                                   default_graph_uri=self.default_graph_uri)
        return result.to_term_dataframe()

    @property
    def last_stats(self):
        """The engine's :class:`~repro.sparql.EvaluationStats` for the most
        recent query (pattern matches, intermediate rows, cache hits) —
        consumed by the perf-report runner and the ablation benchmarks."""
        return self.engine.last_stats

    @property
    def last_elapsed(self) -> float:
        """Server-side evaluation seconds for the most recent query."""
        return self.engine.last_elapsed

    def __repr__(self):
        return "EngineClient(%r)" % self.engine


class HttpClient:
    """Executes queries against a (simulated) SPARQL endpoint over 'HTTP'.

    Parameters
    ----------
    endpoint:
        The endpoint to query.
    page_size:
        Requested rows per response; the endpoint may cap it lower.
    max_retries:
        Transient endpoint errors are retried this many times per page.
    retry_delay:
        Base backoff in seconds: attempt ``k`` sleeps
        ``retry_delay * 2**k``, capped at ``max_retry_delay`` (0 disables
        sleeping, the default, which keeps tests instant).
    """

    def __init__(self, endpoint: Endpoint, page_size: Optional[int] = None,
                 max_retries: int = 3, retry_delay: float = 0.0,
                 max_retry_delay: float = 2.0):
        self.endpoint = endpoint
        self.page_size = page_size
        self.max_retries = max_retries
        self.retry_delay = retry_delay
        self.max_retry_delay = max_retry_delay
        self.pages_fetched = 0
        self._sleep = time.sleep  # injectable for tests

    def execute(self, query: str) -> DataFrame:
        """Fetch all pages of a query's results into one dataframe."""
        return self._fetch_all(query).to_dataframe()

    def execute_terms(self, query: str) -> DataFrame:
        """Like :meth:`execute` but cells hold raw RDF terms."""
        return self._fetch_all(query).to_term_dataframe()

    def _fetch_all(self, query: str) -> ResultSet:
        from ..sparql.json_results import decode_results

        offset = 0
        variables = None
        rows = []
        while True:
            response = self._request_with_retry(query, offset)
            # Decode the wire payload (the real SPARQL-JSON parse cost that
            # SPARQLWrapper pays); fall back to the in-memory page if the
            # endpoint did not provide one.
            if response.payload is not None:
                try:
                    page = decode_results(response.payload)
                except (ValueError, KeyError, TypeError) as exc:
                    raise ClientError(
                        "endpoint returned a malformed SPARQL-JSON payload "
                        "at offset %d: %s" % (offset, exc))
            else:
                page = response.result
            if variables is None:
                variables = page.variables
            rows.extend(page.rows)
            self.pages_fetched += 1
            if not response.has_more:
                break
            if len(page) == 0:
                raise ClientError("endpoint reported more results but "
                                  "returned an empty page at offset %d" % offset)
            offset += len(page)
        return ResultSet(variables or [], rows)

    @property
    def last_stats(self):
        """Server-side evaluation stats of the backing engine for the most
        recent request (the endpoint caches results per query text, so for
        paginated fetches these are the stats of the initial execution)."""
        return self.endpoint.engine.last_stats

    def _backoff_delay(self, attempt: int) -> float:
        """Capped exponential backoff before retry ``attempt`` (0-based)."""
        if self.retry_delay <= 0:
            return 0.0
        return min(self.retry_delay * (2 ** attempt), self.max_retry_delay)

    def _request_with_retry(self, query: str, offset: int):
        last_error = None
        for attempt in range(self.max_retries + 1):
            try:
                return self.endpoint.request(query, offset=offset,
                                             limit=self.page_size)
            except EndpointError as exc:
                last_error = exc
                if attempt < self.max_retries:
                    delay = self._backoff_delay(attempt)
                    if delay:
                        self._sleep(delay)
        raise ClientError(
            "endpoint failed after %d retries fetching the page at "
            "offset %d: %s" % (self.max_retries, offset, last_error))

    def __repr__(self):
        return "HttpClient(page_size=%r)" % self.page_size


class FlakyEndpoint(Endpoint):
    """Test double: an endpoint that fails the first N requests of each
    query (used to exercise the client's retry path)."""

    def __init__(self, engine: Engine, failures_per_query: int = 1, **kwargs):
        super().__init__(engine, **kwargs)
        self.failures_per_query = failures_per_query
        self._failures: dict = {}

    def request(self, query_text: str, offset: int = 0, limit=None):
        key = (query_text, offset)
        count = self._failures.get(key, 0)
        if count < self.failures_per_query:
            self._failures[key] = count + 1
            raise EndpointError("simulated transient failure (%d)" % count)
        return super().request(query_text, offset=offset, limit=limit)
