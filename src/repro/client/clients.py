"""Clients: how RDFFrames talks to an RDF engine or SPARQL endpoint.

The paper's Executor "sends the generated SPARQL query to an RDF engine or
SPARQL endpoint, handles all communication issues, and returns the results
to the user in a dataframe".  Two clients are provided:

* :class:`EngineClient` — in-process execution against an
  :class:`~repro.sparql.Engine` (the 'local RDF engine' path).
* :class:`HttpClient` — drives a simulated SPARQL-protocol
  :class:`~repro.sparql.Endpoint`, with *transparent pagination*: results
  are fetched chunk by chunk (each response capped by the endpoint's
  ``max_rows``) and assembled into a single dataframe, exactly as
  Section 4.3 describes; transient failures are retried.
"""

from __future__ import annotations

import time
from typing import Optional

from ..dataframe import DataFrame
from ..sparql.endpoint import Endpoint, EndpointError
from ..sparql.engine import Engine
from ..sparql.errors import CircuitBreaker, TransientError, is_retryable
from ..sparql.results import ResultSet

#: Return-format names mirroring the original library's HttpClientDataFormat.
PANDAS_DF = "dataframe"
RECORDS = "records"


class ClientError(RuntimeError):
    """Raised when a query cannot be executed by a client."""


class EngineClient:
    """Executes queries directly against an in-process engine.

    Supports both front-ends: SPARQL text via :meth:`execute` and
    RDFFrames query models via :meth:`execute_model` — the latter takes
    the engine's direct compile-to-algebra path, skipping SPARQL text
    generation and parsing entirely (:meth:`RDFFrame.execute
    <repro.core.rdfframe.RDFFrame.execute>` uses it automatically).

    Example
    -------
    >>> from repro.client import EngineClient
    >>> from repro.data import DBPEDIA_URI, build_dataset
    >>> from repro.sparql import Engine
    >>> client = EngineClient(Engine(build_dataset(scale=0.02)),
    ...                       default_graph_uri=DBPEDIA_URI)
    >>> df = client.execute(
    ...     "PREFIX dbpp: <http://dbpedia.org/property/> "
    ...     "SELECT ?film ?actor WHERE { ?film dbpp:starring ?actor }")
    >>> list(df.columns)
    ['film', 'actor']
    """

    def __init__(self, engine: Engine, default_graph_uri: Optional[str] = None):
        self.engine = engine
        self.default_graph_uri = default_graph_uri

    def execute(self, query: str) -> DataFrame:
        """Run a SPARQL query and return the full result as a dataframe."""
        result = self.engine.query(query,
                                   default_graph_uri=self.default_graph_uri)
        return result.to_dataframe()

    def execute_model(self, model) -> DataFrame:
        """Run an RDFFrames query model on the direct plan path."""
        result = self.engine.query_model(
            model, default_graph_uri=self.default_graph_uri)
        return result.to_dataframe()

    def execute_terms(self, query: str) -> DataFrame:
        """Like :meth:`execute` but cells hold raw RDF terms."""
        result = self.engine.query(query,
                                   default_graph_uri=self.default_graph_uri)
        return result.to_term_dataframe()

    def execute_page(self, source, offset: int = 0,
                     limit: int = 1000) -> DataFrame:
        """Fetch one page of a query's results as a dataframe.

        ``source`` is SPARQL text or an RDFFrames query model.  The page
        rides the engine's streaming cursor (:meth:`Engine.stream
        <repro.sparql.engine.Engine.stream>`): only about
        ``offset + limit`` rows are produced locally, however large the
        full result — check ``last_stats.rows_pulled``.

        Example
        -------
        >>> from repro.client import EngineClient
        >>> from repro.data import DBPEDIA_URI, build_dataset
        >>> from repro.sparql import Engine
        >>> client = EngineClient(Engine(build_dataset(scale=0.02)),
        ...                       default_graph_uri=DBPEDIA_URI)
        >>> page = client.execute_page(
        ...     "PREFIX dbpp: <http://dbpedia.org/property/> "
        ...     "SELECT ?f ?a WHERE { ?f dbpp:starring ?a }",
        ...     offset=10, limit=5)
        >>> len(page)
        5
        """
        cursor = self.engine.stream(source,
                                    default_graph_uri=self.default_graph_uri)
        return cursor.page(offset, limit).to_dataframe()

    @property
    def last_stats(self):
        """The engine's :class:`~repro.sparql.EvaluationStats` for the most
        recent query (pattern matches, intermediate rows, cache hits) —
        consumed by the perf-report runner and the ablation benchmarks."""
        return self.engine.last_stats

    @property
    def last_elapsed(self) -> float:
        """Server-side evaluation seconds for the most recent query."""
        return self.engine.last_elapsed

    def __repr__(self):
        return "EngineClient(%r)" % self.engine


class HttpClient:
    """Executes queries against a (simulated) SPARQL endpoint over 'HTTP'.

    Parameters
    ----------
    endpoint:
        The endpoint to query.
    page_size:
        Requested rows per response; the endpoint may cap it lower.
    max_retries:
        *Retryable* endpoint errors (the taxonomy's ``TransientError``
        family, including corrupted wire payloads) are retried this many
        times per page.  Non-retryable classes — a malformed query, a
        tripped row budget, load shedding — fail fast on the first
        attempt, preserving the original failure as ``__cause__``.
    retry_delay:
        Base backoff in seconds: attempt ``k`` sleeps
        ``retry_delay * 2**k``, capped at ``max_retry_delay`` (0 disables
        sleeping, the default, which keeps tests instant).
    breaker_threshold / breaker_cooldown:
        Circuit breaker over endpoint health: after ``breaker_threshold``
        *consecutive* transient/internal failures the circuit opens and
        requests fail fast (no endpoint call, no backoff sleeps) until
        ``breaker_cooldown`` seconds pass; then one half-open probe
        decides.  ``breaker_threshold=None`` disables the breaker.
        Deterministic failures (malformed query, row budget) are server
        *answers*, not health signals — they reset the streak.
    """

    def __init__(self, endpoint: Endpoint, page_size: Optional[int] = None,
                 max_retries: int = 3, retry_delay: float = 0.0,
                 max_retry_delay: float = 2.0,
                 breaker_threshold: Optional[int] = 8,
                 breaker_cooldown: float = 1.0):
        self.endpoint = endpoint
        self.page_size = page_size
        self.max_retries = max_retries
        self.retry_delay = retry_delay
        self.max_retry_delay = max_retry_delay
        self.pages_fetched = 0
        self.retries_performed = 0
        self.breaker = None if breaker_threshold is None else CircuitBreaker(
            failure_threshold=breaker_threshold, cooldown=breaker_cooldown)
        self._sleep = time.sleep  # injectable for tests

    def execute(self, query: str) -> DataFrame:
        """Fetch all pages of a query's results into one dataframe."""
        return self._fetch_all(query).to_dataframe()

    def execute_terms(self, query: str) -> DataFrame:
        """Like :meth:`execute` but cells hold raw RDF terms."""
        return self._fetch_all(query).to_term_dataframe()

    def execute_page(self, query: str, offset: int = 0,
                     limit: Optional[int] = None) -> DataFrame:
        """Fetch one window of a query's results as a dataframe.

        Example
        -------
        >>> from repro.client import HttpClient
        >>> from repro.data import build_dataset
        >>> from repro.sparql import Endpoint, Engine
        >>> endpoint = Endpoint(Engine(build_dataset(scale=0.02)))
        >>> client = HttpClient(endpoint, page_size=50)
        >>> page = client.execute_page(
        ...     "PREFIX dbpp: <http://dbpedia.org/property/> "
        ...     "SELECT ?f ?a FROM <http://dbpedia.org> "
        ...     "WHERE { ?f dbpp:starring ?a }",
        ...     offset=5, limit=20)
        >>> len(page)
        20

        Returns exactly ``min(limit, rows available)`` rows starting at
        ``offset``; when ``limit`` exceeds the endpoint's per-response
        cap, additional requests fill the window (so a capped response is
        never silently mistaken for the end of the result).  With
        ``limit=None`` the client's ``page_size`` is the window; if that
        is also unset, a single endpoint-capped response is returned.
        The endpoint serves every request from its per-query streaming
        cursor, so the window costs O(offset + limit) server-side row
        production — not a full materialization of the result.
        """
        if limit is None:
            limit = self.page_size
        return self._fetch_window(query, offset=offset, budget=limit,
                                  single=limit is None).to_dataframe()

    def _decode_page(self, response, offset: int) -> ResultSet:
        from ..sparql.json_results import decode_results

        if response.payload is None:
            return response.result
        try:
            return decode_results(response.payload)
        except (ValueError, KeyError, TypeError) as exc:
            # A truncated/corrupt page is wire damage, not a server
            # verdict: classified transient so the retry loop re-requests
            # it instead of surfacing a silently damaged result.
            raise TransientError(
                "endpoint returned a malformed SPARQL-JSON payload "
                "at offset %d: %s" % (offset, exc)) from exc

    def _fetch_all(self, query: str) -> ResultSet:
        return self._fetch_window(query)

    def _fetch_window(self, query: str, offset: int = 0,
                      budget: Optional[int] = None,
                      single: bool = False) -> ResultSet:
        """The pagination loop behind :meth:`execute` and
        :meth:`execute_page`.

        Crawls pages from ``offset``, accumulating rows until ``budget``
        rows are collected (``None``: until the endpoint reports no more;
        with ``single`` a lone endpoint-capped response is returned).
        Each response's wire payload is decoded (the real SPARQL-JSON
        parse cost that SPARQLWrapper pays), falling back to the
        in-memory page if the endpoint did not provide one.
        """
        variables = None
        rows: list = []
        cursor = offset
        while True:
            remaining = self.page_size if budget is None \
                else budget - len(rows)
            response, page = self._request_with_retry(query, cursor,
                                                      limit=remaining)
            if variables is None:
                variables = page.variables
            rows.extend(page.rows)
            self.pages_fetched += 1
            if budget is not None and len(rows) >= budget:
                break
            if single:
                break
            if not response.has_more:
                break
            if len(page) == 0:
                raise ClientError("endpoint reported more results but "
                                  "returned an empty page at offset %d"
                                  % cursor)
            cursor += len(page)
        return ResultSet(variables or [], rows)

    @property
    def last_stats(self):
        """Server-side evaluation stats of the backing engine for the most
        recent request (the endpoint caches results per query text, so for
        paginated fetches these are the stats of the initial execution)."""
        return self.endpoint.engine.last_stats

    def _backoff_delay(self, attempt: int) -> float:
        """Capped exponential backoff before retry ``attempt`` (0-based)."""
        if self.retry_delay <= 0:
            return 0.0
        return min(self.retry_delay * (2 ** attempt), self.max_retry_delay)

    _USE_PAGE_SIZE = object()  # sentinel: caller did not override the limit

    def _request_with_retry(self, query: str, offset: int,
                            limit=_USE_PAGE_SIZE):
        """One page, fetched *and decoded*, with classified retries.

        Returns ``(response, decoded_page)``.  An attempt covers the
        endpoint round trip plus the wire decode, so a corrupted payload
        is retried exactly like a dropped connection.  Only retryable
        error classes burn retry attempts; a non-retryable failure (a
        malformed query, a tripped row budget, load shedding, an open
        circuit) fails fast with the original exception chained.
        """
        if limit is self._USE_PAGE_SIZE:
            limit = self.page_size
        last_error = None
        for attempt in range(self.max_retries + 1):
            try:
                if self.breaker is not None:
                    self.breaker.check()  # open -> fail fast, no request
                response = self.endpoint.request(query, offset=offset,
                                                 limit=limit)
                page = self._decode_page(response, offset)
            except EndpointError as exc:
                last_error = exc
                self._record_breaker_outcome(exc)
                if not is_retryable(exc):
                    raise ClientError(
                        "endpoint failed fetching the page at offset %d "
                        "(%s, not retried): %s"
                        % (offset, type(exc).__name__, exc)) from exc
                if attempt < self.max_retries:
                    self.retries_performed += 1
                    delay = self._backoff_delay(attempt)
                    if delay:
                        self._sleep(delay)
            else:
                if self.breaker is not None:
                    self.breaker.record_success()
                return response, page
        raise ClientError(
            "endpoint failed after %d retries fetching the page at "
            "offset %d: %s" % (self.max_retries, offset,
                               last_error)) from last_error

    def _record_breaker_outcome(self, exc: EndpointError) -> None:
        """Feed the breaker health signals only: transient and internal
        failures count; deterministic per-query verdicts (malformed
        query, row budget) prove the endpoint is alive and reset it."""
        from ..sparql.errors import (CircuitOpenError, MalformedQuery,
                                     QueryCancelled, ResourceExhausted)
        if self.breaker is None or isinstance(exc, CircuitOpenError):
            return
        if isinstance(exc, (MalformedQuery, ResourceExhausted,
                            QueryCancelled)):
            self.breaker.record_success()
        else:
            self.breaker.record_failure()

    def __repr__(self):
        return "HttpClient(page_size=%r)" % self.page_size


class FlakyEndpoint(Endpoint):
    """Test double: an endpoint that fails the first N requests of each
    page with a retryable :class:`TransientError` (exercises the client's
    retry path).  For richer failure modes — seeded schedules, corrupted
    payloads, mid-stream timeouts — use the generalized
    :class:`~repro.sparql.faults.FaultyEndpoint` layer."""

    def __init__(self, engine: Engine, failures_per_query: int = 1, **kwargs):
        super().__init__(engine, **kwargs)
        self.failures_per_query = failures_per_query
        self._failures: dict = {}

    def request(self, query_text: str, offset: int = 0, limit=None):
        key = (query_text, offset)
        count = self._failures.get(key, 0)
        if count < self.failures_per_query:
            self._failures[key] = count + 1
            raise TransientError("simulated transient failure (%d)" % count)
        return super().request(query_text, offset=offset, limit=limit)
