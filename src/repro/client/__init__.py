"""Execution clients: in-process engine client and paginating HTTP client."""

from .clients import (PANDAS_DF, RECORDS, ClientError, EngineClient,
                      FlakyEndpoint, HttpClient)

__all__ = ["EngineClient", "HttpClient", "FlakyEndpoint", "ClientError",
           "PANDAS_DF", "RECORDS"]
