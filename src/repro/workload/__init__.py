"""The paper's workloads: 3 case studies + 15 synthetic queries, plus the
join corpus (star/cyclic/chain/self-join shapes) the join subsystem is
benchmarked and differential-tested on."""

from .case_studies import (CASE_STUDIES, CaseStudy, get_case_study,
                           kg_embedding_frame, movie_genre_frame,
                           topic_modeling_frame)
from .joins import JOIN_QUERIES, JoinQuery, get_join_query
from .synthetic import SYNTHETIC_QUERIES, SyntheticQuery, get_query

__all__ = [
    "CASE_STUDIES", "CaseStudy", "get_case_study",
    "movie_genre_frame", "topic_modeling_frame", "kg_embedding_frame",
    "SYNTHETIC_QUERIES", "SyntheticQuery", "get_query",
    "JOIN_QUERIES", "JoinQuery", "get_join_query",
]
