"""The paper's workloads: 3 case studies + 15 synthetic queries."""

from .case_studies import (CASE_STUDIES, CaseStudy, get_case_study,
                           kg_embedding_frame, movie_genre_frame,
                           topic_modeling_frame)
from .synthetic import SYNTHETIC_QUERIES, SyntheticQuery, get_query

__all__ = [
    "CASE_STUDIES", "CaseStudy", "get_case_study",
    "movie_genre_frame", "topic_modeling_frame", "kg_embedding_frame",
    "SYNTHETIC_QUERIES", "SyntheticQuery", "get_query",
]
