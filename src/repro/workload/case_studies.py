"""The paper's three case studies (Section 6.1).

Each case study packages the RDFFrames pipeline (the paper's Listings 3, 5,
and 7), the equivalent expert-written SPARQL (Listings 4, 6, and 8 adapted
to the synthetic graphs), and metadata.  The benchmark harness runs each
pipeline under every execution strategy of Section 6.3.

Thresholds are scaled to the synthetic graphs (e.g. "prolific" is >= 20
movies on a 3k-film graph just as in the paper's Listing 3).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core import (InnerJoin, KnowledgeGraph, OPTIONAL, OuterJoin, RDFFrame)
from ..data import DBLP_URI, DBPEDIA_URI

PROLIFIC_MOVIE_COUNT = 20
PROLIFIC_PAPER_COUNT = 20
TOPIC_YEAR_INNER = 2000
TOPIC_YEAR_OUTER = 2010


class CaseStudy:
    """One case study: an RDFFrames pipeline plus its expert SPARQL."""

    def __init__(self, key: str, title: str, graph_uri: str,
                 build: Callable[[], RDFFrame], expert_sparql: str,
                 description: str):
        self.key = key
        self.title = title
        self.graph_uri = graph_uri
        self.build = build
        self.expert_sparql = expert_sparql
        self.description = description

    def frame(self) -> RDFFrame:
        return self.build()

    def __repr__(self):
        return "CaseStudy(%r)" % self.key


# ----------------------------------------------------------------------
# Case study 1: movie genre classification (paper Listing 3)
# ----------------------------------------------------------------------
def movie_genre_frame() -> RDFFrame:
    """The data-preparation pipeline of the movie-genre case study."""
    graph = KnowledgeGraph(graph_uri=DBPEDIA_URI)
    movies = graph.feature_domain_range("dbpp:starring", "movie", "actor")
    movies = movies.expand("actor", [
        ("dbpp:birthPlace", "actor_country"),
        ("rdfs:label", "actor_name"),
    ]).expand("movie", [
        ("rdfs:label", "movie_name"),
        ("dcterms:subject", "subject"),
        ("dbpp:country", "movie_country"),
        ("dbpo:genre", "genre", OPTIONAL),
    ]).cache()
    american = movies.filter({"actor_country": ["=dbpr:United_States"]})
    prolific = movies.group_by(["actor"]) \
        .count("movie", "movie_count", unique=True) \
        .filter({"movie_count": [">=%d" % PROLIFIC_MOVIE_COUNT]})
    return american.join(prolific, "actor", OuterJoin) \
        .join(movies, "actor", InnerJoin)


MOVIE_GENRE_EXPERT_SPARQL = """
PREFIX dbpp: <http://dbpedia.org/property/>
PREFIX dbpo: <http://dbpedia.org/ontology/>
PREFIX dbpr: <http://dbpedia.org/resource/>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX dcterms: <http://purl.org/dc/terms/>
SELECT *
FROM <http://dbpedia.org>
WHERE {
    ?movie dbpp:starring ?actor .
    ?actor dbpp:birthPlace ?actor_country ;
           rdfs:label ?actor_name .
    ?movie rdfs:label ?movie_name ;
           dcterms:subject ?subject ;
           dbpp:country ?movie_country .
    OPTIONAL { ?movie dbpo:genre ?genre }
    {
        { SELECT *
          WHERE {
            { SELECT *
              WHERE {
                ?movie dbpp:starring ?actor .
                ?actor dbpp:birthPlace ?actor_country ;
                       rdfs:label ?actor_name .
                ?movie rdfs:label ?movie_name ;
                       dcterms:subject ?subject ;
                       dbpp:country ?movie_country .
                FILTER ( ?actor_country = dbpr:United_States )
                OPTIONAL { ?movie dbpo:genre ?genre }
              }
            }
            OPTIONAL {
              SELECT DISTINCT ?actor (COUNT(DISTINCT ?movie) AS ?movie_count)
              WHERE {
                ?movie dbpp:starring ?actor .
                ?actor dbpp:birthPlace ?actor_country ;
                       rdfs:label ?actor_name .
                ?movie rdfs:label ?movie_name ;
                       dcterms:subject ?subject ;
                       dbpp:country ?movie_country .
                OPTIONAL { ?movie dbpo:genre ?genre }
              }
              GROUP BY ?actor
              HAVING ( COUNT(DISTINCT ?movie) >= %(prolific)d )
            }
          }
        }
        UNION
        { SELECT *
          WHERE {
            { SELECT DISTINCT ?actor (COUNT(DISTINCT ?movie) AS ?movie_count)
              WHERE {
                ?movie dbpp:starring ?actor .
                ?actor dbpp:birthPlace ?actor_country ;
                       rdfs:label ?actor_name .
                ?movie rdfs:label ?movie_name ;
                       dcterms:subject ?subject ;
                       dbpp:country ?movie_country .
                OPTIONAL { ?movie dbpo:genre ?genre }
              }
              GROUP BY ?actor
              HAVING ( COUNT(DISTINCT ?movie) >= %(prolific)d )
            }
            OPTIONAL {
              SELECT *
              WHERE {
                ?movie dbpp:starring ?actor .
                ?actor dbpp:birthPlace ?actor_country ;
                       rdfs:label ?actor_name .
                ?movie rdfs:label ?movie_name ;
                       dcterms:subject ?subject ;
                       dbpp:country ?movie_country .
                FILTER ( ?actor_country = dbpr:United_States )
                OPTIONAL { ?movie dbpo:genre ?genre }
              }
            }
          }
        }
    }
}
""" % {"prolific": PROLIFIC_MOVIE_COUNT}


# ----------------------------------------------------------------------
# Case study 2: topic modeling (paper Listing 5)
# ----------------------------------------------------------------------
def topic_modeling_frame() -> RDFFrame:
    """Titles of recent papers by prolific SIGMOD/VLDB authors."""
    graph = KnowledgeGraph(graph_uri=DBLP_URI)
    papers = graph.entities("swrc:InProceedings", "paper")
    papers = papers.expand("paper", [
        ("dc:creator", "author"),
        ("dcterm:issued", "date"),
        ("swrc:series", "conference"),
        ("dc:title", "title"),
    ]).cache()
    authors = papers.filter({
        "date": ["year(xsd:dateTime(?date)) >= %d" % TOPIC_YEAR_INNER],
        "conference": ["In(dblprc:vldb, dblprc:sigmod)"],
    }).group_by(["author"]).count("paper", "n_papers") \
        .filter({"n_papers": [">=%d" % PROLIFIC_PAPER_COUNT]})
    return papers.join(authors, "author", InnerJoin) \
        .filter({"date": ["year(xsd:dateTime(?date)) >= %d" % TOPIC_YEAR_OUTER]}) \
        .select_cols(["title"])


TOPIC_MODELING_EXPERT_SPARQL = """
PREFIX swrc: <http://swrc.ontoware.org/ontology#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX dc: <http://purl.org/dc/elements/1.1/>
PREFIX dcterm: <http://purl.org/dc/terms/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
PREFIX dblprc: <http://dblp.l3s.de/d2r/resource/conferences/>
SELECT ?title
FROM <http://dblp.l3s.de>
WHERE {
    ?paper dc:title ?title ;
           rdf:type swrc:InProceedings ;
           dcterm:issued ?date ;
           dc:creator ?author .
    FILTER ( year(xsd:dateTime(?date)) >= %(outer_year)d )
    {
        SELECT ?author
        WHERE {
            ?paper rdf:type swrc:InProceedings ;
                   swrc:series ?conference ;
                   dc:creator ?author ;
                   dcterm:issued ?date .
            FILTER ( ( year(xsd:dateTime(?date)) >= %(inner_year)d )
                     && ( ?conference IN (dblprc:vldb, dblprc:sigmod) ) )
        }
        GROUP BY ?author
        HAVING ( COUNT(?paper) >= %(prolific)d )
    }
}
""" % {"outer_year": TOPIC_YEAR_OUTER, "inner_year": TOPIC_YEAR_INNER,
       "prolific": PROLIFIC_PAPER_COUNT}


# ----------------------------------------------------------------------
# Case study 3: knowledge graph embedding (paper Listing 7)
# ----------------------------------------------------------------------
def kg_embedding_frame() -> RDFFrame:
    """All entity-to-entity triples of DBLP (one line, as in the paper)."""
    graph = KnowledgeGraph(graph_uri=DBLP_URI)
    return graph.feature_domain_range("p", "s", "o").filter({"o": ["isURI"]})


KG_EMBEDDING_EXPERT_SPARQL = """
SELECT *
FROM <http://dblp.l3s.de>
WHERE {
    ?s ?p ?o .
    FILTER ( isIRI(?o) )
}
"""


CASE_STUDIES: List[CaseStudy] = [
    CaseStudy(
        key="movie_genre",
        title="Movie genre classification (DBpedia)",
        graph_uri=DBPEDIA_URI,
        build=movie_genre_frame,
        expert_sparql=MOVIE_GENRE_EXPERT_SPARQL,
        description="Movies starring American or prolific actors, with "
                    "attributes for genre classification (Fig 3a / 4a)."),
    CaseStudy(
        key="topic_modeling",
        title="Topic modeling (DBLP)",
        graph_uri=DBLP_URI,
        build=topic_modeling_frame,
        expert_sparql=TOPIC_MODELING_EXPERT_SPARQL,
        description="Titles of recent papers by prolific SIGMOD/VLDB "
                    "authors (Fig 3b / 4b)."),
    CaseStudy(
        key="kg_embedding",
        title="Knowledge graph embedding (DBLP)",
        graph_uri=DBLP_URI,
        build=kg_embedding_frame,
        expert_sparql=KG_EMBEDDING_EXPERT_SPARQL,
        description="Entity-to-entity triples for embedding training "
                    "(Fig 3c / 4c)."),
]


def get_case_study(key: str) -> CaseStudy:
    for case_study in CASE_STUDIES:
        if case_study.key == key:
            return case_study
    raise KeyError("unknown case study %r" % key)
